//! Reproduce Figures 1 and 2: the automaton `M(e_p)` for
//! `e_p = (b3·b4* ∪ b2·p)·b1` and its one-step expansion `EM(p, 2)`,
//! printed as GraphViz DOT.
//!
//! Run with `cargo run --example automata_dot [i]` (default i = 2);
//! pipe through `dot -Tsvg` to render.

use rq_automata::MachineSet;
use rq_common::Pred;
use rq_relalg::{EqSystem, Expr};

fn main() {
    let i: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);

    // Predicate ids: p = 0, b1..b4 = 1..4.
    let p = Pred(0);
    let b = |k: u32| Expr::Sym(Pred(k));
    let e_p = Expr::cat([
        Expr::union([
            Expr::cat([b(3), Expr::star(b(4))]),
            Expr::cat([b(2), Expr::Sym(p)]),
        ]),
        b(1),
    ]);
    let name = |q: Pred| {
        if q == p {
            "p".to_string()
        } else {
            format!("b{}", q.0)
        }
    };
    println!("// e_p = {}", e_p.display(&name));

    let system = EqSystem::new([(p, e_p)]);
    let machines = MachineSet::of(&system);

    println!("// M(e_p)  — Figure 1");
    println!("{}", machines.em(p, 1).to_dot(&name));

    println!("// EM(p,{i})  — Figure 2 for i = 2");
    let em = machines.em(p, i);
    println!("{}", em.to_dot(&name));
    eprintln!(
        "EM(p,{i}): {} states, {} transitions",
        em.num_states(),
        em.num_transitions()
    );
}
