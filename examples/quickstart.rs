//! Quickstart: parse a recursive Datalog program, ask a query, inspect
//! the pipeline stages.
//!
//! Run with `cargo run --example quickstart`.

use recursive_queries::{solve, Strategy};
use rq_datalog::{parse_program, Analysis};
use rq_relalg::{lemma1, Lemma1Options};

fn main() {
    // The paper's running example: the same-generation program.
    let src = "\
% same generation: x and y are cousins at the same level
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).

% a small family tree
up(john, mary).   up(mary, ann).
up(erik, lisa).   up(lisa, ann).
flat(ann, ann).   flat(mary, lisa). flat(lisa, mary).
down(ann, lisa).  down(lisa, erik).
down(ann, mary).  down(mary, john).
";
    let mut program = parse_program(src).expect("program parses");

    // 1. Classification (§2): sg is linearly recursive, binary-chain.
    let analysis = Analysis::of(&program);
    println!(
        "linear program:      {}",
        analysis.program_is_linear(&program)
    );
    println!(
        "binary-chain:        {}",
        rq_datalog::binary_chain_violations(&program).is_empty()
    );

    // 2. Lemma 1 (§3): the equation system.
    let system = lemma1(&program, &Lemma1Options::default())
        .expect("binary-chain program")
        .system;
    println!("\nequation system:\n{}", system.display(&program));

    // 3. Evaluate sg(john, Y) with the graph-traversal engine.
    let solution = solve(&mut program, "sg(john, Y)").expect("query evaluates");
    assert_eq!(solution.strategy, Strategy::BinaryChain);
    println!("sg(john, Y) = {:?}", solution.rows(&program));
    println!("cost: {}", solution.counters);

    // 4. Other query forms run through the same machinery.
    let backwards = solve(&mut program, "sg(X, erik)").expect("inverse query");
    println!("sg(X, erik) = {:?}", backwards.rows(&program));

    let check = solve(&mut program, "sg(john, erik)").expect("bb query");
    println!("sg(john, erik)? {}", !check.answers.is_empty());
}
