//! Reproduce the *kind* of artifact shown in Figure 3: the interpretation
//! graph `G(p, u, 2)` built while evaluating the query `p(u, Y)` for
//! `e_p = (b3·b4* ∪ b2·p)·b1` over a small extensional database, printed
//! as GraphViz DOT.  (The journal scan's exact fact list is illegible;
//! the database here exercises the same paths: a b3·b4*·b1 branch and a
//! b2·p·b1 branch that recurses once.)
//!
//! Run with `cargo run --example figure3_graph | dot -Tsvg > g.svg`.

use rq_datalog::{parse_program, Database};
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};

fn main() {
    // p = (b3 ∪ b3·b4s ∪ b2·p)·b1 with b4s the transitive closure of
    // b4; after Lemma 1 this is p's equation with b4*'s within it, the
    // shape of Figure 1's e_p.
    let src = "\
p(X,Z) :- b3(X,Y), b1(Y,Z).
p(X,Z) :- b3(X,W), b4s(W,Y), b1(Y,Z).
p(X,Z) :- b2(X,Y), p(Y,W), b1(W,Z).
b4s(X,Y) :- b4(X,Y).
b4s(X,Z) :- b4(X,Y), b4s(Y,Z).
b2(u, u1).
b3(u, u5). b3(u1, u2). b3(u1, u3).
b4(u2, u3). b4(u5, u5).
b1(u3, u4). b1(u4, v). b1(u5, u4).
";
    let program = parse_program(src).expect("parses");
    let db = Database::from_program(&program);
    let system = lemma1(&program, &Lemma1Options::default()).expect("chain program");
    eprintln!("equation system:\n{}", system.system.display(&program));

    let p = program.pred_by_name("p").unwrap();
    let u = program
        .consts
        .get(&rq_common::ConstValue::Str("u".into()))
        .unwrap();
    let source = EdbSource::new(&db);
    let ev = Evaluator::new(&system.system, &source);
    let out = ev.evaluate(
        p,
        u,
        &EvalOptions {
            record_graph: true,
            ..EvalOptions::default()
        },
    );
    let dump = out.graph.expect("recorded");
    eprintln!(
        "G(p,u,{}): {} nodes, {} arcs, answers {:?}",
        out.counters.iterations,
        dump.node_count(),
        dump.arcs.len(),
        {
            let mut v: Vec<String> = out
                .answers
                .iter()
                .map(|&c| program.consts.display(c))
                .collect();
            v.sort();
            v
        }
    );
    println!(
        "{}",
        dump.to_dot(&|c| program.consts.display(c), &|q| program
            .pred_name(q)
            .to_string())
    );
}
