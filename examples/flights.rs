//! §4's airline-connection query: an n-ary (4-ary) linearly recursive
//! program evaluated through the adornment + binary-chain transformation,
//! demonstrating how the query bindings restrict the facts consulted.
//!
//! Run with `cargo run --release --example flights [airports]`.

use rq_adorn::{adorn, answer_query, display_adorned};
use rq_datalog::{Database, Query};
use rq_engine::EvalOptions;
use rq_workloads::flights;

fn main() {
    let airports: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);

    // The paper's exact example first.
    let mut w = flights::paper_example();
    let q = Query::parse(&mut w.program, &w.query).unwrap();
    let adorned = adorn(&w.program, &q).unwrap();
    println!(
        "adorned program:\n{}",
        display_adorned(&w.program, &adorned)
    );
    let db = Database::from_program(&w.program);
    let ans = answer_query(&w.program, &db, &q, &EvalOptions::default()).unwrap();
    println!(
        "transformed binary-chain system:\n{}",
        ans.binary.display_system(&w.program)
    );
    println!("cnx(hel, 540, D, AT):");
    for row in ans.display_rows(&w.program) {
        println!("  {row}");
    }

    // A larger random network: compare facts consulted with and without
    // binding propagation.
    let mut w = flights::network(airports, 4, 7);
    let q = Query::parse(&mut w.program, &w.query).unwrap();
    let db = Database::from_program(&w.program);
    let ans = answer_query(&w.program, &db, &q, &EvalOptions::default()).unwrap();
    let bottom_up = rq_adorn::bottom_up_counters(&w.program);
    println!("\nnetwork with {airports} airports, 4 flights each:");
    println!("  connections from p0@06:00: {}", ans.rows.len());
    println!(
        "  facts consulted   (ours, demand-driven): {:>8}",
        ans.outcome.counters.tuples_retrieved
    );
    println!(
        "  facts consulted (seminaive, bottom-up) : {:>8}",
        bottom_up.tuples_retrieved
    );
}
