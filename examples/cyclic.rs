//! Figure 8: cyclic same-generation data.  With an up-cycle of length m
//! and a down-cycle of length n (coprime), the natural termination
//! condition never fires and m·n iterations are needed; the
//! Marchetti-Spaccamela bound makes evaluation terminate with the
//! complete answer.
//!
//! Run with `cargo run --example cyclic [m] [n]`.

use rq_common::ConstValue;
use rq_datalog::Database;
use rq_engine::{cyclic_iteration_bound, evaluate_with_cyclic_guard, EvalOptions};
use rq_relalg::{lemma1, Lemma1Options};
use rq_workloads::fig8;

fn main() {
    let mut args = std::env::args().skip(1);
    let m: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);

    let w = fig8::cyclic(m, n);
    println!("{}: up-cycle {m}, down-cycle {n}", w.name);
    let program = &w.program;
    let db = Database::from_program(program);
    let system = lemma1(program, &Lemma1Options::default()).unwrap().system;
    let sg = program.pred_by_name("sg").unwrap();
    let a0 = program.consts.get(&ConstValue::Str("a0".into())).unwrap();

    let bound = cyclic_iteration_bound(&system, &db, sg, a0).unwrap();
    println!("m·n iteration bound: {bound}");

    let out = evaluate_with_cyclic_guard(
        &system,
        &db,
        sg,
        a0,
        &EvalOptions {
            record_iterations: true,
            ..EvalOptions::default()
        },
    );
    println!(
        "converged naturally: {} (expected false for cyclic data)",
        out.converged
    );
    let mut names: Vec<String> = out
        .answers
        .iter()
        .map(|&c| program.consts.display(c))
        .collect();
    names.sort();
    println!("answers ({}): {:?}", names.len(), names);
    if let Some(expected) = w.expected_answers {
        assert_eq!(
            names.len(),
            expected,
            "answer count must match gcd analysis"
        );
    }

    // Show the per-iteration progress: answers arrive only at levels
    // k ≡ 0 (mod m), and the last new answer can take up to m·n levels.
    let mut last_growth = 0usize;
    for (i, stat) in out.iteration_stats.iter().enumerate() {
        if i == 0 || stat.answers_so_far > out.iteration_stats[i - 1].answers_so_far {
            last_growth = i + 1;
        }
    }
    println!("last iteration that added an answer: {last_growth} (bound {bound})");
}
