//! The paper's strategy comparison (§3's table) in miniature: run the
//! same-generation query on the three Figure 7 samples with all five
//! strategies and print the unit-cost work of each.
//!
//! Run with `cargo run --release --example same_generation [n]`.

use rq_baselines::{counting, henschen_naqvi, magic_sets, reverse_counting};
use rq_common::{Const, ConstValue};
use rq_datalog::{Database, Query};
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};
use rq_workloads::fig7;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    println!("same-generation strategies on Figure 7 samples, n = {n}");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "sample", "HN", "magic", "counting", "rev-count", "ours"
    );
    for (label, w) in [
        ("(a)", fig7::sample_a(n)),
        ("(b)", fig7::sample_b(n)),
        ("(c)", fig7::sample_c(n)),
    ] {
        let mut program = w.program.clone();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let source_name = w
            .query
            .split('(')
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap();
        let a: Const = program
            .consts
            .get(&ConstValue::Str(source_name.into()))
            .unwrap();

        let hn = henschen_naqvi(&system, &db, sg, a, None);
        let query = Query::parse(&mut program, &w.query).unwrap();
        let magic = magic_sets(&program, &query).unwrap();
        let cnt = counting(&system, &db, sg, a, None);
        let rev = reverse_counting(&system, &db, sg, a, None);
        let source = EdbSource::new(&db);
        let ours = Evaluator::new(&system, &source).evaluate(sg, a, &EvalOptions::default());

        // All strategies must agree on the answers.
        assert_eq!(hn.answers, ours.answers);
        assert_eq!(cnt.answers, ours.answers);
        assert_eq!(rev.answers, ours.answers);
        assert_eq!(magic.rows.len(), ours.answers.len());

        println!(
            "{label:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            hn.counters.total_work(),
            magic.counters.total_work(),
            cnt.counters.total_work(),
            rev.counters.total_work(),
            ours.counters.total_work(),
        );
    }
    println!("\n(unit-cost work: tuples retrieved + nodes/facts inserted + firings + probes)");
    println!("expected shapes per the paper: ours/counting are O(n) on (a) and (c),");
    println!("O(n^2) on (b); Henschen-Naqvi is O(n^2) on (c).");
}
