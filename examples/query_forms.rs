//! The five query binding forms of §3 on one reachability program, plus
//! the two all-pairs optimizations: Tarjan strong-component sharing and
//! evaluation from the cheaper side (the O(tn) reference, t =
//! min(|domain|, |range|)).
//!
//! Run with `cargo run --release --example query_forms [n]`.

use rq_datalog::{parse_program, Database};
use rq_engine::{
    all_pairs_min_side, all_pairs_per_source, all_pairs_scc, query_bb, query_diagonal, EdbSource,
    EvalOptions, Evaluator,
};
use rq_relalg::{lemma1, Lemma1Options};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);

    // A cycle with a fan-out tail: cyclic enough to exercise SCC
    // sharing, asymmetric enough to exercise side selection.
    let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
    for i in 0..n {
        src.push_str(&format!("e(c{}, c{}).\n", i, (i + 1) % n));
    }
    for i in 0..n {
        src.push_str(&format!("e(c0, leaf{i}).\n"));
    }
    let program = parse_program(&src).unwrap();
    let db = Database::from_program(&program);
    let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
    println!("equation system:\n{}", system.display(&program));

    let tc = program.pred_by_name("tc").unwrap();
    let source = EdbSource::new(&db);
    let ev = Evaluator::new(&system, &source);
    let konst = |s: &str| {
        program
            .consts
            .get(&rq_common::ConstValue::Str(s.into()))
            .unwrap()
    };
    let options = EvalOptions::default();

    // p(a, Y): the primary form.
    let fwd = ev.evaluate(tc, konst("c1"), &options);
    println!("tc(c1, Y): {} answers", fwd.answers.len());

    // p(X, b): "apply the algorithm to the query r(b, Y), where r is
    // the inverse of p".
    let back = ev.evaluate_inverse(tc, konst("leaf0"), &options);
    println!("tc(X, leaf0): {} answers", back.answers.len());

    // p(a, b): evaluate p(a, Y), test membership.
    let (holds, _) = query_bb(&ev, tc, konst("c1"), konst("leaf3"), &options);
    println!("tc(c1, leaf3)? {holds}");

    // p(X, X): the diagonal — exactly the cycle members.
    let (diag, _) = query_diagonal(&ev, &source, tc, &options);
    println!("tc(X, X): {} answers (the {n}-cycle)", diag.len());
    assert_eq!(diag.len(), n);

    // p(X, Y) three ways.
    let per = all_pairs_per_source(&ev, &source, tc, &options);
    let scc = all_pairs_scc(&system, &source, tc, &options);
    let (min, side) = all_pairs_min_side(&system, &source, tc, &options);
    assert_eq!(per.pairs, scc.pairs);
    assert_eq!(per.pairs, min.pairs);
    println!("\ntc(X, Y): {} pairs", per.pairs.len());
    println!(
        "  per-source   nodes inserted: {:>8}",
        per.counters.nodes_inserted
    );
    println!(
        "  SCC-shared   nodes inserted: {:>8}",
        scc.counters.nodes_inserted
    );
    println!(
        "  side selection chose {side:?} (domain {} vs range {} candidates);\n\
         \x20 same {} pairs either way — see `paper_tables minside` for the\n\
         \x20 funnel/fan-out cases where the side choice dominates",
        n,
        2 * n,
        min.pairs.len()
    );
}
