//! A bill-of-materials ("part explosion") scenario: which base parts
//! does an assembly transitively contain, and through which supplier
//! tier does each arrive?
//!
//! This is the classic n-ary linear recursion the paper's §4 targets:
//! the 3-ary `needs(Assembly, Part, Tier)` program is not a binary-chain
//! program, but its adorned version (first argument bound) is a chain
//! program, so it transforms to a binary-chain query whose evaluation
//! consults only the parts reachable from the queried assembly.
//!
//! Run with `cargo run --release --example bill_of_materials [width]`.

use rq_adorn::{adorn, answer_query, display_adorned};
use rq_datalog::{parse_program, Database, Query};
use rq_engine::EvalOptions;
use std::fmt::Write as _;

const RULES: &str = "\
needs(A, P, T) :- contains(A, P), tier0(T).
needs(A, P, T) :- contains(A, S), needs(S, P, T1), next_tier(T1, T).
";

/// A synthetic product hierarchy: `depth` tiers, each assembly made of
/// `width` sub-parts; a second, unrelated product family of the same
/// size demonstrates that the query never touches it.
fn catalogue(depth: usize, width: usize) -> String {
    let mut facts = String::new();
    for family in ["car", "plane"] {
        let mut frontier = vec![family.to_string()];
        let mut counter = 0usize;
        for _ in 0..depth {
            let mut next = Vec::new();
            for asm in &frontier {
                for _ in 0..width {
                    let part = format!("{family}_p{counter}");
                    counter += 1;
                    writeln!(facts, "contains({asm}, {part}).").unwrap();
                    next.push(part);
                }
            }
            frontier = next;
        }
    }
    writeln!(facts, "tier0(t0).").unwrap();
    for t in 0..depth {
        writeln!(facts, "next_tier(t{t}, t{}).", t + 1).unwrap();
    }
    facts
}

fn main() {
    let width: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let depth = 4;

    let src = format!("{RULES}{}", catalogue(depth, width));
    let mut program = parse_program(&src).unwrap();
    let query = Query::parse(&mut program, "needs(car, P, T)").unwrap();

    let adorned = adorn(&program, &query).unwrap();
    println!("adorned program (query needs^bff):");
    println!("{}", display_adorned(&program, &adorned));

    let db = Database::from_program(&program);
    let answer = answer_query(&program, &db, &query, &EvalOptions::default()).unwrap();
    println!(
        "parts the car contains, by supplier tier ({} rows):",
        answer.rows.len()
    );
    for row in answer.display_rows(&program).iter().take(8) {
        println!("  {row}");
    }
    if answer.rows.len() > 8 {
        println!("  …");
    }

    // Binding propagation: the plane family is never touched.
    let bottom_up = rq_adorn::bottom_up_counters(&program);
    println!(
        "\nfacts consulted (ours, car only): {:>7}",
        answer.outcome.counters.tuples_retrieved
    );
    println!(
        "facts consulted (bottom-up, all) : {:>7}",
        bottom_up.tuples_retrieved
    );

    // Cross-check against the bottom-up oracle.
    let expected = rq_adorn::oracle_rows(&program, &query);
    assert_eq!(answer.rows, expected, "§4 must agree with the oracle");
    println!("verified against the seminaive oracle ✓");
}
