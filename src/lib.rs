//! # recursive-queries
//!
//! A Rust implementation of Grahne, Sippu & Soisalon-Soininen,
//! *Efficient Evaluation for a Subset of Recursive Queries*
//! (PODS 1987; JLP 1991, 10:301–332): graph-traversal evaluation of
//! regularly and linearly recursive binary-chain Datalog programs, and
//! the transformation that reduces a subset of n-ary linear queries to
//! binary-chain queries while propagating the query bindings.
//!
//! The crates compose as a pipeline:
//!
//! ```text
//! rq-datalog  →  rq-relalg (Lemma 1)  →  rq-automata (M(e), EM(p,i))
//!            →  rq-engine (Figures 4–5)   ← rq-adorn (§4, n-ary queries)
//! ```
//!
//! with `rq-baselines` (naive/seminaive live in `rq-datalog`;
//! Henschen–Naqvi, magic sets, counting, reverse counting, Hunt et al.
//! here) and `rq-workloads` supporting the benchmark harness.
//!
//! The simplest entry point is [`solve`]:
//!
//! ```
//! use recursive_queries::solve;
//!
//! let mut program = rq_datalog::parse_program(
//!     "sg(X,Y) :- flat(X,Y).\n\
//!      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
//!      up(a,a1). flat(a1,b1). down(b1,b). flat(a,z).",
//! ).unwrap();
//! let solution = solve(&mut program, "sg(a, Y)").unwrap();
//! assert_eq!(solution.rows(&program), vec!["b", "z"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

pub use rq_adorn;
pub use rq_automata;
pub use rq_baselines;
pub use rq_common;
pub use rq_datalog;
pub use rq_engine;
pub use rq_relalg;
pub use rq_service;
pub use rq_workloads;

use rq_common::{Const, Counters};
use rq_datalog::{binary_chain_violations, Database, Program, Query, QueryArg};
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};
use std::fmt;

/// Which pipeline answered the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// §3 directly: the program is a binary-chain program and the query
    /// binds the first argument (or none, or is answered by the inverse
    /// machine).
    BinaryChain,
    /// §4: adornment + transformation to a binary-chain program over
    /// tuple constants.
    Section4,
}

/// A solved query.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Answer rows over the query's free positions, sorted.
    pub answers: Vec<Vec<Const>>,
    /// Unit-cost instrumentation.
    pub counters: Counters,
    /// Whether evaluation converged naturally (`false` means an
    /// iteration bound cut it off).
    pub converged: bool,
    /// Which pipeline ran.
    pub strategy: Strategy,
}

impl Solution {
    /// Answer rows rendered with the program's constant names.
    pub fn rows(&self, program: &Program) -> Vec<String> {
        self.answers
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&c| program.consts.display(c))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect()
    }
}

/// Errors from [`solve`].
#[derive(Debug)]
pub enum SolveError {
    /// The query text did not parse against the program.
    Query(rq_datalog::ParseError),
    /// The §4 pipeline rejected the program/query combination.
    Section4(rq_adorn::QueryError),
    /// The binary-chain pipeline failed in Lemma 1.
    Lemma1(rq_relalg::Lemma1Error),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Query(e) => write!(f, "{e}"),
            SolveError::Section4(e) => write!(f, "{e}"),
            SolveError::Lemma1(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Answer a query with the default options.
pub fn solve(program: &mut Program, query_text: &str) -> Result<Solution, SolveError> {
    solve_with(program, query_text, &EvalOptions::default())
}

/// Answer a query, choosing the §3 binary-chain pipeline when it
/// applies and falling back to the §4 transformation otherwise.
pub fn solve_with(
    program: &mut Program,
    query_text: &str,
    options: &EvalOptions,
) -> Result<Solution, SolveError> {
    let query = Query::parse(program, query_text).map_err(SolveError::Query)?;
    let db = Database::from_program(program);

    let is_chain = binary_chain_violations(program).is_empty();
    if is_chain && program.is_derived(query.pred) {
        return solve_binary_chain(program, &db, &query, options);
    }
    let answer =
        rq_adorn::answer_query(program, &db, &query, options).map_err(SolveError::Section4)?;
    Ok(Solution {
        answers: query.restrict_free_rows(answer.rows),
        counters: answer.outcome.counters,
        converged: answer.outcome.converged,
        strategy: Strategy::Section4,
    })
}

fn solve_binary_chain(
    program: &Program,
    db: &Database,
    query: &Query,
    options: &EvalOptions,
) -> Result<Solution, SolveError> {
    let system = lemma1(program, &Lemma1Options::default())
        .map_err(SolveError::Lemma1)?
        .system;
    let source = EdbSource::new(db);
    let evaluator = Evaluator::new(&system, &source);
    let p = query.pred;
    let (answers, counters, converged) = match (query.args[0], query.args[1]) {
        (QueryArg::Bound(a), QueryArg::Free) => {
            let out = if options.max_iterations.is_none() {
                rq_engine::evaluate_with_cyclic_guard(&system, db, p, a, options)
            } else {
                evaluator.evaluate(p, a, options)
            };
            let mut rows: Vec<Vec<Const>> = out.answers.into_iter().map(|v| vec![v]).collect();
            rows.sort();
            (rows, out.counters, out.converged)
        }
        (QueryArg::Free, QueryArg::Bound(b)) => {
            let out = evaluator.evaluate_inverse(p, b, options);
            let mut rows: Vec<Vec<Const>> = out.answers.into_iter().map(|v| vec![v]).collect();
            rows.sort();
            (rows, out.counters, out.converged)
        }
        (QueryArg::Bound(a), QueryArg::Bound(b)) => {
            let (holds, out) = rq_engine::query_bb(&evaluator, p, a, b, options);
            let rows = if holds { vec![Vec::new()] } else { Vec::new() };
            (rows, out.counters, out.converged)
        }
        (QueryArg::Free, QueryArg::Free) => {
            // Regular equations qualify for the condensation evaluator,
            // run from the cheaper side; otherwise fall back to
            // per-source traversal.
            let derived = system.derived();
            let out = if system.rhs[&p].contains_any(&derived) {
                rq_engine::all_pairs_per_source(&evaluator, &source, p, options)
            } else {
                rq_engine::all_pairs_min_side(&system, &source, p, options).0
            };
            let rows: Vec<Vec<Const>> = out.pairs.into_iter().map(|(x, y)| vec![x, y]).collect();
            // `p(X, X)` and friends: repeated variables select the
            // diagonal and collapse to one column.
            let mut rows = query.restrict_free_rows(rows);
            rows.sort();
            (rows, out.counters, out.converged)
        }
    };
    Ok(Solution {
        answers,
        counters,
        converged,
        strategy: Strategy::BinaryChain,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    #[test]
    fn solve_picks_binary_chain_for_sg() {
        let mut p = parse_program(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). flat(a1,b1). down(b1,b).",
        )
        .unwrap();
        let s = solve(&mut p, "sg(a, Y)").unwrap();
        assert_eq!(s.strategy, Strategy::BinaryChain);
        assert_eq!(s.rows(&p), vec!["b"]);
    }

    #[test]
    fn solve_picks_section4_for_nary() {
        let mut p = parse_program(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,540,ams,690). flight(ams,720,cdg,810). is_deptime(540). is_deptime(720).",
        )
        .unwrap();
        let s = solve(&mut p, "cnx(hel, 540, D, AT)").unwrap();
        assert_eq!(s.strategy, Strategy::Section4);
        assert_eq!(s.rows(&p), vec!["ams,690", "cdg,810"]);
    }

    #[test]
    fn solve_all_query_forms() {
        let src = "tc(X,Y) :- e(X,Y).\n\
                   tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                   e(a,b). e(b,c).";
        let mut p = parse_program(src).unwrap();
        assert_eq!(solve(&mut p, "tc(a, Y)").unwrap().rows(&p), vec!["b", "c"]);
        assert_eq!(solve(&mut p, "tc(X, c)").unwrap().rows(&p), vec!["a", "b"]);
        assert_eq!(solve(&mut p, "tc(a, c)").unwrap().rows(&p), vec![""]);
        assert!(solve(&mut p, "tc(c, a)").unwrap().rows(&p).is_empty());
        assert_eq!(solve(&mut p, "tc(X, Y)").unwrap().answers.len(), 3);
    }

    #[test]
    fn solve_diagonal_query() {
        // tc(X, X) is the diagonal — the members of cycles — with one
        // answer column, not all pairs.
        let mut p = parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,a). e(b,c).",
        )
        .unwrap();
        let s = solve(&mut p, "tc(X, X)").unwrap();
        assert_eq!(s.rows(&p), vec!["a", "b"]);
        // Distinct variables still mean all pairs.
        assert_eq!(solve(&mut p, "tc(X, Y)").unwrap().answers.len(), 6);
        // The anonymous variable never constrains.
        assert_eq!(solve(&mut p, "tc(_, _)").unwrap().answers.len(), 6);
    }

    #[test]
    fn solve_repeated_vars_through_section4() {
        // A 3-ary program queried with a repeated variable: walk(X, X, T)
        // asks for round trips.  The edge relation is cyclic (that is
        // what makes round trips exist), so the §4 traversal needs an
        // iteration bound — the paper's noted cyclic-data limitation.
        // The tick chain ends at t3, so depth 8 covers every answer.
        let mut p = parse_program(
            "walk(A,B,T) :- edge(A,B), t0(T).\n\
             walk(A,B,T) :- edge(A,C), walk(C,B,T1), tick(T1,T).\n\
             edge(a,b). edge(b,a). edge(b,c).\n\
             t0(t0). tick(t0,t1). tick(t1,t2). tick(t2,t3).",
        )
        .unwrap();
        let options = EvalOptions {
            max_iterations: Some(8),
            ..EvalOptions::default()
        };
        let s = solve_with(&mut p, "walk(a, a, T)", &options).unwrap();
        // Bound-bound round trip from a: a→b→a at t1 (and longer at t3).
        assert_eq!(s.rows(&p), vec!["t1", "t3"]);
        // Repeated free variable: all round trips, projected to one
        // endpoint column plus the tick.
        let s = solve_with(&mut p, "walk(X, X, T)", &options).unwrap();
        let oracle = rq_datalog::seminaive_eval(&p).unwrap();
        let walk = p.pred_by_name("walk").unwrap();
        let mut expected: Vec<Vec<Const>> = oracle
            .tuples(walk)
            .into_iter()
            .filter(|t| t[0] == t[1])
            .map(|t| vec![t[0], t[2]])
            .collect();
        expected.sort();
        expected.dedup();
        assert_eq!(s.answers, expected);
        assert!(!s.answers.is_empty());
    }

    #[test]
    fn node_budget_stops_divergent_section4_queries() {
        // Without a bound this query diverges (cyclic edge data through
        // §4 — the paper's noted limitation); the node budget turns the
        // divergence into a clean incomplete result.
        let mut p = parse_program(
            "walk(A,B,T) :- edge(A,B), t0(T).\n\
             walk(A,B,T) :- edge(A,C), walk(C,B,T1), tick(T1,T).\n\
             edge(a,b). edge(b,a).\n\
             t0(t0). tick(t0,t1).",
        )
        .unwrap();
        let options = EvalOptions {
            node_budget: Some(10_000),
            ..EvalOptions::default()
        };
        let s = solve_with(&mut p, "walk(a, a, T)", &options).unwrap();
        assert!(!s.converged, "budget stop must report non-convergence");
        // The answers found within the budget are sound: a→b→a at t1.
        assert!(s.rows(&p).contains(&"t1".to_string()));
    }

    #[test]
    fn solve_cyclic_terminates() {
        let mut p = parse_program(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a0,a1). up(a1,a0). flat(a0,b0).\n\
             down(b0,b1). down(b1,b2). down(b2,b0).",
        )
        .unwrap();
        let s = solve(&mut p, "sg(a0, Y)").unwrap();
        assert_eq!(s.rows(&p).len(), 3);
    }

    #[test]
    fn solve_reports_query_errors() {
        let mut p = parse_program("e(a,b).").unwrap();
        assert!(matches!(
            solve(&mut p, "nosuch(a, Y)"),
            Err(SolveError::Query(_))
        ));
    }
}
