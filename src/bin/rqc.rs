//! `rqc` — run recursive queries from the command line.
//!
//! ```text
//! rqc <program.dl> <query> [--stats] [--plan] [--max-iterations N]
//! rqc repl [program.dl]        interactive session (see :help)
//! rqc serve <program.dl> [--threads N] [--data-dir <dir>]   stdin serving session
//! rqc serve <program.dl> --http <addr> [--threads N] [--data-dir <dir>]   HTTP serving (rq-wire)
//! rqc --demo
//! ```
//!
//! The program file holds Datalog rules and facts in the syntax of
//! `rq_datalog::parse_program`; the query is a literal like `sg(john, Y)`
//! with uppercase variables free.  `--plan` prints the pipeline chosen,
//! the equation system, and (for §4) the adorned program; `--stats`
//! prints the unit-cost counters.  All behavior lives in
//! `recursive_queries::cli`; this binary is argument handling plus a
//! stdin loop.

use recursive_queries::cli::{parse_command, Command, ServeSession, Session};
use std::io::{BufRead, Write};
use std::process::ExitCode;

const DEMO: &str = "\
sg(X,Y) :- flat(X,Y).
sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).
up(john, mary). up(erik, lisa).
flat(mary, lisa).
down(lisa, erik). down(mary, john).
";

fn usage() {
    eprintln!("usage: rqc <program.dl> <query> [--stats] [--plan] [--max-iterations N]");
    eprintln!("       rqc repl [program.dl]");
    eprintln!("       rqc serve <program.dl> [--threads N] [--http <addr>] [--data-dir <dir>]");
    eprintln!("       rqc --demo");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        usage();
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    if args[0] == "repl" {
        return repl(args.get(1).map(String::as_str));
    }

    if args[0] == "serve" {
        let threads = args
            .iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0);
        let http = args
            .iter()
            .position(|a| a == "--http")
            .map(|i| match args.get(i + 1) {
                Some(addr) if !addr.starts_with("--") => Ok(addr.clone()),
                _ => Err(()),
            });
        let data_dir = args
            .iter()
            .position(|a| a == "--data-dir")
            .map(|i| match args.get(i + 1) {
                Some(dir) if !dir.starts_with("--") => Ok(std::path::PathBuf::from(dir)),
                _ => Err(()),
            });
        let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
            eprintln!("`rqc serve` needs a program file");
            return ExitCode::from(2);
        };
        let data_dir = match data_dir {
            Some(Ok(dir)) => Some(dir),
            Some(Err(())) => {
                eprintln!("`--data-dir` needs a directory, e.g. --data-dir ./rq-data");
                return ExitCode::from(2);
            }
            None => None,
        };
        return match http {
            Some(Ok(addr)) => serve_http(path, threads, &addr, data_dir.as_deref()),
            Some(Err(())) => {
                eprintln!("`--http` needs a bind address, e.g. --http 127.0.0.1:7474");
                ExitCode::from(2)
            }
            None => serve(path, threads, data_dir.as_deref()),
        };
    }

    let stats = args.iter().any(|a| a == "--stats");
    let plan = args.iter().any(|a| a == "--plan");
    let max_iterations = args
        .iter()
        .position(|a| a == "--max-iterations")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u64>().ok());

    let (src, query_text) = if args[0] == "--demo" {
        (DEMO.to_string(), "sg(john, Y)".to_string())
    } else {
        let positional: Vec<&String> = {
            let mut skip_next = false;
            args.iter()
                .filter(|a| {
                    if skip_next {
                        skip_next = false;
                        return false;
                    }
                    if *a == "--max-iterations" {
                        skip_next = true;
                        return false;
                    }
                    !a.starts_with("--")
                })
                .collect()
        };
        if positional.len() != 2 {
            eprintln!("expected a program file and a query");
            return ExitCode::from(2);
        }
        match std::fs::read_to_string(positional[0]) {
            Ok(s) => (s, positional[1].clone()),
            Err(e) => {
                eprintln!("cannot read {}: {e}", positional[0]);
                return ExitCode::from(2);
            }
        }
    };

    let mut session = match Session::with_source(&src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let mut commands: Vec<Command> = Vec::new();
    if max_iterations.is_some() {
        commands.push(Command::MaxIterations(max_iterations));
    }
    if stats {
        commands.push(Command::Stats(true));
    }
    if plan {
        commands.push(Command::Plan(&query_text));
    }
    commands.push(Command::Query(&query_text));

    for cmd in &commands {
        match session.execute(cmd) {
            Ok(out) => {
                // Plans, settings, and diagnostics go to stderr;
                // answers to stdout.
                if matches!(cmd, Command::Query(_)) {
                    println!("{}", out.text);
                } else if !out.text.is_empty() {
                    eprintln!("{}", out.text);
                }
                if !out.notes.is_empty() {
                    eprintln!("{}", out.notes);
                }
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `rqc serve <program.dl> --http <addr>`: the same serving session as
/// the stdin loop, exposed over the `rq-wire` HTTP/1.1 JSON API.
/// Prints the bound address on stderr (one line, parseable by scripts
/// that bind port 0) and serves until killed.
fn serve_http(
    path: &str,
    threads: usize,
    addr: &str,
    data_dir: Option<&std::path::Path>,
) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let session = match ServeSession::with_data_dir(&source, threads, data_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let service = std::sync::Arc::new(session.into_service());
    print_recovery_banner(&service);
    let wire_config = rq_wire::WireConfig {
        workers: threads,
        ..rq_wire::WireConfig::default()
    };
    let server = match rq_wire::WireServer::bind(std::sync::Arc::clone(&service), addr, wire_config)
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(bound) => eprintln!(
            "rqc serve --http {bound} — {} wire worker(s), {} query thread(s), epoch {}",
            server.workers(),
            service.config().threads,
            service.snapshot().epoch()
        ),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// One stderr line describing what boot-time recovery restored, only
/// for durable services — scripts assert on its `recovered epoch`.
fn print_recovery_banner(service: &rq_service::QueryService) {
    if let Some(report) = service.recovery_report() {
        eprintln!(
            "rqc serve — data dir recovered to epoch {} ({} checkpoint, {} replayed, {} skipped, {} dropped)",
            report.recovered_epoch,
            match report.checkpoint_epoch {
                Some(e) => format!("epoch {e}"),
                None => "no".to_string(),
            },
            report.replayed_records,
            report.skipped_duplicates,
            report.dropped_records,
        );
    }
}

fn serve(path: &str, threads: usize, data_dir: Option<&std::path::Path>) -> ExitCode {
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut session = match ServeSession::with_data_dir(&source, threads, data_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    print_recovery_banner(session.service());
    eprintln!(
        "rqc serve — {} worker thread(s), epoch {} — :help for commands",
        session.service().config().threads,
        session.service().snapshot().epoch()
    );
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        eprint!("rq-serve> ");
        let _ = std::io::stderr().flush();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return ExitCode::SUCCESS, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        match session.execute_line(&line) {
            Ok(out) => {
                if !out.text.is_empty() {
                    println!("{}", out.text);
                }
                if out.quit {
                    return ExitCode::SUCCESS;
                }
            }
            Err(e) => eprintln!("error: {e}"),
        }
    }
}

fn repl(initial: Option<&str>) -> ExitCode {
    let mut session = Session::new();
    if let Some(path) = initial {
        match session.execute(&Command::Load(path)) {
            Ok(out) => eprintln!("{}", out.text),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    eprintln!("rqc repl — :help for commands, :quit to leave");
    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        eprint!("rq> ");
        let _ = std::io::stderr().flush();
        line.clear();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return ExitCode::SUCCESS, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        match parse_command(&line) {
            Ok(None) => {}
            Ok(Some(cmd)) => match session.execute(&cmd) {
                Ok(out) => {
                    if !out.text.is_empty() {
                        println!("{}", out.text);
                    }
                    if !out.notes.is_empty() {
                        eprintln!("{}", out.notes);
                    }
                    if out.quit {
                        return ExitCode::SUCCESS;
                    }
                }
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => eprintln!("error: {e}"),
        }
    }
}
