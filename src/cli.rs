//! The interactive session behind the `rqc` binary.
//!
//! Everything the REPL can do lives here, behind [`Session`] and
//! [`Command`], so the command grammar and all behaviors are unit
//! tested without a terminal; `rqc` itself is a thin stdin loop.
//!
//! ```text
//! rq> :load family.dl
//! rq> sg(john, Y)
//! rq> :plan sg(john, Y)
//! rq> :add up(mary, sue).
//! rq> :oracle sg(john, Y)
//! rq> :quit
//! ```

use crate::{solve_with, Strategy};
use rq_datalog::{
    binary_chain_violations, display_program, parse_program, program_is_regular, Analysis,
    Program, Query,
};
use rq_engine::EvalOptions;

/// One REPL command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command<'a> {
    /// `:help`
    Help,
    /// `:quit` / `:q`
    Quit,
    /// `:show` — print the current program.
    Show,
    /// `:stats on|off`
    Stats(bool),
    /// `:max-iterations N` / `:max-iterations off`
    MaxIterations(Option<u64>),
    /// `:load <path>` — replace the program with a file's contents.
    Load(&'a str),
    /// `:add <clause>` — append one rule or fact.
    Add(&'a str),
    /// `:plan <query>` — explain how the query would be evaluated.
    Plan(&'a str),
    /// `:dot <query>` — DOT rendering of the query predicate's machine.
    Dot(&'a str),
    /// `:oracle <query>` — answer via seminaive bottom-up instead.
    Oracle(&'a str),
    /// Anything else: evaluate as a query.
    Query(&'a str),
}

/// Parse one REPL line.  Empty lines and `#` comments yield `None`.
pub fn parse_command(line: &str) -> Result<Option<Command<'_>>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let Some(rest) = line.strip_prefix(':') else {
        return Ok(Some(Command::Query(line)));
    };
    let (word, arg) = match rest.split_once(char::is_whitespace) {
        Some((w, a)) => (w, a.trim()),
        None => (rest, ""),
    };
    let need = |what: &str| -> Result<(), String> {
        if arg.is_empty() {
            Err(format!("`:{word}` needs {what}"))
        } else {
            Ok(())
        }
    };
    let cmd = match word {
        "help" | "h" => Command::Help,
        "quit" | "q" | "exit" => Command::Quit,
        "show" => Command::Show,
        "stats" => match arg {
            "on" => Command::Stats(true),
            "off" => Command::Stats(false),
            other => return Err(format!("`:stats` takes on|off, not `{other}`")),
        },
        "max-iterations" => {
            if arg == "off" {
                Command::MaxIterations(None)
            } else {
                let n: u64 = arg
                    .parse()
                    .map_err(|_| format!("`:max-iterations` takes a number or off, not `{arg}`"))?;
                Command::MaxIterations(Some(n))
            }
        }
        "load" => {
            need("a file path")?;
            Command::Load(arg)
        }
        "add" => {
            need("a rule or fact")?;
            Command::Add(arg)
        }
        "plan" => {
            need("a query")?;
            Command::Plan(arg)
        }
        "dot" => {
            need("a query")?;
            Command::Dot(arg)
        }
        "oracle" => {
            need("a query")?;
            Command::Oracle(arg)
        }
        other => return Err(format!("unknown command `:{other}` (try :help)")),
    };
    Ok(Some(cmd))
}

/// What a command produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutput {
    /// Text to print (may be empty).
    pub text: String,
    /// Whether the session should end.
    pub quit: bool,
}

impl CommandOutput {
    fn text(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            quit: false,
        }
    }
}

const HELP: &str = "\
commands:
  <query>               evaluate, e.g. sg(john, Y)
  :load <path>          replace the program with a file
  :add <clause>         append a rule or fact
  :show                 print the current program
  :plan <query>         explain the evaluation pipeline
  :dot <query>          DOT rendering of the query's machine
  :oracle <query>       answer via seminaive bottom-up
  :stats on|off         print counters after each query
  :max-iterations N|off cap the traversal's main loop
  :help  :quit";

/// An interactive evaluation session: a program (kept as re-parseable
/// source text) plus evaluation settings.
#[derive(Debug, Clone, Default)]
pub struct Session {
    source: String,
    stats: bool,
    max_iterations: Option<u64>,
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Session preloaded with program text.
    pub fn with_source(source: &str) -> Result<Self, String> {
        let mut s = Self::new();
        s.replace_source(source)?;
        Ok(s)
    }

    /// The current program source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    fn replace_source(&mut self, text: &str) -> Result<Program, String> {
        let program = parse_program(text).map_err(|e| e.to_string())?;
        self.source = text.to_string();
        Ok(program)
    }

    fn program(&self) -> Result<Program, String> {
        parse_program(&self.source).map_err(|e| e.to_string())
    }

    fn options(&self) -> EvalOptions {
        EvalOptions {
            max_iterations: self.max_iterations,
            ..EvalOptions::default()
        }
    }

    /// Run one command.  I/O-free except for `:load`, which reads the
    /// named file.
    pub fn execute(&mut self, cmd: &Command<'_>) -> Result<CommandOutput, String> {
        match cmd {
            Command::Help => Ok(CommandOutput::text(HELP)),
            Command::Quit => Ok(CommandOutput {
                text: String::new(),
                quit: true,
            }),
            Command::Show => {
                let program = self.program()?;
                Ok(CommandOutput::text(display_program(&program)))
            }
            Command::Stats(on) => {
                self.stats = *on;
                Ok(CommandOutput::text(format!(
                    "stats {}",
                    if *on { "on" } else { "off" }
                )))
            }
            Command::MaxIterations(n) => {
                self.max_iterations = *n;
                Ok(CommandOutput::text(match n {
                    Some(n) => format!("max iterations = {n}"),
                    None => "max iterations off".to_string(),
                }))
            }
            Command::Load(path) => {
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                let program = self.replace_source(&text)?;
                Ok(CommandOutput::text(format!(
                    "loaded {path}: {} rules, {} facts",
                    program.rules.len(),
                    program.facts.len()
                )))
            }
            Command::Add(clause) => {
                let mut text = self.source.clone();
                if !text.is_empty() && !text.ends_with('\n') {
                    text.push('\n');
                }
                text.push_str(clause);
                if !clause.trim_end().ends_with('.') {
                    text.push('.');
                }
                text.push('\n');
                let program = self.replace_source(&text)?;
                Ok(CommandOutput::text(format!(
                    "ok: {} rules, {} facts",
                    program.rules.len(),
                    program.facts.len()
                )))
            }
            Command::Plan(q) => self.plan(q).map(CommandOutput::text),
            Command::Dot(q) => self.dot(q).map(CommandOutput::text),
            Command::Oracle(q) => {
                let mut program = self.program()?;
                let query = Query::parse(&mut program, q).map_err(|e| e.to_string())?;
                let result = rq_datalog::seminaive_eval(&program).map_err(|e| e.to_string())?;
                let mut rows = query.answer_from_relation(&result.tuples(query.pred));
                rows.sort();
                rows.dedup();
                Ok(CommandOutput::text(render_rows(&program, &rows)))
            }
            Command::Query(q) => {
                let mut program = self.program()?;
                let options = self.options();
                let solution = solve_with(&mut program, q, &options).map_err(|e| e.to_string())?;
                let mut out = render_rows(&program, &solution.answers);
                if !solution.converged {
                    out.push_str("\nwarning: iteration bound hit; answers may be incomplete");
                }
                if self.stats {
                    out.push_str(&format!(
                        "\npipeline: {}\n{}",
                        pipeline_name(solution.strategy),
                        solution.counters
                    ));
                }
                Ok(CommandOutput::text(out))
            }
        }
    }

    /// `:plan` — describe the pipeline, classification, equation system
    /// or adorned program, and machine sizes for a query.
    fn plan(&self, q: &str) -> Result<String, String> {
        let mut program = self.program()?;
        let mut out = String::new();
        let analysis = Analysis::of(&program);
        let chain = binary_chain_violations(&program).is_empty();
        out.push_str(&format!(
            "program: {} rules, {} facts\nlinear: {}; binary-chain: {}; regular: {}\n",
            program.rules.len(),
            program.facts.len(),
            analysis.program_is_linear(&program),
            chain,
            program_is_regular(&program, &analysis),
        ));
        let query = Query::parse(&mut program, q).map_err(|e| e.to_string())?;
        if chain && program.is_derived(query.pred) {
            out.push_str("pipeline: §3 binary-chain traversal\n");
            let lemma =
                rq_relalg::lemma1(&program, &rq_relalg::Lemma1Options::default())
                    .map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "equation system ({} passes):\n{}",
                lemma.passes,
                lemma.system.display(&program)
            ));
            let e = lemma.system.get(query.pred);
            let machine = rq_automata::thompson(e);
            let (_, stats) = rq_automata::compact(&machine);
            out.push_str(&format!(
                "machine M(e_{}): {} states, {} transitions ({} id); compacted: {} states, {} transitions ({} id)\n",
                program.pred_name(query.pred),
                stats.states_before,
                stats.trans_before,
                stats.id_before,
                stats.states_after,
                stats.trans_after,
                stats.id_after,
            ));
        } else {
            out.push_str("pipeline: §4 adorned transformation\n");
            let adorned = rq_adorn::adorn(&program, &query).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "adorned program:\n{}",
                rq_adorn::display_adorned(&program, &adorned)
            ));
            let violations = rq_adorn::chain_violations(&program, &adorned);
            if violations.is_empty() {
                out.push_str("chain condition: satisfied\n");
            } else {
                out.push_str(&format!(
                    "chain condition: VIOLATED ({} rule(s)) — transformation would overapproximate\n",
                    violations.len()
                ));
            }
        }
        Ok(out)
    }

    /// `:dot` — DOT source of `M(e_p)` for the query predicate.
    fn dot(&self, q: &str) -> Result<String, String> {
        let mut program = self.program()?;
        let query = Query::parse(&mut program, q).map_err(|e| e.to_string())?;
        if !program.is_derived(query.pred) {
            return Err(format!(
                "`{}` is a base predicate; nothing to plan",
                program.pred_name(query.pred)
            ));
        }
        let lemma = rq_relalg::lemma1(&program, &rq_relalg::Lemma1Options::default())
            .map_err(|e| e.to_string())?;
        let machine = rq_automata::thompson(lemma.system.get(query.pred));
        Ok(machine.to_dot(&|p| program.pred_name(p).to_string()))
    }
}

fn pipeline_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::BinaryChain => "§3 binary-chain traversal",
        Strategy::Section4 => "§4 adorned transformation",
    }
}

fn render_rows(program: &Program, rows: &[Vec<rq_common::Const>]) -> String {
    if rows.is_empty() {
        return "no".to_string();
    }
    if rows.len() == 1 && rows[0].is_empty() {
        return "yes".to_string();
    }
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|&c| program.consts.display(c))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                      up(john, mary). flat(mary, lisa). down(lisa, erik).\n";

    fn run(session: &mut Session, line: &str) -> Result<CommandOutput, String> {
        let cmd = parse_command(line)?.expect("not a blank line");
        session.execute(&cmd)
    }

    #[test]
    fn command_grammar() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("  # comment").unwrap(), None);
        assert_eq!(parse_command(":help").unwrap(), Some(Command::Help));
        assert_eq!(parse_command(":q").unwrap(), Some(Command::Quit));
        assert_eq!(
            parse_command(":stats on").unwrap(),
            Some(Command::Stats(true))
        );
        assert_eq!(
            parse_command(":max-iterations 12").unwrap(),
            Some(Command::MaxIterations(Some(12)))
        );
        assert_eq!(
            parse_command(":max-iterations off").unwrap(),
            Some(Command::MaxIterations(None))
        );
        assert_eq!(
            parse_command(":plan sg(john, Y)").unwrap(),
            Some(Command::Plan("sg(john, Y)"))
        );
        assert_eq!(
            parse_command("sg(john, Y)").unwrap(),
            Some(Command::Query("sg(john, Y)"))
        );
    }

    #[test]
    fn command_grammar_errors() {
        assert!(parse_command(":stats maybe").is_err());
        assert!(parse_command(":max-iterations lots").is_err());
        assert!(parse_command(":load").is_err());
        assert!(parse_command(":nonsense").is_err());
    }

    #[test]
    fn query_and_stats_flow() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, "sg(john, Y)").unwrap();
        assert_eq!(out.text, "erik");
        run(&mut s, ":stats on").unwrap();
        let out = run(&mut s, "sg(john, Y)").unwrap();
        assert!(out.text.contains("erik"));
        assert!(out.text.contains("pipeline"));
        assert!(out.text.contains("work="));
    }

    #[test]
    fn add_extends_the_program() {
        let mut s = Session::with_source(SG).unwrap();
        // A second flat fact one level up gives john a same-generation
        // partner directly.
        let out = run(&mut s, ":add flat(john, paul)").unwrap();
        assert!(out.text.starts_with("ok:"), "{}", out.text);
        let out = run(&mut s, "sg(john, Y)").unwrap();
        assert_eq!(out.text, "erik\npaul");
    }

    #[test]
    fn add_rejects_garbage_and_preserves_program() {
        let mut s = Session::with_source(SG).unwrap();
        let before = s.source().to_string();
        assert!(run(&mut s, ":add flat(john,").is_err());
        assert_eq!(s.source(), before);
        assert_eq!(run(&mut s, "sg(john, Y)").unwrap().text, "erik");
    }

    #[test]
    fn bb_queries_answer_yes_no() {
        let mut s = Session::with_source(SG).unwrap();
        assert_eq!(run(&mut s, "sg(john, erik)").unwrap().text, "yes");
        assert_eq!(run(&mut s, "sg(john, mary)").unwrap().text, "no");
    }

    #[test]
    fn plan_describes_binary_chain_pipeline() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, ":plan sg(john, Y)").unwrap();
        assert!(out.text.contains("§3"), "{}", out.text);
        assert!(out.text.contains("equation system"));
        assert!(out.text.contains("machine M(e_sg)"));
        assert!(out.text.contains("compacted"));
    }

    #[test]
    fn plan_describes_section4_pipeline() {
        let mut s = Session::with_source(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,540,ams,690). is_deptime(540).",
        )
        .unwrap();
        let out = run(&mut s, ":plan cnx(hel, 540, D, AT)").unwrap();
        assert!(out.text.contains("§4"), "{}", out.text);
        assert!(out.text.contains("adorned program"));
        assert!(out.text.contains("chain condition: satisfied"));
    }

    #[test]
    fn plan_flags_chain_violation() {
        let mut s = Session::with_source(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Y), p(Y,Z).\n\
             b1(a,b). b0(b,c). b2(a,b).\n\
             q(X,Y,Z) :- b2(X,Y), p(Y,Z).",
        )
        .unwrap();
        let out = run(&mut s, ":plan q(a, Y, Z)").unwrap();
        assert!(
            out.text.contains("VIOLATED"),
            "expected a chain violation report:\n{}",
            out.text
        );
    }

    #[test]
    fn dot_renders_the_machine() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, ":dot sg(john, Y)").unwrap();
        assert!(out.text.starts_with("digraph"));
        assert!(out.text.contains("flat"));
    }

    #[test]
    fn oracle_agrees_with_engine() {
        let mut s = Session::with_source(SG).unwrap();
        let engine = run(&mut s, "sg(john, Y)").unwrap().text;
        let oracle = run(&mut s, ":oracle sg(john, Y)").unwrap().text;
        assert_eq!(engine, oracle);
    }

    #[test]
    fn max_iterations_caps_and_warns() {
        // Cyclic data: with a tiny cap the answer set is incomplete and
        // the session says so.
        let mut s = Session::with_source(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a1,a2). up(a2,a1). flat(a1,b1).\n\
             down(b1,b2). down(b2,b3). down(b3,b1).",
        )
        .unwrap();
        run(&mut s, ":max-iterations 1").unwrap();
        let capped = run(&mut s, "sg(a1, Y)").unwrap();
        assert!(capped.text.contains("warning"), "{}", capped.text);
        run(&mut s, ":max-iterations off").unwrap();
        let full = run(&mut s, "sg(a1, Y)").unwrap();
        assert_eq!(full.text, "b1\nb2\nb3");
    }

    #[test]
    fn show_round_trips_the_program() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, ":show").unwrap();
        assert!(out.text.contains("sg(X,Y) :- flat(X,Y)."));
        assert!(out.text.contains("up(john,mary)."));
    }

    #[test]
    fn quit_sets_the_flag() {
        let mut s = Session::new();
        let out = run(&mut s, ":quit").unwrap();
        assert!(out.quit);
    }

    #[test]
    fn load_reports_missing_file() {
        let mut s = Session::new();
        let err = run(&mut s, ":load /nonexistent/path.dl").unwrap_err();
        assert!(err.contains("cannot read"));
    }
}
