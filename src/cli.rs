//! The interactive session behind the `rqc` binary.
//!
//! Everything the REPL can do lives here, behind [`Session`] and
//! [`Command`], so the command grammar and all behaviors are unit
//! tested without a terminal; `rqc` itself is a thin stdin loop.
//!
//! ```text
//! rq> :load family.dl
//! rq> sg(john, Y)
//! rq> :plan sg(john, Y)
//! rq> :add up(mary, sue).
//! rq> :oracle sg(john, Y)
//! rq> :quit
//! ```

use crate::{solve_with, Strategy};
use rq_datalog::{
    binary_chain_violations, display_program, parse_program, program_is_regular, Analysis, Program,
    Query,
};
use rq_engine::EvalOptions;

/// One REPL command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command<'a> {
    /// `:help`
    Help,
    /// `:quit` / `:q`
    Quit,
    /// `:show` — print the current program.
    Show,
    /// `:stats on|off`
    Stats(bool),
    /// `:max-iterations N` / `:max-iterations off`
    MaxIterations(Option<u64>),
    /// `:load <path>` — replace the program with a file's contents.
    Load(&'a str),
    /// `:add <clause>` — append one rule or fact.
    Add(&'a str),
    /// `:plan <query>` — explain how the query would be evaluated.
    Plan(&'a str),
    /// `:dot <query>` — DOT rendering of the query predicate's machine.
    Dot(&'a str),
    /// `:oracle <query>` — answer via seminaive bottom-up instead.
    Oracle(&'a str),
    /// Anything else: evaluate as a query.
    Query(&'a str),
}

/// Parse one REPL line.  Empty lines and `#` comments yield `None`.
pub fn parse_command(line: &str) -> Result<Option<Command<'_>>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let Some(rest) = line.strip_prefix(':') else {
        return Ok(Some(Command::Query(line)));
    };
    let (word, arg) = match rest.split_once(char::is_whitespace) {
        Some((w, a)) => (w, a.trim()),
        None => (rest, ""),
    };
    let need = |what: &str| -> Result<(), String> {
        if arg.is_empty() {
            Err(format!("`:{word}` needs {what}"))
        } else {
            Ok(())
        }
    };
    let cmd = match word {
        "help" | "h" => Command::Help,
        "quit" | "q" | "exit" => Command::Quit,
        "show" => Command::Show,
        "stats" => match arg {
            "on" => Command::Stats(true),
            "off" => Command::Stats(false),
            other => return Err(format!("`:stats` takes on|off, not `{other}`")),
        },
        "max-iterations" => {
            if arg == "off" {
                Command::MaxIterations(None)
            } else {
                let n: u64 = arg
                    .parse()
                    .map_err(|_| format!("`:max-iterations` takes a number or off, not `{arg}`"))?;
                Command::MaxIterations(Some(n))
            }
        }
        "load" => {
            need("a file path")?;
            Command::Load(arg)
        }
        "add" => {
            need("a rule or fact")?;
            Command::Add(arg)
        }
        "plan" => {
            need("a query")?;
            Command::Plan(arg)
        }
        "dot" => {
            need("a query")?;
            Command::Dot(arg)
        }
        "oracle" => {
            need("a query")?;
            Command::Oracle(arg)
        }
        other => return Err(format!("unknown command `:{other}` (try :help)")),
    };
    Ok(Some(cmd))
}

/// What a command produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutput {
    /// Answer text (may be empty).  Goes to stdout in the binary.
    pub text: String,
    /// Diagnostics — truncation warnings, counters.  Goes to stderr in
    /// the binary so answers stay machine-consumable.
    pub notes: String,
    /// Whether the session should end.
    pub quit: bool,
}

impl CommandOutput {
    fn text(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            notes: String::new(),
            quit: false,
        }
    }
}

const HELP: &str = "\
commands:
  <query>               evaluate, e.g. sg(john, Y)
  :load <path>          replace the program with a file
  :add <clause>         append a rule or fact
  :show                 print the current program
  :plan <query>         explain the evaluation pipeline
  :dot <query>          DOT rendering of the query's machine
  :oracle <query>       answer via seminaive bottom-up
  :stats on|off         print counters after each query
  :max-iterations N|off cap the traversal's main loop
  :help  :quit";

/// An interactive evaluation session: a program (kept as re-parseable
/// source text) plus evaluation settings.
#[derive(Debug, Clone, Default)]
pub struct Session {
    source: String,
    stats: bool,
    max_iterations: Option<u64>,
}

impl Session {
    /// An empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Session preloaded with program text.
    pub fn with_source(source: &str) -> Result<Self, String> {
        let mut s = Self::new();
        s.replace_source(source)?;
        Ok(s)
    }

    /// The current program source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    fn replace_source(&mut self, text: &str) -> Result<Program, String> {
        let program = parse_program(text).map_err(|e| e.to_string())?;
        self.source = text.to_string();
        Ok(program)
    }

    fn program(&self) -> Result<Program, String> {
        parse_program(&self.source).map_err(|e| e.to_string())
    }

    fn options(&self) -> EvalOptions {
        EvalOptions {
            max_iterations: self.max_iterations,
            ..EvalOptions::default()
        }
    }

    /// Run one command.  I/O-free except for `:load`, which reads the
    /// named file.
    pub fn execute(&mut self, cmd: &Command<'_>) -> Result<CommandOutput, String> {
        match cmd {
            Command::Help => Ok(CommandOutput::text(HELP)),
            Command::Quit => Ok(CommandOutput {
                text: String::new(),
                notes: String::new(),
                quit: true,
            }),
            Command::Show => {
                let program = self.program()?;
                Ok(CommandOutput::text(display_program(&program)))
            }
            Command::Stats(on) => {
                self.stats = *on;
                Ok(CommandOutput::text(format!(
                    "stats {}",
                    if *on { "on" } else { "off" }
                )))
            }
            Command::MaxIterations(n) => {
                self.max_iterations = *n;
                Ok(CommandOutput::text(match n {
                    Some(n) => format!("max iterations = {n}"),
                    None => "max iterations off".to_string(),
                }))
            }
            Command::Load(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                let program = self.replace_source(&text)?;
                Ok(CommandOutput::text(format!(
                    "loaded {path}: {} rules, {} facts",
                    program.rules.len(),
                    program.facts.len()
                )))
            }
            Command::Add(clause) => {
                let mut text = self.source.clone();
                if !text.is_empty() && !text.ends_with('\n') {
                    text.push('\n');
                }
                text.push_str(clause);
                if !clause.trim_end().ends_with('.') {
                    text.push('.');
                }
                text.push('\n');
                let program = self.replace_source(&text)?;
                Ok(CommandOutput::text(format!(
                    "ok: {} rules, {} facts",
                    program.rules.len(),
                    program.facts.len()
                )))
            }
            Command::Plan(q) => self.plan(q).map(CommandOutput::text),
            Command::Dot(q) => self.dot(q).map(CommandOutput::text),
            Command::Oracle(q) => {
                let mut program = self.program()?;
                let query = Query::parse(&mut program, q).map_err(|e| e.to_string())?;
                let result = rq_datalog::seminaive_eval(&program).map_err(|e| e.to_string())?;
                let mut rows = query.answer_from_relation(&result.tuples(query.pred));
                rows.sort();
                rows.dedup();
                Ok(CommandOutput::text(render_rows(&program, &rows)))
            }
            Command::Query(q) => {
                let mut program = self.program()?;
                let options = self.options();
                let solution = solve_with(&mut program, q, &options).map_err(|e| e.to_string())?;
                let out = render_rows(&program, &solution.answers);
                let mut notes = String::new();
                if !solution.converged {
                    notes.push_str("warning: iteration bound hit; answers may be incomplete");
                }
                if self.stats {
                    if !notes.is_empty() {
                        notes.push('\n');
                    }
                    notes.push_str(&format!(
                        "pipeline: {}\n{}",
                        pipeline_name(solution.strategy),
                        solution.counters
                    ));
                }
                Ok(CommandOutput {
                    text: out,
                    notes,
                    quit: false,
                })
            }
        }
    }

    /// `:plan` — describe the pipeline, classification, equation system
    /// or adorned program, and machine sizes for a query.
    fn plan(&self, q: &str) -> Result<String, String> {
        let mut program = self.program()?;
        let mut out = String::new();
        let analysis = Analysis::of(&program);
        let chain = binary_chain_violations(&program).is_empty();
        out.push_str(&format!(
            "program: {} rules, {} facts\nlinear: {}; binary-chain: {}; regular: {}\n",
            program.rules.len(),
            program.facts.len(),
            analysis.program_is_linear(&program),
            chain,
            program_is_regular(&program, &analysis),
        ));
        let query = Query::parse(&mut program, q).map_err(|e| e.to_string())?;
        if chain && program.is_derived(query.pred) {
            out.push_str("pipeline: §3 binary-chain traversal\n");
            let lemma = rq_relalg::lemma1(&program, &rq_relalg::Lemma1Options::default())
                .map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "equation system ({} passes):\n{}",
                lemma.passes,
                lemma.system.display(&program)
            ));
            let e = lemma.system.get(query.pred);
            let machine = rq_automata::thompson(e);
            let (_, stats) = rq_automata::compact(&machine);
            out.push_str(&format!(
                "machine M(e_{}): {} states, {} transitions ({} id); compacted: {} states, {} transitions ({} id)\n",
                program.pred_name(query.pred),
                stats.states_before,
                stats.trans_before,
                stats.id_before,
                stats.states_after,
                stats.trans_after,
                stats.id_after,
            ));
        } else {
            out.push_str("pipeline: §4 adorned transformation\n");
            let adorned = rq_adorn::adorn(&program, &query).map_err(|e| e.to_string())?;
            out.push_str(&format!(
                "adorned program:\n{}",
                rq_adorn::display_adorned(&program, &adorned)
            ));
            let violations = rq_adorn::chain_violations(&program, &adorned);
            if violations.is_empty() {
                out.push_str("chain condition: satisfied\n");
            } else {
                out.push_str(&format!(
                    "chain condition: VIOLATED ({} rule(s)) — transformation would overapproximate\n",
                    violations.len()
                ));
            }
        }
        Ok(out)
    }

    /// `:dot` — DOT source of `M(e_p)` for the query predicate.
    fn dot(&self, q: &str) -> Result<String, String> {
        let mut program = self.program()?;
        let query = Query::parse(&mut program, q).map_err(|e| e.to_string())?;
        if !program.is_derived(query.pred) {
            return Err(format!(
                "`{}` is a base predicate; nothing to plan",
                program.pred_name(query.pred)
            ));
        }
        let lemma = rq_relalg::lemma1(&program, &rq_relalg::Lemma1Options::default())
            .map_err(|e| e.to_string())?;
        let machine = rq_automata::thompson(lemma.system.get(query.pred));
        Ok(machine.to_dot(&|p| program.pred_name(p).to_string()))
    }
}

/// A serving session behind `rqc serve`: a [`rq_service::QueryService`]
/// answering batches of queries of **any arity** — every mix of bound
/// and free arguments goes through one generalized
/// [`rq_service::QuerySpec`], with the §4 transformation serving n-ary
/// predicates — and `:add` feeding the copy-on-write snapshot store.
/// Like [`Session`], it is I/O-free so the grammar and behaviors are
/// unit tested without a terminal.  The same session serves two front
/// ends: the binary's stdin loop, and — via
/// [`ServeSession::into_service`] — the `rq-wire` HTTP server behind
/// `rqc serve --http <addr>`.
///
/// ```
/// use recursive_queries::cli::ServeSession;
///
/// let mut session = ServeSession::new(
///     "tc(X,Y) :- e(X,Y).\n\
///      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
///      e(a,b). e(b,c).",
///     1, // worker threads
/// ).unwrap();
/// // One line = one batch on one snapshot; `;` separates queries.
/// let out = session.execute_line("tc(a, Y); tc(a, c)").unwrap();
/// assert_eq!(out.text, "tc(a, Y): b c\ntc(a, c): yes");
/// // `:add` publishes the next epoch copy-on-write.
/// let out = session.execute_line(":add e(c,d)").unwrap();
/// assert_eq!(out.text, "epoch 1 (3 tuples)");
/// let out = session.execute_line("tc(a, Y)").unwrap();
/// assert_eq!(out.text, "tc(a, Y): b c d");
/// ```
pub struct ServeSession {
    service: rq_service::QueryService,
    /// `:trace on` — append each batch's span tree to the output.
    trace: bool,
}

const SERVE_HELP: &str = "\
serve commands:
  <query>[; <query>...]  answer a batch of queries on one snapshot;
                         identical queries are evaluated once, e.g.
                         tc(a, Y); tc(X, b)   point queries
                         tc(a, b)             membership (yes/no)
                         tc(X, Y)             all pairs
                         tc(X, X)             the diagonal (cycle members)
                         cnx(hel,540,D,AT)    n-ary via the §4 rewrite
  :add <facts>           ingest facts copy-on-write (publishes a new epoch)
  :epoch                 print the current snapshot epoch
  :stats                 plan/result cache hit rates, sizes, evictions, and
                         the epoch context's probe/machine memo counters
  :trace on|off          append each batch's span tree (where the time went)
  :help  :quit";

impl ServeSession {
    /// Start serving `source` with `threads` batch workers (0 = the
    /// machine's parallelism).
    pub fn new(source: &str, threads: usize) -> Result<Self, String> {
        Self::with_data_dir(source, threads, None)
    }

    /// [`ServeSession::new`] with optional durability: when `data_dir`
    /// is set, the service recovers its pre-crash state from that
    /// directory (checkpoint + write-ahead-log replay, see
    /// [`rq_service::QueryService::open`]) and logs every subsequent
    /// ingest before acknowledging it — the `rqc serve --data-dir`
    /// path.
    pub fn with_data_dir(
        source: &str,
        threads: usize,
        data_dir: Option<&std::path::Path>,
    ) -> Result<Self, String> {
        let program = parse_program(source).map_err(|e| e.to_string())?;
        let mut config = rq_service::ServiceConfig::default();
        if threads > 0 {
            // One knob for both levels: `--threads 1` really is a
            // single-threaded service (batch workers *and* in-query
            // machine expansion).
            config.threads = threads;
            config.eval_threads = threads;
        }
        let service = match data_dir {
            None => rq_service::QueryService::with_config(program, config),
            Some(dir) => rq_service::QueryService::open_with_config(program, dir, config)
                .map_err(|e| e.to_string())?,
        };
        Ok(Self {
            service,
            trace: false,
        })
    }

    /// The underlying service (for tests and the binary's banner).
    pub fn service(&self) -> &rq_service::QueryService {
        &self.service
    }

    /// Surrender the underlying service — the handoff point for front
    /// ends that share it across threads, like the `rq-wire` HTTP
    /// server behind `rqc serve --http` (which wraps it in an `Arc`
    /// and answers every endpoint through the same snapshot store,
    /// caches, and epoch contexts the REPL would use).
    pub fn into_service(self) -> rq_service::QueryService {
        self.service
    }

    /// Execute one input line.  Queries are separated by `;` and
    /// answered as one batch on one snapshot.
    pub fn execute_line(&mut self, line: &str) -> Result<CommandOutput, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(CommandOutput::text(""));
        }
        if let Some(rest) = line.strip_prefix(':') {
            let (word, arg) = match rest.split_once(char::is_whitespace) {
                Some((w, a)) => (w, a.trim()),
                None => (rest, ""),
            };
            return match word {
                "help" | "h" => Ok(CommandOutput::text(SERVE_HELP)),
                "quit" | "q" | "exit" => Ok(CommandOutput {
                    text: String::new(),
                    notes: String::new(),
                    quit: true,
                }),
                "epoch" => Ok(CommandOutput::text(format!(
                    "epoch {}",
                    self.service.snapshot().epoch()
                ))),
                // One shared rendering path with the HTTP API's
                // `GET /stats`: both surfaces print the same
                // `StatsReport` (text here, JSON there), so the
                // counter sets can never drift apart.
                "stats" => Ok(CommandOutput::text(self.service.stats_report().to_string())),
                "trace" => {
                    self.trace = match arg {
                        "on" => true,
                        "off" => false,
                        other => return Err(format!("`:trace` takes on|off, not `{other}`")),
                    };
                    Ok(CommandOutput::text(format!(
                        "trace {}",
                        if self.trace { "on" } else { "off" }
                    )))
                }
                "add" => {
                    if arg.is_empty() {
                        return Err("`:add` needs one or more facts".to_string());
                    }
                    let mut text = arg.to_string();
                    if !text.trim_end().ends_with('.') {
                        text.push('.');
                    }
                    let snap = self.service.ingest(&text).map_err(|e| e.to_string())?;
                    Ok(CommandOutput::text(format!(
                        "epoch {} ({} tuples)",
                        snap.epoch(),
                        snap.db().total_tuples()
                    )))
                }
                other => Err(format!("unknown serve command `:{other}` (try :help)")),
            };
        }
        self.answer_batch(line)
    }

    fn answer_batch(&self, line: &str) -> Result<CommandOutput, String> {
        let texts: Vec<&str> = line
            .split(';')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .collect();
        if texts.is_empty() {
            return Ok(CommandOutput::text(""));
        }
        let snapshot = self.service.snapshot();
        // Parse everything first so one batch sees one epoch; a query
        // over an unknown constant has a trivially empty answer.
        let mut parsed: Vec<Result<Option<rq_service::QuerySpec>, String>> = Vec::new();
        for text in &texts {
            parsed.push(
                match rq_service::parse_serve_query(snapshot.program(), text) {
                    Ok(q) => Ok(Some(q)),
                    Err(rq_service::ServiceError::UnknownConstant(_)) => Ok(None),
                    Err(e) => Err(e.to_string()),
                },
            );
        }
        let queries: Vec<rq_service::QuerySpec> = parsed
            .iter()
            .filter_map(|p| p.as_ref().ok().cloned().flatten())
            .collect();
        // Evaluate pinned to the snapshot the queries were parsed (and
        // will be rendered) against, so a concurrent publish cannot
        // desynchronize rows from the interner that decodes them.
        // Spans are recorded per thread, so a `:trace` of a multi-query
        // batch under several workers shows only the caller's spans;
        // single-query lines (which run inline) always trace fully.
        if self.trace {
            rq_common::obs::trace_start();
        }
        let mut answers = self.service.query_batch_on(&snapshot, &queries).into_iter();
        let spans = if self.trace {
            rq_common::obs::trace_finish()
        } else {
            Vec::new()
        };
        let mut out = Vec::new();
        for (text, slot) in texts.iter().zip(&parsed) {
            let rendered = match slot {
                Err(e) => format!("error: {e}"),
                // An unknown constant is semantically empty: a fully
                // bound query renders the definitive `no`, a query
                // with free positions the empty answer.
                Ok(None) if query_text_is_fully_bound(text) => "no".to_string(),
                Ok(None) => "(none)".to_string(),
                Ok(Some(spec)) => match answers.next().expect("one answer per parsed query") {
                    Err(e) => format!("error: {e}"),
                    Ok(answer) => render_serve_answer(snapshot.program(), spec, &answer),
                },
            };
            out.push(format!("{text}: {rendered}"));
        }
        if self.trace && !spans.is_empty() {
            out.push(rq_common::obs::trace_text(&spans).trim_end().to_string());
        }
        Ok(CommandOutput::text(out.join("\n")))
    }
}

/// Whether a query text binds every argument (no uppercase- or
/// `_`-led argument) — used to render `no` instead of `(none)` for
/// membership queries naming constants absent from the data.
fn query_text_is_fully_bound(text: &str) -> bool {
    let Some(open) = text.find('(') else {
        return false;
    };
    let Some(close) = text.rfind(')') else {
        return false;
    };
    text[open + 1..close].split(',').all(|arg| {
        !matches!(
            arg.trim().chars().next(),
            Some(c) if c.is_ascii_uppercase() || c == '_'
        )
    })
}

/// Render one served answer: `yes`/`no` for fully bound queries,
/// space-separated constants for one answer column, `(x,y)`-style
/// tuples for wider rows.
fn render_serve_answer(
    program: &Program,
    spec: &rq_service::QuerySpec,
    answer: &rq_service::ServiceAnswer,
) -> String {
    if spec.free_positions().is_empty() {
        return if answer.holds() { "yes" } else { "no" }.to_string();
    }
    if answer.rows.is_empty() {
        return "(none)".to_string();
    }
    let display = |c| program.consts.display(c);
    answer
        .rows
        .iter()
        .map(|row| {
            if row.len() == 1 {
                display(row[0])
            } else {
                format!(
                    "({})",
                    row.iter()
                        .map(|&c| display(c))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn pipeline_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::BinaryChain => "§3 binary-chain traversal",
        Strategy::Section4 => "§4 adorned transformation",
    }
}

fn render_rows(program: &Program, rows: &[Vec<rq_common::Const>]) -> String {
    if rows.is_empty() {
        return "no".to_string();
    }
    if rows.len() == 1 && rows[0].is_empty() {
        return "yes".to_string();
    }
    rows.iter()
        .map(|row| {
            row.iter()
                .map(|&c| program.consts.display(c))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                      up(john, mary). flat(mary, lisa). down(lisa, erik).\n";

    fn run(session: &mut Session, line: &str) -> Result<CommandOutput, String> {
        let cmd = parse_command(line)?.expect("not a blank line");
        session.execute(&cmd)
    }

    #[test]
    fn command_grammar() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("  # comment").unwrap(), None);
        assert_eq!(parse_command(":help").unwrap(), Some(Command::Help));
        assert_eq!(parse_command(":q").unwrap(), Some(Command::Quit));
        assert_eq!(
            parse_command(":stats on").unwrap(),
            Some(Command::Stats(true))
        );
        assert_eq!(
            parse_command(":max-iterations 12").unwrap(),
            Some(Command::MaxIterations(Some(12)))
        );
        assert_eq!(
            parse_command(":max-iterations off").unwrap(),
            Some(Command::MaxIterations(None))
        );
        assert_eq!(
            parse_command(":plan sg(john, Y)").unwrap(),
            Some(Command::Plan("sg(john, Y)"))
        );
        assert_eq!(
            parse_command("sg(john, Y)").unwrap(),
            Some(Command::Query("sg(john, Y)"))
        );
    }

    #[test]
    fn command_grammar_errors() {
        assert!(parse_command(":stats maybe").is_err());
        assert!(parse_command(":max-iterations lots").is_err());
        assert!(parse_command(":load").is_err());
        assert!(parse_command(":nonsense").is_err());
    }

    #[test]
    fn query_and_stats_flow() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, "sg(john, Y)").unwrap();
        assert_eq!(out.text, "erik");
        run(&mut s, ":stats on").unwrap();
        let out = run(&mut s, "sg(john, Y)").unwrap();
        assert!(out.text.contains("erik"));
        assert!(out.notes.contains("pipeline"));
        assert!(out.notes.contains("work="));
    }

    #[test]
    fn add_extends_the_program() {
        let mut s = Session::with_source(SG).unwrap();
        // A second flat fact one level up gives john a same-generation
        // partner directly.
        let out = run(&mut s, ":add flat(john, paul)").unwrap();
        assert!(out.text.starts_with("ok:"), "{}", out.text);
        let out = run(&mut s, "sg(john, Y)").unwrap();
        assert_eq!(out.text, "erik\npaul");
    }

    #[test]
    fn add_rejects_garbage_and_preserves_program() {
        let mut s = Session::with_source(SG).unwrap();
        let before = s.source().to_string();
        assert!(run(&mut s, ":add flat(john,").is_err());
        assert_eq!(s.source(), before);
        assert_eq!(run(&mut s, "sg(john, Y)").unwrap().text, "erik");
    }

    #[test]
    fn bb_queries_answer_yes_no() {
        let mut s = Session::with_source(SG).unwrap();
        assert_eq!(run(&mut s, "sg(john, erik)").unwrap().text, "yes");
        assert_eq!(run(&mut s, "sg(john, mary)").unwrap().text, "no");
    }

    #[test]
    fn plan_describes_binary_chain_pipeline() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, ":plan sg(john, Y)").unwrap();
        assert!(out.text.contains("§3"), "{}", out.text);
        assert!(out.text.contains("equation system"));
        assert!(out.text.contains("machine M(e_sg)"));
        assert!(out.text.contains("compacted"));
    }

    #[test]
    fn plan_describes_section4_pipeline() {
        let mut s = Session::with_source(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,540,ams,690). is_deptime(540).",
        )
        .unwrap();
        let out = run(&mut s, ":plan cnx(hel, 540, D, AT)").unwrap();
        assert!(out.text.contains("§4"), "{}", out.text);
        assert!(out.text.contains("adorned program"));
        assert!(out.text.contains("chain condition: satisfied"));
    }

    #[test]
    fn plan_flags_chain_violation() {
        let mut s = Session::with_source(
            "p(X,Y) :- b0(X,Y).\n\
             p(X,Y) :- b1(X,Y), p(Y,Z).\n\
             b1(a,b). b0(b,c). b2(a,b).\n\
             q(X,Y,Z) :- b2(X,Y), p(Y,Z).",
        )
        .unwrap();
        let out = run(&mut s, ":plan q(a, Y, Z)").unwrap();
        assert!(
            out.text.contains("VIOLATED"),
            "expected a chain violation report:\n{}",
            out.text
        );
    }

    #[test]
    fn dot_renders_the_machine() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, ":dot sg(john, Y)").unwrap();
        assert!(out.text.starts_with("digraph"));
        assert!(out.text.contains("flat"));
    }

    #[test]
    fn oracle_agrees_with_engine() {
        let mut s = Session::with_source(SG).unwrap();
        let engine = run(&mut s, "sg(john, Y)").unwrap().text;
        let oracle = run(&mut s, ":oracle sg(john, Y)").unwrap().text;
        assert_eq!(engine, oracle);
    }

    #[test]
    fn max_iterations_caps_and_warns() {
        // Cyclic data: with a tiny cap the answer set is incomplete and
        // the session says so.
        let mut s = Session::with_source(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a1,a2). up(a2,a1). flat(a1,b1).\n\
             down(b1,b2). down(b2,b3). down(b3,b1).",
        )
        .unwrap();
        run(&mut s, ":max-iterations 1").unwrap();
        let capped = run(&mut s, "sg(a1, Y)").unwrap();
        assert!(capped.notes.contains("warning"), "{}", capped.notes);
        run(&mut s, ":max-iterations off").unwrap();
        let full = run(&mut s, "sg(a1, Y)").unwrap();
        assert_eq!(full.text, "b1\nb2\nb3");
    }

    #[test]
    fn show_round_trips_the_program() {
        let mut s = Session::with_source(SG).unwrap();
        let out = run(&mut s, ":show").unwrap();
        assert!(out.text.contains("sg(X,Y) :- flat(X,Y)."));
        assert!(out.text.contains("up(john,mary)."));
    }

    #[test]
    fn quit_sets_the_flag() {
        let mut s = Session::new();
        let out = run(&mut s, ":quit").unwrap();
        assert!(out.quit);
    }

    #[test]
    fn load_reports_missing_file() {
        let mut s = Session::new();
        let err = run(&mut s, ":load /nonexistent/path.dl").unwrap_err();
        assert!(err.contains("cannot read"));
    }

    const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                      e(a,b). e(b,c).\n";

    #[test]
    fn serve_batches_queries_on_one_line() {
        let mut s = ServeSession::new(TC, 2).unwrap();
        let out = s.execute_line("tc(a, Y); tc(X, c); tc(c, Y)").unwrap();
        assert_eq!(out.text, "tc(a, Y): b c\ntc(X, c): a b\ntc(c, Y): (none)");
    }

    #[test]
    fn serve_add_publishes_epochs_and_refreshes_answers() {
        let mut s = ServeSession::new(TC, 1).unwrap();
        assert_eq!(s.execute_line(":epoch").unwrap().text, "epoch 0");
        assert_eq!(s.execute_line("tc(a, Y)").unwrap().text, "tc(a, Y): b c");
        let out = s.execute_line(":add e(c,d)").unwrap();
        assert!(out.text.starts_with("epoch 1"), "{}", out.text);
        assert_eq!(s.execute_line("tc(a, Y)").unwrap().text, "tc(a, Y): b c d");
        // A brand-new constant is queryable after ingest.
        assert_eq!(s.execute_line("tc(X, d)").unwrap().text, "tc(X, d): a b c");
    }

    #[test]
    fn serve_trace_toggle_appends_span_tree() {
        let mut s = ServeSession::new(TC, 1).unwrap();
        assert!(s.execute_line(":trace maybe").is_err());
        assert_eq!(s.execute_line(":trace on").unwrap().text, "trace on");
        let out = s.execute_line("tc(a, Y)").unwrap();
        assert!(out.text.starts_with("tc(a, Y): b c"), "{}", out.text);
        assert!(out.text.contains("service.query"), "{}", out.text);
        assert!(out.text.contains("engine.traverse"), "{}", out.text);
        // A cached repeat still traces (and says so).
        let out = s.execute_line("tc(a, Y)").unwrap();
        assert!(out.text.contains("result_cache=hit"), "{}", out.text);
        assert_eq!(s.execute_line(":trace off").unwrap().text, "trace off");
        let out = s.execute_line("tc(a, Y)").unwrap();
        assert!(!out.text.contains("service.query"), "{}", out.text);
    }

    #[test]
    fn serve_answers_all_pairs_and_diagonal_forms() {
        let mut s = ServeSession::new(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,a).\n",
            1,
        )
        .unwrap();
        let out = s.execute_line("tc(X, Y)").unwrap();
        // Rows of the full relation: the a↔b cycle closure.
        assert_eq!(out.text, "tc(X, Y): (a,a) (a,b) (b,a) (b,b)");
        let out = s.execute_line("tc(X, X)").unwrap();
        assert_eq!(out.text, "tc(X, X): a b");
        // Mixed batches answer on one snapshot.
        let out = s.execute_line("tc(a, Y); tc(X, X)").unwrap();
        assert_eq!(out.text, "tc(a, Y): a b\ntc(X, X): a b");
    }

    #[test]
    fn serve_answers_membership_yes_no() {
        let mut s = ServeSession::new(TC, 1).unwrap();
        let out = s.execute_line("tc(a, c); tc(c, a)").unwrap();
        assert_eq!(out.text, "tc(a, c): yes\ntc(c, a): no");
    }

    #[test]
    fn serve_answers_nary_flight_queries() {
        let mut s = ServeSession::new(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel,540,ams,690). flight(ams,720,cdg,810).\n\
             is_deptime(540). is_deptime(720).",
            2,
        )
        .unwrap();
        let out = s.execute_line("cnx(hel, 540, D, AT)").unwrap();
        assert_eq!(out.text, "cnx(hel, 540, D, AT): (ams,690) (cdg,810)");
        // Fully bound n-ary membership.
        let out = s
            .execute_line("cnx(hel, 540, cdg, 810); cnx(hel, 540, cdg, 690)")
            .unwrap();
        assert_eq!(
            out.text,
            "cnx(hel, 540, cdg, 810): yes\ncnx(hel, 540, cdg, 690): no"
        );
        // Ingest opens a new leg; the served answer follows the epoch.
        s.execute_line(":add flight(cdg,840,nce,930)").unwrap();
        s.execute_line(":add is_deptime(840)").unwrap();
        let out = s.execute_line("cnx(hel, 540, D, AT)").unwrap();
        assert_eq!(
            out.text,
            "cnx(hel, 540, D, AT): (ams,690) (cdg,810) (nce,930)"
        );
    }

    #[test]
    fn serve_dedups_identical_queries_in_a_batch() {
        let mut s = ServeSession::new(TC, 1).unwrap();
        // `tc(a, Y)` and `tc(a, Z)` are one canonical spec.
        let out = s.execute_line("tc(a, Y); tc(a, Z); tc(a, Y)").unwrap();
        let lines: Vec<&str> = out.text.lines().collect();
        assert!(lines.iter().all(|l| l.ends_with(": b c")), "{}", out.text);
        let stats = s.execute_line(":stats").unwrap().text;
        assert!(stats.contains("2 deduped"), "{stats}");
    }

    #[test]
    fn serve_reports_per_query_errors_inline() {
        let mut s = ServeSession::new(TC, 1).unwrap();
        let out = s
            .execute_line("tc(a, Y); zzz(a, Y); tc(unseen, Y)")
            .unwrap();
        let lines: Vec<&str> = out.text.lines().collect();
        assert_eq!(lines[0], "tc(a, Y): b c");
        assert!(
            lines[1].contains("error") && lines[1].contains("zzz"),
            "{}",
            lines[1]
        );
        // Unknown constants are semantically empty, not errors — and a
        // fully bound query over one is a definitive `no`.
        assert_eq!(lines[2], "tc(unseen, Y): (none)");
        let out = s.execute_line("tc(a, unseen)").unwrap();
        assert_eq!(out.text, "tc(a, unseen): no");
    }

    #[test]
    fn serve_stats_and_memoization() {
        let mut s = ServeSession::new(TC, 1).unwrap();
        s.execute_line("tc(a, Y)").unwrap();
        s.execute_line("tc(a, Y)").unwrap();
        let stats = s.execute_line(":stats").unwrap().text;
        assert!(stats.contains("plan cache:"), "{stats}");
        assert!(stats.contains("result cache: 1 hits"), "{stats}");
        assert!(stats.contains("epoch context:"), "{stats}");
        assert!(stats.contains("machine memo"), "{stats}");
    }

    #[test]
    fn serve_stats_report_epoch_context_counters() {
        // An n-ary batch shares its virtual probes within the epoch;
        // the all-free tc query takes the shared-SCC path.  Both must
        // show up in `:stats`, and an `:add` resets the epoch context.
        let mut s = ServeSession::new(
            &format!(
                "{TC}\
                 cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
                 cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
                 flight(hel,540,ams,690). flight(ams,720,cdg,810).\n\
                 is_deptime(540). is_deptime(720)."
            ),
            1,
        )
        .unwrap();
        s.execute_line("cnx(hel, 540, D, AT); cnx(ams, 720, D, AT)")
            .unwrap();
        let stats = s.execute_line(":stats").unwrap().text;
        let context_line = stats
            .lines()
            .find(|l| l.starts_with("epoch context:"))
            .expect("stats must include the epoch context line");
        assert!(
            !context_line.contains("probe memo 0 hits / 0 misses"),
            "{context_line}"
        );

        // A pure binary-chain session: the all-free form takes the
        // shared-SCC path and the counter says so.
        let mut chain = ServeSession::new(TC, 1).unwrap();
        chain.execute_line("tc(X, Y)").unwrap();
        let chain_stats = chain.execute_line(":stats").unwrap().text;
        assert!(chain_stats.contains("1 scc-served"), "{chain_stats}");
        // Publishing re-keys the context, but the cnx plan reads only
        // flight/is_deptime — disjoint from the dirtied e — so its
        // probe space (memo and counters included) carries across the
        // publish, and `:stats` says so.
        s.execute_line(":add e(c,d)").unwrap();
        let stats = s.execute_line(":stats").unwrap().text;
        assert!(
            !stats.contains("probe memo 0 hits / 0 misses (0 entr(ies))"),
            "clean-read-set probe space must carry: {stats}"
        );
        assert!(stats.contains("1 probe space(s)"), "{stats}");
        assert!(
            stats.contains("0 scc-served"),
            "scc counter is per-epoch: {stats}"
        );
    }

    #[test]
    fn serve_rejects_rules_in_add_and_unknown_commands() {
        let mut s = ServeSession::new(TC, 1).unwrap();
        assert!(s.execute_line(":add p(X,Y) :- e(X,Y)").is_err());
        assert!(s.execute_line(":nonsense").is_err());
        assert!(s.execute_line(":add").is_err());
        assert!(s.execute_line(":quit").unwrap().quit);
    }
}
