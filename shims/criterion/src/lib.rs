//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace
//! vendors the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group` with `sample_size` / `throughput` /
//! `bench_with_input` / `bench_function` / `finish`, `Bencher::iter`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the `criterion_group!`
//! / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: one warm-up/calibration run,
//! then `sample_size` timed samples of a batch sized to ~10ms, with
//! median / min / max reported on stdout.  No plots, no statistics
//! beyond that — enough to compare configurations of this workspace on
//! one machine.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark registry and settings.
pub struct Criterion {
    default_sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes user args after the binary
        // name; accept the first non-flag token as a substring filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Self {
            default_sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declare per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        if self.skipped(&id) {
            return self;
        }
        let mut bencher = Bencher::new(self.effective_sample_size());
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Run an input-free benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if self.skipped(&id) {
            return self;
        }
        let mut bencher = Bencher::new(self.effective_sample_size());
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// End the group (nothing extra to do; kept for API parity).
    pub fn finish(self) {}

    fn effective_sample_size(&self) -> usize {
        self.sample_size
            .unwrap_or(self.criterion.default_sample_size)
            .max(2)
    }

    fn skipped(&self, id: &BenchmarkId) -> bool {
        let full = format!("{}/{}", self.name, id.id);
        match &self.criterion.filter {
            Some(f) => !full.contains(f.as_str()),
            None => false,
        }
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let Some(stats) = &bencher.stats else {
            println!("{}/{}: no measurements", self.name, id.id);
            return;
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>12.0} elem/s", n as f64 / stats.median.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!("  {:>12.0} B/s", n as f64 / stats.median.as_secs_f64())
            }
        });
        println!(
            "{}/{}: median {:?} (min {:?}, max {:?}, {} samples){}",
            self.name,
            id.id,
            stats.median,
            stats.min,
            stats.max,
            stats.samples,
            rate.unwrap_or_default()
        );
    }
}

/// Summary of one benchmark's samples (per-iteration durations).
struct Stats {
    median: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
}

/// Runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            sample_size,
            stats: None,
        }
    }

    /// Measure the routine: warm up once, calibrate a batch aiming at
    /// ~10ms per sample, then record `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(start.elapsed() / batch);
        }
        per_iter.sort_unstable();
        self.stats = Some(Stats {
            median: per_iter[per_iter.len() / 2],
            min: per_iter[0],
            max: *per_iter.last().expect("sample_size >= 2"),
            samples: per_iter.len(),
        });
    }
}

/// Collect benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_function(BenchmarkId::from_parameter("noop"), |b| b.iter(|| ()));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
