//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_range`
//! (over `Range` / `RangeInclusive` of the common integer types) and
//! `gen_bool`.  The generator is SplitMix64 — statistically fine for
//! test-data generation, deterministic per seed, and dependency-free.
//!
//! It intentionally does NOT reproduce `rand`'s value streams: code that
//! relies on a specific seed producing specific draws is relying on an
//! implementation detail either way.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range; panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 uniform mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Unbiased sample from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u32), b.gen_range(0..1000u32));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "p=0.5 gave {hits}/2000");
    }

    #[test]
    fn covers_full_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..500 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
