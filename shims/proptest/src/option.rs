//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy yielding `Some` of the inner value three times out of four
/// (matching real proptest's default weighting), else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}
