//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A size specification: an exact length or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
