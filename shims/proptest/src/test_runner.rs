//! Test configuration, RNG, and the failure type used by the
//! `prop_assert*` macros.

use std::fmt;

/// Per-test configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property case (carried by `prop_assert*` via `?`/`return`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Real proptest distinguishes rejections from failures; here both
    /// abort the case with a message.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic RNG behind every strategy (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded for one test case.
    pub fn new(seed: u64) -> Self {
        Self {
            // Echo the seed through one round so consecutive case
            // indexes do not produce correlated low bits.
            state: seed ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Fail the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Define property tests.
///
/// Supports an optional leading `#![proptest_config(...)]`, then any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items
/// (doc comments and attributes allowed).  Bodies may use `?` and
/// `return Ok(())`; they run once per configured case with a
/// deterministic per-case seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($config:expr)
     $($(#[$attr:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            // `#[test]` is written by the caller and re-emitted here as
            // one of the matched attributes.
            $(#[$attr])*
            #[allow(unreachable_code)]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                // Per-test stream: derived from the test name so sibling
                // tests in one module do not see identical inputs.
                let name_salt: u64 = {
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in stringify!($name).bytes() {
                        h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                };
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(
                        name_salt.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                    );
                    $(let $arg = $crate::strategy::Strategy::new_value(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}
