//! String generation from the tiny regex subset the workspace's tests
//! use: character classes `[...]` (with ranges and a trailing literal
//! `-`), the Unicode-category escape `\PC` (any non-control character,
//! approximated by printable ASCII), literal characters, and the
//! quantifiers `*`, `+`, `?`, `{n}`, `{n,m}`.

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum CharSet {
    /// Explicit characters.
    Choices(Vec<char>),
    /// `\PC`: any non-control character.
    Printable,
}

impl CharSet {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Choices(cs) => cs[rng.below(cs.len() as u64) as usize],
            // Printable ASCII, space through tilde.
            CharSet::Printable => char::from(0x20 + rng.below(0x5f) as u8),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Repeat {
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.  Panics on syntax this
/// subset does not understand — a loud failure beats quietly generating
/// non-matching data.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let items = parse(pattern);
    let mut out = String::new();
    for (set, rep) in &items {
        let n = rep.min + rng.below(u64::from(rep.max - rep.min) + 1) as u32;
        for _ in 0..n {
            out.push(set.sample(rng));
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<(CharSet, Repeat)> {
    let mut chars = pattern.chars().peekable();
    let mut items = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => {
                let mut choices = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                    match c {
                        ']' => break,
                        '-' => match (prev, chars.peek()) {
                            // A range like a-z (only when between chars).
                            (Some(lo), Some(&hi)) if hi != ']' => {
                                chars.next();
                                assert!(lo <= hi, "bad range in {pattern:?}");
                                choices.extend((lo..=hi).filter(|c| *c != lo));
                                prev = Some(hi);
                            }
                            // Leading or trailing '-' is a literal.
                            _ => {
                                choices.push('-');
                                prev = Some('-');
                            }
                        },
                        '\\' => {
                            let esc = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                            choices.push(esc);
                            prev = Some(esc);
                        }
                        c => {
                            choices.push(c);
                            prev = Some(c);
                        }
                    }
                }
                assert!(!choices.is_empty(), "empty class in {pattern:?}");
                CharSet::Choices(choices)
            }
            '\\' => match chars.next() {
                Some('P') => {
                    let cat = chars.next();
                    assert_eq!(cat, Some('C'), "only \\PC is supported, in {pattern:?}");
                    CharSet::Printable
                }
                Some('d') => CharSet::Choices(('0'..='9').collect()),
                Some(other) => CharSet::Choices(vec![other]),
                None => panic!("dangling escape in {pattern:?}"),
            },
            '.' => CharSet::Printable,
            c => CharSet::Choices(vec![c]),
        };
        let rep = parse_quantifier(&mut chars, pattern);
        items.push((set, rep));
    }
    items
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Repeat {
    match chars.peek() {
        Some('*') => {
            chars.next();
            Repeat { min: 0, max: 12 }
        }
        Some('+') => {
            chars.next();
            Repeat { min: 1, max: 12 }
        }
        Some('?') => {
            chars.next();
            Repeat { min: 0, max: 1 }
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse()
                        .unwrap_or_else(|_| panic!("bad {{}} in {pattern:?}")),
                    hi.parse()
                        .unwrap_or_else(|_| panic!("bad {{}} in {pattern:?}")),
                ),
                None => {
                    let n = spec
                        .parse()
                        .unwrap_or_else(|_| panic!("bad {{}} in {pattern:?}"));
                    (n, n)
                }
            };
            assert!(min <= max, "bad {{}} bounds in {pattern:?}");
            Repeat { min, max }
        }
        _ => Repeat { min: 1, max: 1 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_trailing_literal_minus() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = generate_matching("[(),.:XxZz%-]{0,3}", &mut rng);
            assert!(s.len() <= 3);
            assert!(s.chars().all(|c| "(),.:XxZz%-".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn printable_star() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = generate_matching("\\PC*", &mut rng);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
        }
    }

    #[test]
    fn exact_repeat() {
        let mut rng = TestRng::new(3);
        let s = generate_matching("[ab]{4}", &mut rng);
        assert_eq!(s.len(), 4);
    }
}
