//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the slice of proptest's API its test suites use: the [`strategy::Strategy`]
//! trait with `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`,
//! range and tuple and `&str`-regex strategies, `prop::collection::vec`,
//! `prop::option::of`, `Just`, the `proptest!` / `prop_oneof!` /
//! `prop_assert!` / `prop_assert_eq!` macros, and `ProptestConfig`.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! cases are **not shrunk** — the failing input is reported as
//! generated.  Generation is deterministic per test (seeded by case
//! index), so failures reproduce across runs.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: module aliases.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..200 {
            let (a, b) = (0..5u8, 10..20usize).new_value(&mut rng);
            assert!(a < 5);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::new(2);
        let strat = crate::collection::vec(0..3u32, 2..5);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn regex_classes_generate_matching_strings() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..100 {
            let s = "[a-z][a-z0-9_]{0,6}".new_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            let mut chars = s.chars();
            assert!(chars.next().unwrap().is_ascii_lowercase());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn oneof_weights_pick_all_arms() {
        let mut rng = crate::test_runner::TestRng::new(4);
        let strat = prop_oneof![1 => Just(0u8), 3 => Just(1u8)];
        let mut seen = [0usize; 2];
        for _ in 0..400 {
            seen[strat.new_value(&mut rng) as usize] += 1;
        }
        assert!(seen[0] > 0 && seen[1] > seen[0]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0..10u8)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = crate::test_runner::TestRng::new(5);
        for _ in 0..200 {
            // Depth is bounded by the recursion depth plus the leaf.
            assert!(depth(&strat.new_value(&mut rng)) <= 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The proptest! macro wires args, config, and assertions.
        #[test]
        fn macro_end_to_end(x in 0..100u32, v in crate::collection::vec(0..10u8, 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            if v.len() > 100 {
                return Ok(()); // exercise early return
            }
        }
    }
}
