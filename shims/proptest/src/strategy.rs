//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Rc::new(move |rng| self.new_value(rng)),
        }
    }

    /// Recursive strategies: `self` is the leaf case, `expand` wraps an
    /// inner strategy into the recursive cases.  `depth` bounds the
    /// nesting; `_desired_size` and `_expected_branch` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(cur).boxed();
            let l = leaf.clone();
            // Each level flips between bottoming out and recursing, so
            // both shallow and deep values are generated.
            cur = BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| {
                    if rng.next_u64() & 1 == 0 {
                        l.new_value(rng)
                    } else {
                        expanded.new_value(rng)
                    }
                }),
            };
        }
        cur
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    pub(crate) gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Weighted choice between strategies (built by [`prop_oneof!`]).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be 0.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return strat.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

/// Weighted choice between strategies of one value type.
///
/// Arms are `strategy` or `weight => strategy`; mixed forms are not
/// supported (as in real proptest).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
