//! Property tests for the Datalog parser, pretty printer, and the
//! indexed relation storage.
//!
//! * printing a parsed program and re-parsing it is a fixpoint
//!   (`display_program` is the canonical form);
//! * arbitrary input never panics the parser — it answers `Ok` or a
//!   positioned `Err`;
//! * `Relation::lookup` over any column mask agrees with a full scan.

use proptest::prelude::*;
use rq_common::Const;
use rq_datalog::{display_program, mask_cols, mask_of, parse_program, Relation};

// ---------------------------------------------------------------------
// Random-program construction (as text, so the parser is the system
// under test from the first byte).

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| s)
}

fn variable() -> impl Strategy<Value = String> {
    "[A-Z][A-Za-z0-9]{0,3}".prop_map(|s| s)
}

fn term() -> impl Strategy<Value = String> {
    prop_oneof![
        ident(),
        variable(),
        (-999i64..999).prop_map(|i| i.to_string()),
    ]
}

fn atom(pred_pool: Vec<String>) -> impl Strategy<Value = String> {
    let pool = pred_pool.clone();
    (0..pool.len(), prop::collection::vec(term(), 1..4))
        .prop_map(move |(pi, args)| format!("{}({})", pool[pi], args.join(",")))
}

/// A random syntactically valid program: facts plus rules whose head
/// variables all occur in the body (safety).
fn program_text() -> impl Strategy<Value = String> {
    let preds: Vec<String> = (0..4).map(|i| format!("r{i}")).collect();
    let fact = {
        let preds = preds.clone();
        (
            0..preds.len(),
            prop::collection::vec(
                prop_oneof![ident(), (-99i64..99).prop_map(|i| i.to_string())],
                1..4,
            ),
        )
            .prop_map(move |(pi, args)| format!("{}({}).", preds[pi], args.join(",")))
    };
    let rule = {
        let preds = preds.clone();
        (
            0..preds.len(),
            prop::collection::vec(variable(), 1..3),
            prop::collection::vec(atom(preds.clone()), 1..4),
        )
            .prop_map(move |(pi, head_vars, body)| {
                // Safety: reuse the head variables inside one extra body
                // atom so every head variable is grounded.
                let anchor = format!("r0({})", head_vars.join(","));
                format!(
                    "{}({}) :- {}, {}.",
                    preds[pi],
                    head_vars.join(","),
                    anchor,
                    body.join(", ")
                )
            })
    };
    // Derived heads must not collide with base predicates: facts use
    // predicates f0..f3 instead.
    let base_fact = (
        0..4usize,
        prop::collection::vec(
            prop_oneof![ident(), (-99i64..99).prop_map(|i| i.to_string())],
            1..4,
        ),
    )
        .prop_map(|(pi, args)| format!("f{pi}({}).", args.join(",")));
    let _ = fact;
    (
        prop::collection::vec(base_fact, 1..8),
        prop::collection::vec(rule, 0..5),
    )
        .prop_map(|(facts, rules)| {
            let mut text = String::new();
            // The rule anchor predicate r0 needs at least one ground
            // rule so it is derived, not base... simpler: give r0 a
            // ground fact-shaped rule via a base predicate.
            text.push_str("r0(anchor_c) :- f0(anchor_c).\nf0(anchor_c).\n");
            for f in facts {
                text.push_str(&f);
                text.push('\n');
            }
            for r in rules {
                text.push_str(&r);
                text.push('\n');
            }
            text
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// display ∘ parse is a fixpoint on valid programs.
    #[test]
    fn display_parse_is_a_fixpoint(src in program_text()) {
        let Ok(program) = parse_program(&src) else {
            // Some generated rules are unsafe (head variable not in a
            // base-groundable position) or ill-arity; rejection is fine,
            // panics are not.
            return Ok(());
        };
        let shown = display_program(&program);
        let reparsed = parse_program(&shown)
            .unwrap_or_else(|e| panic!("canonical form must re-parse: {e}\n{shown}"));
        prop_assert_eq!(
            display_program(&reparsed),
            shown,
            "display ∘ parse not a fixpoint"
        );
    }

    /// The parser never panics, whatever the input bytes.
    #[test]
    fn parser_never_panics(src in "\\PC*") {
        let _ = parse_program(&src);
    }

    /// Near-miss corruption of valid programs never panics either and
    /// errors carry a position.
    #[test]
    fn corrupted_programs_fail_cleanly(
        src in program_text(),
        cut in 0usize..200,
        junk in "[(),.:XxZz%-]{0,3}",
    ) {
        let mut s = src;
        let cut = cut.min(s.len());
        if !s.is_char_boundary(cut) {
            // pure-ASCII generator, but stay defensive
            return Ok(());
        }
        s.insert_str(cut, &junk);
        let _ = parse_program(&s);
    }

    /// Relation::lookup agrees with a filtering scan for every mask.
    #[test]
    fn lookup_matches_scan(
        tuples in prop::collection::vec(prop::collection::vec(0u32..6, 3), 0..40),
        mask_bits in 0usize..8,
        key in prop::collection::vec(0u32..6, 3),
    ) {
        let mut rel = Relation::new(3);
        for t in &tuples {
            let t: Vec<Const> = t.iter().map(|&c| Const(c)).collect();
            rel.insert(&t);
        }
        let cols: Vec<usize> = (0..3).filter(|i| mask_bits & (1 << i) != 0).collect();
        let mask = mask_of(cols.iter().copied());
        let key: Vec<Const> = cols.iter().map(|&i| Const(key[i])).collect();
        let mut ords = Vec::new();
        rel.lookup(mask, &key, &mut ords);
        let got: Vec<Vec<Const>> = ords.iter().map(|&o| rel.tuple(o).to_vec()).collect();
        let expected: Vec<Vec<Const>> = rel
            .iter()
            .filter(|t| {
                mask_cols(mask)
                    .zip(key.iter())
                    .all(|(c, &k)| t[c] == k)
            })
            .map(|t| t.to_vec())
            .collect();
        let mut got_sorted = got.clone();
        got_sorted.sort();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort();
        prop_assert_eq!(got_sorted, expected_sorted);
        // And no duplicate ordinals.
        let mut o2 = ords.clone();
        o2.sort_unstable();
        o2.dedup();
        prop_assert_eq!(o2.len(), ords.len());
    }

    /// Insert is idempotent and `contains`/`len` stay consistent.
    #[test]
    fn insert_dedupes(tuples in prop::collection::vec(prop::collection::vec(0u32..4, 2), 0..30)) {
        let mut rel = Relation::new(2);
        let mut reference: std::collections::BTreeSet<Vec<u32>> = Default::default();
        for t in &tuples {
            let tc: Vec<Const> = t.iter().map(|&c| Const(c)).collect();
            let fresh = rel.insert(&tc);
            prop_assert_eq!(fresh, reference.insert(t.clone()));
            prop_assert!(rel.contains(&tc));
        }
        prop_assert_eq!(rel.len(), reference.len());
    }
}
