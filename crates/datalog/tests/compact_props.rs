//! Property tests for the publish-time compact stores.
//!
//! The compact store (columnar buffers + CSR adjacency for binary
//! shards) is a read-path alternative to the lazy hash-trie indexes —
//! it must be *observationally identical*: for any relation, any
//! binding mask, and any key, `lookup` over a compacted relation
//! returns the same ordinals, in the same order, as over the same
//! relation without a store; and for binary relations the CSR
//! successor/predecessor rows agree with keyed index lookups.
//!
//! Relations are random: arity 1..6, duplicate insertions, repeated
//! constants, empty shards, and ids drawn from a small pool so joins
//! actually collide.

use proptest::prelude::*;
use rq_common::Const;
use rq_datalog::{mask_of, Relation};

/// A random relation of the given arity, with duplicates attempted.
fn relation(arity: usize, pool: u32, rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(0..pool, arity), 0..rows + 1).prop_map(
        move |tuples| {
            let mut rel = Relation::new(arity);
            for t in &tuples {
                let tuple: Vec<Const> = t.iter().map(|&i| Const::from_index(i as usize)).collect();
                rel.insert(&tuple);
                // Every other row is re-inserted: duplicates must be
                // no-ops on both read paths.
                rel.insert(&tuple);
            }
            rel
        },
    )
}

/// All keys worth probing: every constant in the pool, so both present
/// and absent keys are exercised.
fn pool_consts(pool: u32) -> Vec<Const> {
    (0..pool).map(|i| Const::from_index(i as usize)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `lookup` answers identically with and without a compact store,
    /// for every single-column and two-column mask.
    #[test]
    fn compacted_lookup_matches_uncompacted(
        rel in (1usize..6, 1u32..7, 0usize..40)
            .prop_flat_map(|(a, p, r)| relation(a, p, r)),
    ) {
        let arity = rel.arity();
        let plain = rel.clone();
        prop_assert!(rel.build_compact() || rel.is_empty() || rel.has_compact());
        let keys = pool_consts(8);
        let mut masks: Vec<Vec<usize>> = (0..arity).map(|c| vec![c]).collect();
        for a in 0..arity {
            for b in (a + 1)..arity {
                masks.push(vec![a, b]);
            }
        }
        for cols in masks {
            let mask = mask_of(cols.iter().copied());
            for &k0 in &keys {
                for &k1 in &keys {
                    let key: Vec<Const> = if cols.len() == 1 {
                        vec![k0]
                    } else {
                        vec![k0, k1]
                    };
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    plain.lookup(mask, &key, &mut a);
                    rel.lookup(mask, &key, &mut b);
                    prop_assert_eq!(&a, &b, "mask {:?} key {:?}", &cols, &key);
                    if cols.len() == 1 {
                        continue;
                    }
                    break; // two-column masks: one k1 sweep per k0 is plenty
                }
            }
        }
    }

    /// CSR successor/predecessor rows over a binary relation agree with
    /// keyed trie-index lookups, element order included.
    #[test]
    fn csr_adjacency_matches_index_lookups(
        rel in relation(2, 6, 40),
    ) {
        let plain = rel.clone();
        rel.build_compact();
        let Some(store) = rel.compact_store() else {
            // Density guard declined the CSR; columnar equivalence is
            // covered by the lookup property above.
            return Ok(());
        };
        for u in pool_consts(7) {
            let mut ords = Vec::new();
            plain.lookup(mask_of([0]), &[u], &mut ords);
            let via_index: Vec<Const> = ords.iter().map(|&o| plain.tuple(o)[1]).collect();
            let via_csr = store.successors(u).unwrap_or(&[]);
            prop_assert_eq!(&via_index[..], via_csr, "successors of {:?}", u);

            ords.clear();
            plain.lookup(mask_of([1]), &[u], &mut ords);
            let via_index: Vec<Const> = ords.iter().map(|&o| plain.tuple(o)[0]).collect();
            let via_csr = store.predecessors(u).unwrap_or(&[]);
            prop_assert_eq!(&via_index[..], via_csr, "predecessors of {:?}", u);
        }
        // First-column enumeration preserves first-appearance order.
        let mut seen = Vec::new();
        for t in plain.iter() {
            if !seen.contains(&t[0]) {
                seen.push(t[0]);
            }
        }
        prop_assert_eq!(&seen[..], store.first_column().unwrap_or(&[]));
    }

    /// Empty shards build cleanly and answer nothing on every path.
    #[test]
    fn empty_relations_are_empty_on_both_paths(arity in 1usize..6) {
        let rel = Relation::new(arity);
        rel.build_compact();
        let mut out = Vec::new();
        rel.lookup(mask_of([0]), &[Const::from_index(0)], &mut out);
        prop_assert!(out.is_empty());
        if let Some(store) = rel.compact_store() {
            prop_assert_eq!(store.len(), 0);
        }
    }
}
