//! Pretty-printing of programs, rules, and literals back to concrete syntax.
//!
//! Printing needs the program's interners, so the API is `display_*`
//! functions returning `String`s rather than `Display` impls on the AST.

use crate::ast::{Atom, Literal, Program, Rule, Term};

/// Render a term.
pub fn display_term(program: &Program, rule: &Rule, t: Term) -> String {
    match t {
        Term::Var(v) => rule.var_names[v.0 as usize].clone(),
        Term::Const(c) => program.consts.display(c),
    }
}

/// Render an atom.
pub fn display_atom(program: &Program, rule: &Rule, atom: &Atom) -> String {
    let args: Vec<String> = atom
        .args
        .iter()
        .map(|&t| display_term(program, rule, t))
        .collect();
    format!("{}({})", program.pred_name(atom.pred), args.join(","))
}

/// Render a body literal.
pub fn display_literal(program: &Program, rule: &Rule, lit: &Literal) -> String {
    match lit {
        Literal::Atom(a) => display_atom(program, rule, a),
        Literal::Cmp { op, lhs, rhs } => format!(
            "{} {} {}",
            display_term(program, rule, *lhs),
            op.symbol(),
            display_term(program, rule, *rhs)
        ),
    }
}

/// Render a rule, e.g. `sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).`
pub fn display_rule(program: &Program, rule: &Rule) -> String {
    let head = display_atom(program, rule, &rule.head);
    if rule.body.is_empty() {
        return format!("{head}.");
    }
    let body: Vec<String> = rule
        .body
        .iter()
        .map(|l| display_literal(program, rule, l))
        .collect();
    format!("{head} :- {}.", body.join(", "))
}

/// Render a whole program: rules first, then facts.
pub fn display_program(program: &Program) -> String {
    let mut out = String::new();
    for rule in &program.rules {
        out.push_str(&display_rule(program, rule));
        out.push('\n');
    }
    for (pred, tuple) in &program.facts {
        let args: Vec<String> = tuple.iter().map(|&c| program.consts.display(c)).collect();
        out.push_str(&format!(
            "{}({}).\n",
            program.pred_name(*pred),
            args.join(",")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn roundtrip_same_generation() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,b).\n";
        let p = parse_program(src).unwrap();
        let printed = display_program(&p);
        assert_eq!(printed, src);
        // Printing must be a fixpoint: parse(print(p)) prints identically.
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(display_program(&p2), printed);
    }

    #[test]
    fn roundtrip_builtins() {
        let src = "ok(X,Y) :- e(X,Y), X < Y, Y != 3.\ne(1,2).\n";
        let p = parse_program(src).unwrap();
        assert_eq!(display_program(&p), src);
    }

    #[test]
    fn displays_integer_constants() {
        let p = parse_program("flight(hel,900,ams,1130).").unwrap();
        assert_eq!(display_program(&p), "flight(hel,900,ams,1130).\n");
    }
}
