//! Abstract syntax for Datalog programs (§2 of the paper).
//!
//! A program is a finite set of rules `p0(X0) :- p1(X1), ..., pn(Xn)`.
//! Rules with an empty body and all-constant arguments are *facts*; the set
//! of facts is the extensional database (EDB) and the remaining rules the
//! intensional database (IDB).  Base predicates (appearing only in facts)
//! and derived predicates (appearing in rule heads) are disjoint.

use rq_common::{Const, ConstInterner, IdVec, NameInterner, PVec, Pred, Var};
use std::fmt;

/// A term: a variable or a constant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, scoped to its rule.
    Var(Var),
    /// An interned constant.
    Const(Const),
}

impl Term {
    /// The variable inside, if any.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant inside, if any.
    pub fn as_const(self) -> Option<Const> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

/// An atom `p(t1, ..., tn)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// The predicate.
    pub pred: Pred,
    /// The argument vector.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Self { pred, args }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterate the variables occurring in the argument vector.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| t.as_var())
    }
}

/// Comparison operators available as built-in predicates.
///
/// §4's flight example uses `AT1 < DT1`; we support the full set of
/// comparisons under the safety condition that every variable of a built-in
/// literal also occurs in an ordinary body literal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluate the operator on an ordering between the operands.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
        }
    }

    /// Symbol used in the concrete syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }
}

/// A body literal: an ordinary atom or a built-in comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal {
    /// An ordinary (positive) atom.
    Atom(Atom),
    /// A built-in comparison `lhs op rhs`.
    Cmp {
        /// The operator.
        op: CmpOp,
        /// Left operand.
        lhs: Term,
        /// Right operand.
        rhs: Term,
    },
}

impl Literal {
    /// The atom inside, if this is an ordinary literal.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            Literal::Cmp { .. } => None,
        }
    }

    /// Iterate the variables occurring in the literal.
    pub fn vars(&self) -> Vec<Var> {
        match self {
            Literal::Atom(a) => a.vars().collect(),
            Literal::Cmp { lhs, rhs, .. } => lhs.as_var().into_iter().chain(rhs.as_var()).collect(),
        }
    }
}

/// A rule `head :- body`.  Facts are kept separately in [`Program::facts`],
/// so a `Rule` always has a derived head.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals, in source order.
    pub body: Vec<Literal>,
    /// Names of this rule's variables, indexed by [`Var`].
    pub var_names: Vec<String>,
}

impl Rule {
    /// Number of distinct variables in the rule.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Iterate the ordinary (non-built-in) body atoms.
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(|l| l.as_atom())
    }
}

/// Metadata for one predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PredInfo {
    /// Index into the program's name interner.
    pub name: u32,
    /// Arity; fixed at first use.
    pub arity: usize,
    /// Whether the predicate appears in the head of a rule with a
    /// non-empty body (derived) or only in facts (base).
    pub is_derived: bool,
}

/// A Datalog program: interners, predicate table, rules, and facts.
#[derive(Clone, Default)]
pub struct Program {
    /// Constant interner.
    pub consts: ConstInterner,
    /// Predicate-name interner (indices stored in [`PredInfo::name`]).
    pub pred_names: NameInterner,
    /// Per-predicate metadata.
    pub preds: IdVec<Pred, PredInfo>,
    /// The intensional database.
    pub rules: Vec<Rule>,
    /// The extensional database, as listed in the source.  Persistent
    /// (chunk-shared) storage: cloning a program for the next snapshot
    /// epoch shares all prior facts with the parent, so ingest-time
    /// program clones cost O(delta), not O(all facts ever ingested).
    pub facts: PVec<(Pred, Vec<Const>)>,
    /// Name-index → predicate id, for O(1) lookup.
    by_name: Vec<Option<Pred>>,
}

impl Program {
    /// New, empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a predicate name with the given arity.  Arity conflicts are
    /// reported by the parser at use sites; here a second use with a
    /// different arity simply keeps the first arity.
    pub fn pred(&mut self, name: &str, arity: usize) -> Pred {
        if let Some(idx) = self.pred_names.get(name) {
            if let Some(Some(p)) = self.by_name.get(idx as usize) {
                return *p;
            }
        }
        let idx = self.pred_names.intern(name);
        let p = self.preds.push(PredInfo {
            name: idx,
            arity,
            is_derived: false,
        });
        if self.by_name.len() <= idx as usize {
            self.by_name.resize(idx as usize + 1, None);
        }
        self.by_name[idx as usize] = Some(p);
        p
    }

    /// The display name of a predicate.
    pub fn pred_name(&self, p: Pred) -> &str {
        self.pred_names.name(self.preds[p].name)
    }

    /// Look up a predicate by name.
    pub fn pred_by_name(&self, name: &str) -> Option<Pred> {
        let idx = self.pred_names.get(name)?;
        self.by_name.get(idx as usize).copied().flatten()
    }

    /// Arity of a predicate.
    pub fn arity(&self, p: Pred) -> usize {
        self.preds[p].arity
    }

    /// Whether the predicate is derived (appears in some rule head).
    pub fn is_derived(&self, p: Pred) -> bool {
        self.preds[p].is_derived
    }

    /// All derived predicates.
    pub fn derived_preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.preds
            .iter_enumerated()
            .filter(|(_, i)| i.is_derived)
            .map(|(p, _)| p)
    }

    /// All base predicates.
    pub fn base_preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.preds
            .iter_enumerated()
            .filter(|(_, i)| !i.is_derived)
            .map(|(p, _)| p)
    }

    /// Add a rule, marking its head predicate derived.
    pub fn add_rule(&mut self, rule: Rule) {
        self.preds[rule.head.pred].is_derived = true;
        self.rules.push(rule);
    }

    /// Add a ground fact.
    pub fn add_fact(&mut self, pred: Pred, tuple: Vec<Const>) {
        debug_assert_eq!(tuple.len(), self.arity(pred));
        self.facts.push((pred, tuple));
    }

    /// Rules whose head is `p`.
    pub fn rules_for(&self, p: Pred) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.head.pred == p)
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("preds", &self.preds.len())
            .field("rules", &self.rules.len())
            .field("facts", &self.facts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_interning_reuses_ids() {
        let mut p = Program::new();
        let up = p.pred("up", 2);
        let up2 = p.pred("up", 2);
        let down = p.pred("down", 2);
        assert_eq!(up, up2);
        assert_ne!(up, down);
        assert_eq!(p.pred_name(up), "up");
        assert_eq!(p.pred_by_name("down"), Some(down));
        assert_eq!(p.pred_by_name("flat"), None);
    }

    #[test]
    fn add_rule_marks_derived() {
        let mut p = Program::new();
        let sg = p.pred("sg", 2);
        let flat = p.pred("flat", 2);
        assert!(!p.is_derived(sg));
        p.add_rule(Rule {
            head: Atom::new(sg, vec![Term::Var(Var(0)), Term::Var(Var(1))]),
            body: vec![Literal::Atom(Atom::new(
                flat,
                vec![Term::Var(Var(0)), Term::Var(Var(1))],
            ))],
            var_names: vec!["X".into(), "Y".into()],
        });
        assert!(p.is_derived(sg));
        assert!(!p.is_derived(flat));
        assert_eq!(p.derived_preds().count(), 1);
        assert_eq!(p.base_preds().count(), 1);
    }

    #[test]
    fn cmp_op_semantics() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Less));
        assert!(!CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ne.eval(Greater));
        assert!(CmpOp::Ge.eval(Equal));
        assert!(!CmpOp::Gt.eval(Less));
        assert!(CmpOp::Eq.eval(Equal));
    }
}
