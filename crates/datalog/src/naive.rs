//! Naive bottom-up evaluation [6, 18 in the paper's bibliography].
//!
//! Repeatedly fires every rule on the whole database until no new fact is
//! derived.  Completely general (any Datalog program), used here as the
//! correctness oracle for every other strategy — if two strategies
//! disagree, naive wins.

use crate::ast::Program;
use crate::db::Database;
use crate::eval::{fire_rule, UnsafeBuiltin, WholeDb};
use rq_common::{Const, Counters, Pred};

/// Result of a bottom-up evaluation: a database containing both the EDB
/// and all derived facts, plus counters.
pub struct EvalResult {
    /// EDB ∪ IDB fixpoint.
    pub db: Database,
    /// Instrumentation.
    pub counters: Counters,
}

impl EvalResult {
    /// The derived tuples for a predicate, sorted for comparison.
    pub fn tuples(&self, pred: Pred) -> Vec<Vec<Const>> {
        let mut out: Vec<Vec<Const>> = self.db.relation(pred).iter().map(|t| t.to_vec()).collect();
        out.sort();
        out
    }
}

/// Evaluate the whole program naively to fixpoint.
pub fn naive_eval(program: &Program) -> Result<EvalResult, UnsafeBuiltin> {
    let mut db = Database::from_program(program);
    let mut counters = Counters::new();
    loop {
        counters.iterations += 1;
        let mut new_facts: Vec<(Pred, Vec<Const>)> = Vec::new();
        for rule in &program.rules {
            let head = rule.head.pred;
            fire_rule(program, rule, &WholeDb(&db), &mut counters, &mut |t| {
                new_facts.push((head, t.to_vec()));
            })?;
        }
        let mut changed = false;
        for (pred, tuple) in new_facts {
            if db.insert(pred, &tuple) {
                counters.nodes_inserted += 1;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(EvalResult { db, counters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn eval(src: &str) -> (Program, EvalResult) {
        let p = parse_program(src).unwrap();
        let r = naive_eval(&p).unwrap();
        (p, r)
    }

    #[test]
    fn transitive_closure_of_chain() {
        let (p, r) = eval(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d).",
        );
        let tc = p.pred_by_name("tc").unwrap();
        // 3+2+1 = 6 pairs.
        assert_eq!(r.tuples(tc).len(), 6);
    }

    #[test]
    fn transitive_closure_of_cycle_terminates() {
        let (p, r) = eval(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,a).",
        );
        let tc = p.pred_by_name("tc").unwrap();
        // Complete 3x3 closure on the cycle.
        assert_eq!(r.tuples(tc).len(), 9);
    }

    #[test]
    fn same_generation_small() {
        let (p, r) = eval(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(b,b1). flat(a1,b1). down(b1,b).",
        );
        let sg = p.pred_by_name("sg").unwrap();
        let tuples = r.tuples(sg);
        // sg(a1,b1) from flat; sg(a,b) from up·sg·down.
        assert_eq!(tuples.len(), 2);
        let names: Vec<(String, String)> = tuples
            .iter()
            .map(|t| (p.consts.display(t[0]), p.consts.display(t[1])))
            .collect();
        assert!(names.contains(&("a1".into(), "b1".into())));
        assert!(names.contains(&("a".into(), "b".into())));
    }

    #[test]
    fn mutual_recursion_fixpoint() {
        let (p, r) = eval(
            "even(X,Y) :- z(X,Y).\n\
             even(X,Z) :- s(X,Y), odd(Y,Z).\n\
             odd(X,Z) :- s(X,Y), even(Y,Z).\n\
             z(n0,n0). s(n1,n0). s(n2,n1). s(n3,n2). s(n4,n3).",
        );
        let even = p.pred_by_name("even").unwrap();
        let odd = p.pred_by_name("odd").unwrap();
        // even: n0,n2,n4 reach n0; odd: n1,n3.
        assert_eq!(r.tuples(even).len(), 3);
        assert_eq!(r.tuples(odd).len(), 2);
    }

    #[test]
    fn empty_edb_gives_empty_idb() {
        let (p, r) = eval("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\nf(k,k).");
        let tc = p.pred_by_name("tc").unwrap();
        assert!(r.tuples(tc).is_empty());
    }

    #[test]
    fn nonlinear_recursion_supported() {
        // Naive evaluation is completely general; the quadratic tc.
        let (p, r) = eval(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- tc(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d). e(d,e).",
        );
        let tc = p.pred_by_name("tc").unwrap();
        assert_eq!(r.tuples(tc).len(), 10);
    }

    #[test]
    fn counters_count_iterations() {
        let (_, r) = eval(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c).",
        );
        // Chain of length 2: closure found in 2 productive iterations +
        // 1 to detect the fixpoint.
        assert_eq!(r.counters.iterations, 3);
        assert_eq!(r.counters.nodes_inserted, 3);
    }
}
