//! Seminaive bottom-up evaluation [2 in the paper's bibliography].
//!
//! The classic differential fixpoint: at each iteration every recursive
//! rule is fired once per occurrence of a recursive body predicate, with
//! that occurrence reading only the Δ (facts new in the previous
//! iteration).  Non-recursive rules fire once, in stratum order.
//!
//! Seminaive avoids naive evaluation's re-derivation of old facts and is
//! the standard baseline the paper's "duplication of work" discussion
//! refers to.

use crate::analysis::{strata, Analysis};
use crate::ast::Program;
use crate::db::{Database, Relation};
use crate::eval::{fire_rule, DeltaView, UnsafeBuiltin, WholeDb};
use crate::naive::EvalResult;
use rq_common::{Const, Counters, FxHashMap, Pred};

/// Evaluate the program with the seminaive strategy.
pub fn seminaive_eval(program: &Program) -> Result<EvalResult, UnsafeBuiltin> {
    let analysis = Analysis::of(program);
    let mut db = Database::from_program(program);
    let mut counters = Counters::new();

    for stratum in strata(program, &analysis) {
        eval_stratum(program, &stratum, &mut db, &mut counters)?;
    }
    Ok(EvalResult { db, counters })
}

fn eval_stratum(
    program: &Program,
    stratum: &[Pred],
    db: &mut Database,
    counters: &mut Counters,
) -> Result<(), UnsafeBuiltin> {
    let in_stratum = |p: Pred| stratum.contains(&p);

    // Rules with heads in this stratum, split by whether they read a
    // predicate of the same stratum (recursive here) or not (exit rules).
    let rules: Vec<usize> = program
        .rules
        .iter()
        .enumerate()
        .filter(|(_, r)| in_stratum(r.head.pred))
        .map(|(i, _)| i)
        .collect();

    // Δ per predicate of the stratum.
    let mut delta: FxHashMap<Pred, Relation> = FxHashMap::default();
    for &p in stratum {
        delta.insert(p, Relation::new(program.arity(p)));
    }

    // Round 0: fire every rule on the current database; everything new
    // seeds Δ.  (Exit rules never need to fire again: their bodies read
    // only lower strata, which no longer change.)
    let mut seed: Vec<(Pred, Vec<Const>)> = Vec::new();
    for &ri in &rules {
        let rule = &program.rules[ri];
        let head = rule.head.pred;
        fire_rule(program, rule, &WholeDb(db), counters, &mut |t| {
            seed.push((head, t.to_vec()));
        })?;
    }
    for (pred, tuple) in seed {
        if db.insert(pred, &tuple) {
            counters.nodes_inserted += 1;
            delta.get_mut(&pred).expect("stratum pred").insert(&tuple);
        }
    }
    counters.iterations += 1;

    // Differential rounds.
    loop {
        let mut new_facts: Vec<(Pred, Vec<Const>)> = Vec::new();
        for &ri in &rules {
            let rule = &program.rules[ri];
            let head = rule.head.pred;
            // One firing per occurrence of a same-stratum predicate,
            // reading Δ at that occurrence and the full db elsewhere.
            for (occ, lit) in rule.body.iter().enumerate() {
                let Some(atom) = lit.as_atom() else { continue };
                if !in_stratum(atom.pred) {
                    continue;
                }
                let d = &delta[&atom.pred];
                if d.is_empty() {
                    continue;
                }
                let view = DeltaView {
                    full: db,
                    target: atom.pred,
                    target_occurrence: occ,
                    delta: d,
                };
                fire_rule(program, rule, &view, counters, &mut |t| {
                    new_facts.push((head, t.to_vec()));
                })?;
            }
        }
        let mut next_delta: FxHashMap<Pred, Relation> = FxHashMap::default();
        for &p in stratum {
            next_delta.insert(p, Relation::new(program.arity(p)));
        }
        let mut changed = false;
        for (pred, tuple) in new_facts {
            if db.insert(pred, &tuple) {
                counters.nodes_inserted += 1;
                next_delta
                    .get_mut(&pred)
                    .expect("stratum pred")
                    .insert(&tuple);
                changed = true;
            }
        }
        counters.iterations += 1;
        if !changed {
            break;
        }
        delta = next_delta;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_eval;
    use crate::parser::parse_program;

    fn agree_with_naive(src: &str) {
        let p = parse_program(src).unwrap();
        let n = naive_eval(&p).unwrap();
        let s = seminaive_eval(&p).unwrap();
        for pred in p.derived_preds() {
            assert_eq!(
                n.tuples(pred),
                s.tuples(pred),
                "disagreement on {}",
                p.pred_name(pred)
            );
        }
    }

    #[test]
    fn chain_closure_matches_naive() {
        agree_with_naive(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d). e(d,e). e(e,f).",
        );
    }

    #[test]
    fn cyclic_closure_matches_naive() {
        agree_with_naive(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,a). e(c,d).",
        );
    }

    #[test]
    fn same_generation_matches_naive() {
        agree_with_naive(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). up(b,b1). up(b1,b2).\n\
             flat(a2,b2). flat(a1,b1).\n\
             down(b2,b1). down(b1,b).",
        );
    }

    #[test]
    fn mutual_recursion_matches_naive() {
        agree_with_naive(
            "even(X,Y) :- z(X,Y).\n\
             even(X,Z) :- s(X,Y), odd(Y,Z).\n\
             odd(X,Z) :- s(X,Y), even(Y,Z).\n\
             z(n0,n0). s(n1,n0). s(n2,n1). s(n3,n2).",
        );
    }

    #[test]
    fn nonlinear_matches_naive() {
        agree_with_naive(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- tc(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d). e(b,a).",
        );
    }

    #[test]
    fn multi_stratum_program() {
        agree_with_naive(
            "a(X,Y) :- e(X,Y).\n\
             a(X,Z) :- e(X,Y), a(Y,Z).\n\
             b(X,Y) :- a(X,Y), f(Y,Y).\n\
             b(X,Z) :- b(X,Y), a(Y,Z).\n\
             e(u,v). e(v,w). f(v,v). f(w,w).",
        );
    }

    #[test]
    fn seminaive_fires_less_than_naive() {
        let src = "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(n0,n1). e(n1,n2). e(n2,n3). e(n3,n4). e(n4,n5).\n\
             e(n5,n6). e(n6,n7). e(n7,n8). e(n8,n9).";
        let p = parse_program(src).unwrap();
        let n = naive_eval(&p).unwrap();
        let s = seminaive_eval(&p).unwrap();
        assert!(
            s.counters.rule_firings < n.counters.rule_firings,
            "seminaive {} !< naive {}",
            s.counters.rule_firings,
            n.counters.rule_firings
        );
    }

    #[test]
    fn builtins_in_recursive_rule() {
        agree_with_naive(
            "r(X,Y) :- e(X,Y), X < Y.\n\
             r(X,Z) :- e(X,Y), r(Y,Z), X < Z.\n\
             e(1,2). e(2,3). e(3,1). e(1,4).",
        );
    }
}
