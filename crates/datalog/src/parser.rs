//! A hand-written recursive-descent parser for the textual Datalog syntax.
//!
//! Grammar (comments start with `%` and run to end of line):
//!
//! ```text
//! program  ::= clause*
//! clause   ::= atom ( ":-" body )? "."
//! body     ::= literal ("," literal)*
//! literal  ::= atom | term cmp term
//! atom     ::= ident "(" term ("," term)* ")"
//! term     ::= VARIABLE | ident | INTEGER
//! cmp      ::= "<" | "<=" | ">" | ">=" | "=" | "!="
//! ```
//!
//! Identifiers beginning with an uppercase letter or `_` are variables
//! (scoped to their clause); other identifiers are symbolic constants or
//! predicate names depending on position.  Integer literals are integer
//! constants.  This matches the paper's Prolog-like notation, e.g.
//! `sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).`

use crate::ast::{Atom, CmpOp, Literal, Program, Rule, Term};
use rq_common::{FxHashMap, Var};
use std::fmt;

/// A parse error with line/column information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Variable(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile,
    Cmp(CmpOp),
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<u8> {
        let b = *self.src.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'%') => {
                    while let Some(b) = self.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, usize, usize), ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let Some(b) = self.peek() else {
            return Ok((Tok::Eof, line, col));
        };
        let tok = match b {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b',' => {
                self.bump();
                Tok::Comma
            }
            b'.' => {
                self.bump();
                Tok::Dot
            }
            b':' => {
                self.bump();
                if self.peek() == Some(b'-') {
                    self.bump();
                    Tok::Turnstile
                } else {
                    return Err(self.error("expected `:-`"));
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Le)
                } else {
                    Tok::Cmp(CmpOp::Lt)
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Ge)
                } else {
                    Tok::Cmp(CmpOp::Gt)
                }
            }
            b'=' => {
                self.bump();
                Tok::Cmp(CmpOp::Eq)
            }
            b'!' => {
                self.bump();
                if self.peek() == Some(b'=') {
                    self.bump();
                    Tok::Cmp(CmpOp::Ne)
                } else {
                    return Err(self.error("expected `!=`"));
                }
            }
            b'-' | b'0'..=b'9' => {
                let mut s = String::new();
                if b == b'-' {
                    s.push('-');
                    self.bump();
                }
                while let Some(d) = self.peek() {
                    if d.is_ascii_digit() {
                        s.push(d as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if s == "-" {
                    return Err(self.error("lone `-`"));
                }
                let v: i64 = s
                    .parse()
                    .map_err(|_| self.error(format!("integer out of range: {s}")))?;
                Tok::Int(v)
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let mut s = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' || c == b'\'' {
                        s.push(c as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if s.starts_with(|c: char| c.is_ascii_uppercase() || c == '_') {
                    Tok::Variable(s)
                } else {
                    Tok::Ident(s)
                }
            }
            other => {
                return Err(self.error(format!("unexpected character `{}`", other as char)));
            }
        };
        Ok((tok, line, col))
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    line: usize,
    col: usize,
    program: Program,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Self, ParseError> {
        let mut lexer = Lexer::new(src);
        let (tok, line, col) = lexer.next_token()?;
        Ok(Self {
            lexer,
            tok,
            line,
            col,
            program: Program::new(),
        })
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn advance(&mut self) -> Result<(), ParseError> {
        let (tok, line, col) = self.lexer.next_token()?;
        self.tok = tok;
        self.line = line;
        self.col = col;
        Ok(())
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.tok == tok {
            self.advance()
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.tok)))
        }
    }

    fn parse_program(mut self) -> Result<Program, ParseError> {
        while self.tok != Tok::Eof {
            self.parse_clause()?;
        }
        Ok(self.program)
    }

    /// One clause: either a fact or a rule.
    fn parse_clause(&mut self) -> Result<(), ParseError> {
        let mut vars: FxHashMap<String, Var> = FxHashMap::default();
        let mut var_names: Vec<String> = Vec::new();
        let head = self.parse_atom(&mut vars, &mut var_names)?;
        if self.tok == Tok::Dot {
            self.advance()?;
            // A fact: all arguments must be constants.
            let mut tuple = Vec::with_capacity(head.args.len());
            for t in &head.args {
                match t {
                    Term::Const(c) => tuple.push(*c),
                    Term::Var(_) => {
                        return Err(self.error("facts must be ground (no variables)"));
                    }
                }
            }
            self.program.add_fact(head.pred, tuple);
            return Ok(());
        }
        self.expect(Tok::Turnstile, "`:-` or `.`")?;
        let mut body = Vec::new();
        loop {
            body.push(self.parse_literal(&mut vars, &mut var_names)?);
            if self.tok == Tok::Comma {
                self.advance()?;
            } else {
                break;
            }
        }
        self.expect(Tok::Dot, "`.`")?;
        self.program.add_rule(Rule {
            head,
            body,
            var_names,
        });
        Ok(())
    }

    fn parse_literal(
        &mut self,
        vars: &mut FxHashMap<String, Var>,
        var_names: &mut Vec<String>,
    ) -> Result<Literal, ParseError> {
        // Lookahead: `ident (` is an atom; otherwise it must be a comparison.
        match self.tok.clone() {
            Tok::Ident(name) => {
                self.advance()?;
                if self.tok == Tok::LParen {
                    let atom = self.parse_atom_tail(&name, vars, var_names)?;
                    Ok(Literal::Atom(atom))
                } else {
                    // A constant followed by a comparison operator.
                    let lhs = Term::Const(self.program.consts.intern_str(&name));
                    self.parse_cmp_tail(lhs, vars, var_names)
                }
            }
            Tok::Variable(_) | Tok::Int(_) => {
                let lhs = self.parse_term(vars, var_names)?;
                self.parse_cmp_tail(lhs, vars, var_names)
            }
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn parse_cmp_tail(
        &mut self,
        lhs: Term,
        vars: &mut FxHashMap<String, Var>,
        var_names: &mut Vec<String>,
    ) -> Result<Literal, ParseError> {
        let op = match self.tok {
            Tok::Cmp(op) => op,
            _ => return Err(self.error("expected comparison operator")),
        };
        self.advance()?;
        let rhs = self.parse_term(vars, var_names)?;
        Ok(Literal::Cmp { op, lhs, rhs })
    }

    fn parse_atom(
        &mut self,
        vars: &mut FxHashMap<String, Var>,
        var_names: &mut Vec<String>,
    ) -> Result<Atom, ParseError> {
        let name = match self.tok.clone() {
            Tok::Ident(name) => name,
            other => return Err(self.error(format!("expected predicate name, found {other:?}"))),
        };
        self.advance()?;
        self.parse_atom_tail(&name, vars, var_names)
    }

    fn parse_atom_tail(
        &mut self,
        name: &str,
        vars: &mut FxHashMap<String, Var>,
        var_names: &mut Vec<String>,
    ) -> Result<Atom, ParseError> {
        self.expect(Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        loop {
            args.push(self.parse_term(vars, var_names)?);
            if self.tok == Tok::Comma {
                self.advance()?;
            } else {
                break;
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        let pred = self.program.pred(name, args.len());
        if self.program.arity(pred) != args.len() {
            return Err(self.error(format!(
                "predicate `{name}` used with arity {} but declared with {}",
                args.len(),
                self.program.arity(pred)
            )));
        }
        Ok(Atom::new(pred, args))
    }

    fn parse_term(
        &mut self,
        vars: &mut FxHashMap<String, Var>,
        var_names: &mut Vec<String>,
    ) -> Result<Term, ParseError> {
        let term = match self.tok.clone() {
            Tok::Variable(name) => {
                let v = *vars.entry(name.clone()).or_insert_with(|| {
                    let v = Var(var_names.len() as u32);
                    var_names.push(name.clone());
                    v
                });
                Term::Var(v)
            }
            Tok::Ident(name) => Term::Const(self.program.consts.intern_str(&name)),
            Tok::Int(i) => Term::Const(self.program.consts.intern_int(i)),
            other => return Err(self.error(format!("expected term, found {other:?}"))),
        };
        self.advance()?;
        Ok(term)
    }
}

/// Parse a complete program from source text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    Parser::new(src)?.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Term;
    use rq_common::ConstValue;

    #[test]
    fn parses_same_generation() {
        let p = parse_program(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,b). flat(b,c). down(c,d).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.facts.len(), 3);
        let sg = p.pred_by_name("sg").unwrap();
        assert!(p.is_derived(sg));
        let up = p.pred_by_name("up").unwrap();
        assert!(!p.is_derived(up));
        // Variable scoping: rule 2 has X, Y, X1, Y1.
        assert_eq!(p.rules[1].var_names, vec!["X", "Y", "X1", "Y1"]);
    }

    #[test]
    fn variables_are_clause_scoped() {
        let p = parse_program("a(X) :- b(X).\nc(X) :- d(X).\nb(k). d(k).").unwrap();
        // Both rules use Var(0) for their own X.
        assert_eq!(p.rules[0].head.args[0], Term::Var(Var(0)));
        assert_eq!(p.rules[1].head.args[0], Term::Var(Var(0)));
    }

    #[test]
    fn parses_integers_and_comparisons() {
        let p = parse_program(
            "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
             cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
             flight(hel, 900, ams, 1130).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        let rule = &p.rules[1];
        assert!(matches!(rule.body[1], Literal::Cmp { op: CmpOp::Lt, .. }));
        let (_, tuple) = &p.facts[0];
        assert_eq!(p.consts.value(tuple[1]), &ConstValue::Int(900));
    }

    #[test]
    fn rejects_nonground_fact() {
        let err = parse_program("up(a,X).").unwrap_err();
        assert!(err.msg.contains("ground"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let err = parse_program("p(a,b). p(a).").unwrap_err();
        assert!(err.msg.contains("arity"));
    }

    #[test]
    fn comments_and_whitespace() {
        let p = parse_program(
            "% the same generation program\n\
             sg(X,Y) :- flat(X,Y). % flat base case\n\
             \n\
             flat(a,b).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.facts.len(), 1);
    }

    #[test]
    fn underscore_starts_variable() {
        let p = parse_program("p(X) :- q(X, _Y). q(a,b).").unwrap();
        assert_eq!(p.rules[0].var_names, vec!["X", "_Y"]);
    }

    #[test]
    fn negative_integers() {
        let p = parse_program("t(-5).").unwrap();
        let (_, tuple) = &p.facts[0];
        assert_eq!(p.consts.value(tuple[0]), &ConstValue::Int(-5));
    }

    #[test]
    fn error_carries_position() {
        let err = parse_program("p(a)\nq(b).").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn all_cmp_ops_parse() {
        let p = parse_program(
            "r(X,Y) :- e(X,Y), X < Y, X <= Y, Y > X, Y >= X, X = X, X != Y.\ne(1,2).",
        )
        .unwrap();
        let ops: Vec<CmpOp> = p.rules[0]
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Cmp { op, .. } => Some(*op),
                _ => None,
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
                CmpOp::Eq,
                CmpOp::Ne
            ]
        );
    }
}
