//! Datalog substrate for the `recursive-queries` workspace (§2 of the
//! paper): abstract syntax, a parser for the Prolog-like concrete syntax,
//! indexed relation storage, program analysis (recursion taxonomy, SCCs,
//! binary-chain and regularity checks), and the two completely general
//! bottom-up strategies — naive and seminaive evaluation — that serve as
//! correctness oracles and baselines for the paper's graph-traversal
//! method.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod db;
pub mod eval;
pub mod naive;
pub mod parser;
pub mod pretty;
pub mod seminaive;

pub use analysis::{
    binary_chain_violations, pred_regularity, program_is_regular, rule_is_chain, strata,
    tarjan_scc, unsafe_rules, Analysis, ChainViolation, Regularity,
};
pub use ast::{Atom, CmpOp, Literal, PredInfo, Program, Rule, Term};
pub use db::{mask_cols, mask_of, ColMask, CompactStore, Database, Relation};
pub use eval::{fire_rule, fire_seeded, DeltaView, Env, RelView, UnsafeBuiltin, WholeDb};
pub use naive::{naive_eval, EvalResult};
pub use parser::{parse_program, ParseError};
pub use pretty::{display_atom, display_literal, display_program, display_rule, display_term};
pub use seminaive::seminaive_eval;

/// A query: a predicate with each argument either bound to a constant or
/// free.  `sg(john, Y)` is `Query { pred: sg, args: [Bound(john), Free] }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The queried predicate.
    pub pred: rq_common::Pred,
    /// One entry per argument position.
    pub args: Vec<QueryArg>,
    /// For free positions, the variable name (`None` for bound
    /// positions and for the anonymous variable `_`).  A name occurring
    /// at several positions constrains those positions to be equal —
    /// `tc(X, X)` is the diagonal, not all pairs.
    pub var_names: Vec<Option<String>>,
}

/// One argument position of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryArg {
    /// Bound to a constant.
    Bound(rq_common::Const),
    /// Free (to be enumerated in the answer).
    Free,
}

impl Query {
    /// Parse a query literal like `sg(john, Y)` against an existing
    /// program (constants are interned into the program).
    pub fn parse(program: &mut Program, text: &str) -> Result<Self, ParseError> {
        // Reuse the clause parser by parsing `text.` as a fact-shaped
        // clause but allowing variables: parse manually instead.
        let text = text.trim().trim_end_matches('.');
        let open = text.find('(').ok_or_else(|| ParseError {
            line: 1,
            col: 1,
            msg: "query must look like pred(arg, ...)".into(),
        })?;
        if !text.ends_with(')') {
            return Err(ParseError {
                line: 1,
                col: text.len(),
                msg: "expected `)`".into(),
            });
        }
        let name = text[..open].trim();
        let inner = &text[open + 1..text.len() - 1];
        let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
        if parts.iter().any(|p| p.is_empty()) || name.is_empty() {
            return Err(ParseError {
                line: 1,
                col: 1,
                msg: "empty argument in query".into(),
            });
        }
        let pred = program.pred_by_name(name).ok_or_else(|| ParseError {
            line: 1,
            col: 1,
            msg: format!("unknown predicate `{name}` in query"),
        })?;
        if program.arity(pred) != parts.len() {
            return Err(ParseError {
                line: 1,
                col: 1,
                msg: format!(
                    "query arity {} does not match predicate arity {}",
                    parts.len(),
                    program.arity(pred)
                ),
            });
        }
        let mut var_names: Vec<Option<String>> = Vec::with_capacity(parts.len());
        let args = parts
            .iter()
            .map(|p| {
                let first = p.chars().next().expect("nonempty");
                if first.is_ascii_uppercase() || first == '_' {
                    var_names.push(if *p == "_" { None } else { Some(p.to_string()) });
                    QueryArg::Free
                } else {
                    var_names.push(None);
                    if let Ok(i) = p.parse::<i64>() {
                        QueryArg::Bound(program.consts.intern_int(i))
                    } else {
                        QueryArg::Bound(program.consts.intern_str(p))
                    }
                }
            })
            .collect();
        Ok(Query {
            pred,
            args,
            var_names,
        })
    }

    /// The bound argument positions.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, QueryArg::Bound(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// The free argument positions.
    pub fn free_positions(&self) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, QueryArg::Free))
            .map(|(i, _)| i)
            .collect()
    }

    /// The free positions to report in answers: every free position,
    /// except that a repeated variable name is reported only at its
    /// first occurrence (`tc(X, X)` has one answer column).
    pub fn distinct_free_positions(&self) -> Vec<usize> {
        let mut seen: Vec<&str> = Vec::new();
        let mut out = Vec::new();
        for (i, a) in self.args.iter().enumerate() {
            if !matches!(a, QueryArg::Free) {
                continue;
            }
            match &self.var_names[i] {
                Some(name) => {
                    if !seen.contains(&name.as_str()) {
                        seen.push(name);
                        out.push(i);
                    }
                }
                None => out.push(i),
            }
        }
        out
    }

    /// Pairs `(first, later)` of argument positions carrying the same
    /// variable name; answer tuples must agree on them.
    pub fn repeat_constraints(&self) -> Vec<(usize, usize)> {
        let mut firsts: Vec<(usize, &str)> = Vec::new();
        let mut out = Vec::new();
        for (i, name) in self.var_names.iter().enumerate() {
            let Some(name) = name else { continue };
            match firsts.iter().find(|(_, n)| n == &name.as_str()) {
                Some(&(first, _)) => out.push((first, i)),
                None => firsts.push((i, name)),
            }
        }
        out
    }

    /// Whether any variable name occurs at more than one position.
    pub fn has_repeated_vars(&self) -> bool {
        !self.repeat_constraints().is_empty()
    }

    /// Filter the full extension of the query predicate down to the
    /// tuples matching the bound arguments and repeated-variable
    /// constraints, projecting onto the distinct free positions.  Used
    /// to turn an oracle's full relation into the answer to this query.
    pub fn answer_from_relation(
        &self,
        tuples: &[Vec<rq_common::Const>],
    ) -> Vec<Vec<rq_common::Const>> {
        let free = self.distinct_free_positions();
        let repeats = self.repeat_constraints();
        let mut out: Vec<Vec<rq_common::Const>> = tuples
            .iter()
            .filter(|t| {
                self.args.iter().enumerate().all(|(i, a)| match a {
                    QueryArg::Bound(c) => t[i] == *c,
                    QueryArg::Free => true,
                }) && repeats.iter().all(|&(a, b)| t[a] == t[b])
            })
            .map(|t| free.iter().map(|&i| t[i]).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Filter rows given *over the free positions in order* (as the
    /// evaluation pipelines produce them) down to those satisfying the
    /// repeated-variable constraints, projecting onto the distinct free
    /// positions.  No-op for queries without repeated variables.
    pub fn restrict_free_rows(
        &self,
        rows: Vec<Vec<rq_common::Const>>,
    ) -> Vec<Vec<rq_common::Const>> {
        if !self.has_repeated_vars() {
            return rows;
        }
        let free = self.free_positions();
        let index_of = |pos: usize| free.iter().position(|&p| p == pos).expect("free position");
        let repeats: Vec<(usize, usize)> = self
            .repeat_constraints()
            .into_iter()
            .map(|(a, b)| (index_of(a), index_of(b)))
            .collect();
        let keep: Vec<usize> = self
            .distinct_free_positions()
            .into_iter()
            .map(index_of)
            .collect();
        let mut out: Vec<Vec<rq_common::Const>> = rows
            .into_iter()
            .filter(|row| repeats.iter().all(|&(a, b)| row[a] == row[b]))
            .map(|row| keep.iter().map(|&i| row[i]).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parse_bound_free() {
        let mut p = parse_program("sg(X,Y) :- flat(X,Y).\nflat(john,mary).").unwrap();
        let q = Query::parse(&mut p, "sg(john, Y)").unwrap();
        assert_eq!(q.bound_positions(), vec![0]);
        assert_eq!(q.free_positions(), vec![1]);
        let q2 = Query::parse(&mut p, "sg(X, Y)").unwrap();
        assert_eq!(q2.bound_positions(), Vec::<usize>::new());
    }

    #[test]
    fn query_parse_integer_constant() {
        let mut p = parse_program("c(X,Y) :- f(X,Y).\nf(1,2).").unwrap();
        let q = Query::parse(&mut p, "c(1, Y)").unwrap();
        assert_eq!(q.bound_positions(), vec![0]);
    }

    #[test]
    fn query_parse_errors() {
        let mut p = parse_program("f(a,b).").unwrap();
        assert!(Query::parse(&mut p, "nosuch(X)").is_err());
        assert!(Query::parse(&mut p, "f(X)").is_err());
        assert!(Query::parse(&mut p, "f").is_err());
    }

    #[test]
    fn answer_from_relation_projects_and_filters() {
        let mut p = parse_program("f(a,b). f(a,c). f(b,c).").unwrap();
        let q = Query::parse(&mut p, "f(a, Y)").unwrap();
        let f = p.pred_by_name("f").unwrap();
        let db = Database::from_program(&p);
        let tuples: Vec<Vec<rq_common::Const>> =
            db.relation(f).iter().map(|t| t.to_vec()).collect();
        let ans = q.answer_from_relation(&tuples);
        assert_eq!(ans.len(), 2);
        assert!(ans.iter().all(|t| t.len() == 1));
    }
}
