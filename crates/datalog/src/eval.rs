//! Rule firing: backtracking join of a rule body against a database.
//!
//! This is the shared machinery under naive and seminaive evaluation (and
//! under the §4 demand-driven virtual relations in `rq-adorn`).  Body atoms
//! are matched left to right; each atom probes the relation with the
//! binding pattern induced by the variables bound so far; built-in
//! comparisons fire as soon as both operands are bound (the paper's flight
//! example writes `AT1 < DT1` *before* the literal that binds `DT1`, so
//! evaluation must be deferred, not positional).

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::db::{mask_of, Database};
use rq_common::{Const, Counters, Pred};

/// A variable environment for one rule firing.
pub type Env = Vec<Option<Const>>;

/// Resolve a term under an environment.
#[inline]
pub fn resolve(env: &[Option<Const>], t: Term) -> Option<Const> {
    match t {
        Term::Const(c) => Some(c),
        Term::Var(v) => env[v.0 as usize],
    }
}

/// Where to read each predicate's extension during a join.  Naive
/// evaluation reads one database; seminaive substitutes the delta relation
/// for a single designated occurrence of a recursive predicate.
pub trait RelView {
    /// The relation to read for `occurrence` (the index of the atom within
    /// the rule body) of predicate `pred`.
    fn relation(&self, pred: Pred, occurrence: usize) -> &crate::db::Relation;
}

/// A view reading every predicate from a single database.
pub struct WholeDb<'a>(pub &'a Database);

impl RelView for WholeDb<'_> {
    fn relation(&self, pred: Pred, _occurrence: usize) -> &crate::db::Relation {
        self.0.relation(pred)
    }
}

/// A view like [`WholeDb`] but substituting `delta` for occurrence
/// `target_occurrence` of predicate `target` (the seminaive rewrite).
pub struct DeltaView<'a> {
    /// Full database for everything else.
    pub full: &'a Database,
    /// The predicate whose designated occurrence reads the delta.
    pub target: Pred,
    /// Which body-atom index reads the delta.
    pub target_occurrence: usize,
    /// The delta relation.
    pub delta: &'a crate::db::Relation,
}

impl RelView for DeltaView<'_> {
    fn relation(&self, pred: Pred, occurrence: usize) -> &crate::db::Relation {
        if pred == self.target && occurrence == self.target_occurrence {
            self.delta
        } else {
            self.full.relation(pred)
        }
    }
}

/// Fire `rule` under `view`, invoking `emit` with the instantiated head
/// tuple for every satisfying assignment.  `counters` is charged one
/// `index_probes` per relation probe and one `tuples_retrieved` per tuple
/// scanned.  Returns an error only if an unbound built-in remains at the
/// end (a safety violation that [`crate::analysis::unsafe_rules`] should
/// have caught earlier).
pub fn fire_rule<V: RelView>(
    program: &Program,
    rule: &Rule,
    view: &V,
    counters: &mut Counters,
    emit: &mut dyn FnMut(&[Const]),
) -> Result<(), UnsafeBuiltin> {
    let mut env: Env = vec![None; rule.num_vars()];
    fire_seeded(
        program,
        rule.body.iter(),
        &rule.head.args,
        &mut env,
        view,
        counters,
        emit,
    )
}

/// Fire a join over `body` literals under a pre-seeded environment,
/// emitting `head_terms` resolved against the final bindings.  This is
/// the §4 demand-probe entry point: the probe key is bound directly
/// into `env` instead of being substituted into a cloned rule, so the
/// per-probe cost is the join itself, not rule construction.  The env
/// is a borrowed slice so a hot caller can reuse a stack buffer across
/// probes; it is restored to its seeded state on return.  Atom
/// occurrence indexes (for [`RelView`]) count positions in `body`'s
/// iteration order, matching [`fire_rule`] when handed the full body.
pub fn fire_seeded<'r, V: RelView>(
    program: &Program,
    body: impl Iterator<Item = &'r Literal>,
    head_terms: &[Term],
    env: &mut [Option<Const>],
    view: &V,
    counters: &mut Counters,
    emit: &mut dyn FnMut(&[Const]),
) -> Result<(), UnsafeBuiltin> {
    // Atoms in body order, remembering their occurrence index; builtins
    // collected separately and re-checked as bindings accumulate.
    let mut atoms: Vec<(usize, &Atom)> = Vec::new();
    let mut builtins: Vec<&Literal> = Vec::new();
    for (i, l) in body.enumerate() {
        match l.as_atom() {
            Some(a) => atoms.push((i, a)),
            None => builtins.push(l),
        }
    }
    let mut scratch: Vec<u32> = Vec::new();
    join_rec(
        program,
        head_terms,
        view,
        &atoms,
        &builtins,
        0,
        env,
        &mut scratch,
        counters,
        emit,
    )
}

/// Error: a built-in literal still had unbound variables after all body
/// atoms were matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeBuiltin;

impl std::fmt::Display for UnsafeBuiltin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "built-in literal with unbound variable (unsafe rule)")
    }
}

impl std::error::Error for UnsafeBuiltin {}

/// Evaluate every built-in whose operands are fully bound.  Returns
/// `Ok(false)` if some bound built-in is false, `Ok(true)` otherwise.
fn builtins_hold(program: &Program, builtins: &[&Literal], env: &[Option<Const>]) -> bool {
    for lit in builtins {
        if let Literal::Cmp { op, lhs, rhs } = lit {
            if let (Some(a), Some(b)) = (resolve(env, *lhs), resolve(env, *rhs)) {
                let ord = program.consts.value(a).builtin_cmp(program.consts.value(b));
                if !op.eval(ord) {
                    return false;
                }
            }
        }
    }
    true
}

fn builtins_all_bound(builtins: &[&Literal], env: &[Option<Const>]) -> bool {
    builtins.iter().all(|lit| match lit {
        Literal::Cmp { lhs, rhs, .. } => {
            resolve(env, *lhs).is_some() && resolve(env, *rhs).is_some()
        }
        Literal::Atom(_) => true,
    })
}

#[allow(clippy::too_many_arguments)]
fn join_rec<V: RelView>(
    program: &Program,
    head_terms: &[Term],
    view: &V,
    atoms: &[(usize, &Atom)],
    builtins: &[&Literal],
    depth: usize,
    env: &mut [Option<Const>],
    scratch: &mut Vec<u32>,
    counters: &mut Counters,
    emit: &mut dyn FnMut(&[Const]),
) -> Result<(), UnsafeBuiltin> {
    // Prune early: any *bound* builtin that is false kills this branch.
    if !builtins_hold(program, builtins, env) {
        return Ok(());
    }
    if depth == atoms.len() {
        if !builtins_all_bound(builtins, env) {
            return Err(UnsafeBuiltin);
        }
        // Typical heads fit the same 32-column bound as probe keys;
        // resolving into a stack buffer keeps firing allocation-free,
        // with a heap fallback for wider heads.
        counters.rule_firings += 1;
        let bind = |&t: &Term| resolve(env, t).expect("safe rule binds head vars");
        if head_terms.len() <= 32 {
            let mut head = [Const::from_index(0); 32];
            for (slot, t) in head.iter_mut().zip(head_terms) {
                *slot = bind(t);
            }
            emit(&head[..head_terms.len()]);
        } else {
            let head: Vec<Const> = head_terms.iter().map(bind).collect();
            emit(&head);
        }
        return Ok(());
    }
    let (occurrence, atom) = atoms[depth];
    let rel = view.relation(atom.pred, occurrence);
    // Binding pattern: columns whose term is a constant or a bound var.
    // Column masks cap arity at 32, so the key fits a stack buffer —
    // this loop is the §4 cold path and must not allocate per probe.
    let mut key = [Const::from_index(0); 32];
    let mut key_len = 0usize;
    let mask = mask_of(atom.args.iter().enumerate().filter_map(|(i, &t)| {
        resolve(env, t).map(|c| {
            key[key_len] = c;
            key_len += 1;
            i
        })
    }));
    let start = scratch.len();
    counters.index_probes += 1;
    if rel.lookup_tracked(mask, &key[..key_len], scratch) {
        counters.csr_probes += 1;
    } else if mask != 0 {
        counters.trie_probes += 1;
    }
    let end = scratch.len();
    for idx in start..end {
        let ord = scratch[idx];
        counters.tuples_retrieved += 1;
        // Bind the free columns; repeated free vars must agree.  The
        // tuple is read in place (a slice into the shard's chunked
        // storage); `bound_here` stays on the stack for the same
        // no-allocation reason as `key`.
        let tuple: &[Const] = rel.tuple(ord);
        let mut bound_here = [0u32; 32];
        let mut num_bound = 0usize;
        let mut ok = true;
        for (i, &t) in atom.args.iter().enumerate() {
            match t {
                Term::Const(c) => {
                    if tuple[i] != c {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match env[v.0 as usize] {
                    Some(c) => {
                        if tuple[i] != c {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        env[v.0 as usize] = Some(tuple[i]);
                        bound_here[num_bound] = v.0;
                        num_bound += 1;
                    }
                },
            }
        }
        if ok {
            join_rec(
                program,
                head_terms,
                view,
                atoms,
                builtins,
                depth + 1,
                env,
                scratch,
                counters,
                emit,
            )?;
        }
        for &v in &bound_here[..num_bound] {
            env[v as usize] = None;
        }
    }
    scratch.truncate(start);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run_rule(src: &str) -> Vec<Vec<Const>> {
        let p = parse_program(src).unwrap();
        let db = Database::from_program(&p);
        let mut counters = Counters::new();
        let mut out = Vec::new();
        fire_rule(&p, &p.rules[0], &WholeDb(&db), &mut counters, &mut |t| {
            out.push(t.to_vec())
        })
        .unwrap();
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn simple_join() {
        let out = run_rule(
            "p(X,Z) :- a(X,Y), b(Y,Z).\n\
             a(1,2). a(1,3). b(2,10). b(3,11). b(4,12).",
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn join_with_constant_in_body() {
        let out = run_rule(
            "p(X) :- a(X,k).\n\
             a(u,k). a(v,m).",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn repeated_variable_selects_diagonal() {
        let out = run_rule(
            "p(X) :- a(X,X).\n\
             a(u,u). a(u,v). a(w,w).",
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn builtin_defers_until_bound() {
        // `AT1 < DT1` precedes the literal binding DT1, as in the paper's
        // flight example.
        let out = run_rule(
            "p(S,D1) :- f(S,D1,A1), A1 < DT1, d(DT1).\n\
             f(hel,ams,1130). d(1200). d(1000).",
        );
        // DT1 ∈ {1200, 1000}; 1130 < 1200 only, so one binding of DT1
        // survives and one head tuple results.
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn builtin_filters() {
        let out = run_rule(
            "p(X,Y) :- e(X,Y), X < Y.\n\
             e(1,2). e(2,1). e(3,3).",
        );
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unsafe_builtin_reported() {
        let p = parse_program("p(X,Y) :- e(X,Y), W < Y.\ne(1,2).").unwrap();
        let db = Database::from_program(&p);
        let mut counters = Counters::new();
        let err = fire_rule(&p, &p.rules[0], &WholeDb(&db), &mut counters, &mut |_| {});
        assert_eq!(err, Err(UnsafeBuiltin));
    }

    #[test]
    fn counters_charge_probes_and_tuples() {
        let p = parse_program("p(X,Z) :- a(X,Y), b(Y,Z).\na(1,2). b(2,3). b(2,4).").unwrap();
        let db = Database::from_program(&p);
        let mut counters = Counters::new();
        fire_rule(&p, &p.rules[0], &WholeDb(&db), &mut counters, &mut |_| {}).unwrap();
        // One probe for `a` (full scan), one for `b` keyed on Y=2.
        assert_eq!(counters.index_probes, 2);
        // One `a` tuple + two `b` tuples.
        assert_eq!(counters.tuples_retrieved, 3);
        assert_eq!(counters.rule_firings, 2);
    }
}
