//! Program analysis: dependency graph, strongly connected components, and
//! the paper's recursion taxonomy (§2).
//!
//! * predicates `p`, `q` are *mutually recursive* iff they lie on a common
//!   cycle of the predicate dependency graph (same nontrivial SCC);
//! * `p` is *recursive* iff it is mutually recursive with itself;
//! * a rule is *linear* if at most one body literal's predicate is mutually
//!   recursive with the head;
//! * a binary-chain rule `p(X1,Xn+1) :- p1(X1,X2), ..., pn(Xn,Xn+1)` is
//!   *right-linear* if none of `p1..pn-1` is mutually recursive to `p`,
//!   *left-linear* if none of `p2..pn` is;
//! * a derived predicate is *regular* if all rules of all predicates
//!   mutually recursive to it are right-linear, or all are left-linear;
//! * a *binary-chain program* has only binary predicates and only
//!   binary-chain rules in its IDB; it is *regular* if all its derived
//!   predicates are regular.

use crate::ast::{Literal, Program, Rule, Term};
use rq_common::{FxHashMap, FxHashSet, IdVec, Pred};

/// Tarjan's strongly-connected-components algorithm over a dense graph.
///
/// `succ[v]` lists the successors of node `v`.  Returns `(comp, ncomps)`
/// where `comp[v]` is the component id of `v`; component ids are assigned
/// in **reverse topological order** (a component's successors always have
/// lower ids), which is the order bottom-up stratified evaluation wants.
pub fn tarjan_scc(succ: &[Vec<usize>]) -> (Vec<usize>, usize) {
    let n = succ.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut ncomps = 0usize;

    // Explicit DFS to avoid recursion-depth limits on deep programs.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    let mut work: Vec<Frame> = Vec::new();
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        work.push(Frame::Enter(root));
        while let Some(frame) = work.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                    work.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut i) => {
                    let mut descended = false;
                    while i < succ[v].len() {
                        let w = succ[v][i];
                        i += 1;
                        if index[w] == usize::MAX {
                            work.push(Frame::Resume(v, i));
                            work.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack[w] {
                            low[v] = low[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            comp[w] = ncomps;
                            if w == v {
                                break;
                            }
                        }
                        ncomps += 1;
                    }
                    // Propagate lowlink to the parent frame, if any.
                    if let Some(Frame::Resume(parent, _)) = work.last() {
                        let parent = *parent;
                        low[parent] = low[parent].min(low[v]);
                    }
                }
            }
        }
    }
    (comp, ncomps)
}

/// Result of analysing a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// SCC id per predicate (reverse topological order).
    pub comp: IdVec<Pred, usize>,
    /// Number of SCCs.
    pub ncomps: usize,
    /// Whether each predicate is recursive (on a cycle).
    pub recursive: IdVec<Pred, bool>,
    /// Members of each SCC.
    pub comp_members: Vec<Vec<Pred>>,
}

impl Analysis {
    /// Analyse a program's predicate dependency graph.
    pub fn of(program: &Program) -> Self {
        let n = program.preds.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut self_loop = vec![false; n];
        let mut seen: FxHashSet<(usize, usize)> = FxHashSet::default();
        for rule in &program.rules {
            let h = rule.head.pred.index();
            for atom in rule.body_atoms() {
                let b = atom.pred.index();
                if b == h {
                    self_loop[h] = true;
                }
                if seen.insert((h, b)) {
                    succ[h].push(b);
                }
            }
        }
        let (comp_raw, ncomps) = tarjan_scc(&succ);
        let mut comp_members: Vec<Vec<Pred>> = vec![Vec::new(); ncomps];
        for (i, &c) in comp_raw.iter().enumerate() {
            comp_members[c].push(Pred::from_index(i));
        }
        let recursive: IdVec<Pred, bool> = (0..n)
            .map(|i| comp_members[comp_raw[i]].len() > 1 || self_loop[i])
            .collect();
        Self {
            comp: comp_raw.into_iter().collect(),
            ncomps,
            recursive,
            comp_members,
        }
    }

    /// Whether `p` and `q` are mutually recursive.  Per the paper's
    /// definition this requires a cycle through both, so `p` is mutually
    /// recursive to itself only if it is recursive.
    pub fn mutually_recursive(&self, p: Pred, q: Pred) -> bool {
        if p == q {
            return self.recursive[p];
        }
        self.comp[p] == self.comp[q]
    }

    /// Whether the rule is linear: at most one body literal whose predicate
    /// is mutually recursive to the head.
    pub fn rule_is_linear(&self, rule: &Rule) -> bool {
        self.count_recursive_body_literals(rule) <= 1
    }

    /// Number of body literals mutually recursive to the head.
    pub fn count_recursive_body_literals(&self, rule: &Rule) -> usize {
        rule.body_atoms()
            .filter(|a| self.mutually_recursive(rule.head.pred, a.pred))
            .count()
    }

    /// Whether the rule is a recursive rule (head mutually recursive to
    /// some body predicate).
    pub fn rule_is_recursive(&self, rule: &Rule) -> bool {
        self.count_recursive_body_literals(rule) > 0
    }

    /// Whether the whole program is linear (every rule linear).
    pub fn program_is_linear(&self, program: &Program) -> bool {
        program.rules.iter().all(|r| self.rule_is_linear(r))
    }

    /// Whether the program is recursive at all.
    pub fn program_is_recursive(&self, program: &Program) -> bool {
        program.rules.iter().any(|r| self.rule_is_recursive(r))
    }
}

/// Why a program fails to be a binary-chain program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainViolation {
    /// A predicate is not binary.
    NonBinaryPred(Pred),
    /// A rule contains a built-in literal.
    BuiltinInRule(usize),
    /// The body of rule `rule` is not a chain `p1(X1,X2)...pn(Xn,Xn+1)`
    /// with head `(X1, Xn+1)` and all variables distinct.
    NotAChain(usize),
}

/// Check the binary-chain condition (§2).  Returns the violations found
/// (empty means the program is a binary-chain program).
pub fn binary_chain_violations(program: &Program) -> Vec<ChainViolation> {
    let mut out = Vec::new();
    for (p, info) in program.preds.iter_enumerated() {
        if info.arity != 2 {
            out.push(ChainViolation::NonBinaryPred(p));
        }
    }
    for (ri, rule) in program.rules.iter().enumerate() {
        if rule.body.iter().any(|l| !matches!(l, Literal::Atom(_))) {
            out.push(ChainViolation::BuiltinInRule(ri));
            continue;
        }
        if !rule_is_chain(rule) {
            out.push(ChainViolation::NotAChain(ri));
        }
    }
    out
}

/// Whether a single rule has the binary-chain shape.  The head variables
/// must be the first variable of the first body literal and the second of
/// the last; adjacent literals share exactly their junction variable; all
/// chain variables are distinct.  A rule with an empty body qualifies only
/// as `p(X,X) :-` (the reflexive rule used to define `*`).
pub fn rule_is_chain(rule: &Rule) -> bool {
    // All args must be variables.
    let head_vars: Vec<_> = rule.head.args.iter().map(|t| t.as_var()).collect();
    if rule.head.args.len() != 2 {
        return false;
    }
    let (Some(h0), Some(h1)) = (head_vars[0], head_vars[1]) else {
        return false;
    };
    if rule.body.is_empty() {
        // p*(X,X) :- .
        return h0 == h1;
    }
    let mut chain_vars: Vec<_> = Vec::with_capacity(rule.body.len() + 1);
    for (i, lit) in rule.body.iter().enumerate() {
        let Some(atom) = lit.as_atom() else {
            return false;
        };
        if atom.args.len() != 2 {
            return false;
        }
        let (Some(a), Some(b)) = (atom.args[0].as_var(), atom.args[1].as_var()) else {
            return false;
        };
        if i == 0 {
            chain_vars.push(a);
        } else if *chain_vars.last().expect("nonempty") != a {
            return false;
        }
        chain_vars.push(b);
    }
    if chain_vars[0] != h0 || *chain_vars.last().expect("nonempty") != h1 {
        return false;
    }
    // X1 ... Xn+1 all distinct.
    let mut seen = FxHashSet::default();
    chain_vars.iter().all(|v| seen.insert(*v))
}

/// Regularity classification of a binary-chain rule w.r.t. an [`Analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleLinearity {
    /// None of `p1..pn-1` mutually recursive to the head (recursion, if
    /// any, only in the last position).
    pub right_linear: bool,
    /// None of `p2..pn` mutually recursive to the head.
    pub left_linear: bool,
}

/// Classify one binary-chain rule.
pub fn rule_linearity(analysis: &Analysis, rule: &Rule) -> RuleLinearity {
    let head = rule.head.pred;
    let atoms: Vec<_> = rule.body_atoms().collect();
    let n = atoms.len();
    let mr: Vec<bool> = atoms
        .iter()
        .map(|a| analysis.mutually_recursive(head, a.pred))
        .collect();
    RuleLinearity {
        right_linear: (0..n.saturating_sub(1)).all(|i| !mr[i]),
        left_linear: (1..n).all(|i| !mr[i]),
    }
}

/// Regularity of a derived predicate: right-linear if all rules of all
/// predicates mutually recursive to it are right-linear, etc.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regularity {
    /// All rules in the recursion clique are right-linear.
    RightLinear,
    /// All rules in the recursion clique are left-linear.
    LeftLinear,
    /// Both at once (no recursion, or recursion confined to unit rules).
    Both,
    /// Neither: the predicate is nonregular.
    Nonregular,
}

impl Regularity {
    /// Regular means right- or left-linear.
    pub fn is_regular(self) -> bool {
        !matches!(self, Regularity::Nonregular)
    }
}

/// Classify a derived predicate's regularity.
pub fn pred_regularity(program: &Program, analysis: &Analysis, p: Pred) -> Regularity {
    let clique: Vec<Pred> = if analysis.recursive[p] {
        analysis.comp_members[analysis.comp[p]].clone()
    } else {
        vec![p]
    };
    let mut right = true;
    let mut left = true;
    for rule in &program.rules {
        if !clique.contains(&rule.head.pred) {
            continue;
        }
        // Only predicates mutually recursive *to p* matter; within an SCC
        // that is the same clique.
        if !analysis.mutually_recursive(rule.head.pred, p) && rule.head.pred != p {
            continue;
        }
        let lin = rule_linearity(analysis, rule);
        right &= lin.right_linear;
        left &= lin.left_linear;
    }
    match (right, left) {
        (true, true) => Regularity::Both,
        (true, false) => Regularity::RightLinear,
        (false, true) => Regularity::LeftLinear,
        (false, false) => Regularity::Nonregular,
    }
}

/// Whether the binary-chain program is regular (all derived predicates
/// regular).
pub fn program_is_regular(program: &Program, analysis: &Analysis) -> bool {
    program
        .derived_preds()
        .all(|p| pred_regularity(program, analysis, p).is_regular())
}

/// Safety check: every head variable occurs in an ordinary body literal,
/// and every variable of a built-in literal occurs in an ordinary body
/// literal of the same rule (the paper's restriction on built-ins).
/// Returns the indexes of unsafe rules.
pub fn unsafe_rules(program: &Program) -> Vec<usize> {
    let mut out = Vec::new();
    for (ri, rule) in program.rules.iter().enumerate() {
        let mut bound: FxHashSet<_> = FxHashSet::default();
        for atom in rule.body_atoms() {
            bound.extend(atom.vars());
        }
        let head_safe = rule.head.vars().all(|v| bound.contains(&v));
        let builtins_safe = rule.body.iter().all(|l| match l {
            Literal::Atom(_) => true,
            Literal::Cmp { lhs, rhs, .. } => [lhs, rhs]
                .into_iter()
                .filter_map(|t| t.as_var())
                .all(|v| bound.contains(&v)),
        });
        if !head_safe || !builtins_safe {
            out.push(ri);
        }
    }
    out
}

/// Group derived predicates into evaluation strata: SCCs of the dependency
/// graph in dependency order (every predicate a stratum depends on lives
/// in an earlier stratum).
pub fn strata(program: &Program, analysis: &Analysis) -> Vec<Vec<Pred>> {
    // Component ids are already reverse-topological: successors (callees)
    // have smaller ids, so ascending id order is dependency order.
    let mut grouped: FxHashMap<usize, Vec<Pred>> = FxHashMap::default();
    for p in program.derived_preds() {
        grouped.entry(analysis.comp[p]).or_default().push(p);
    }
    let mut keys: Vec<usize> = grouped.keys().copied().collect();
    keys.sort_unstable();
    keys.into_iter()
        .map(|k| grouped.remove(&k).expect("key present"))
        .collect()
}

/// Term helper: whether every argument of every atom in the rule is a
/// variable (required by the binary-chain form).
pub fn rule_all_vars(rule: &Rule) -> bool {
    rule.head.args.iter().all(|t| matches!(t, Term::Var(_)))
        && rule
            .body_atoms()
            .all(|a| a.args.iter().all(|t| matches!(t, Term::Var(_))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn prog(src: &str) -> Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn tarjan_simple_cycle() {
        // 0 -> 1 -> 2 -> 0, 3 -> 0
        let succ = vec![vec![1], vec![2], vec![0], vec![0]];
        let (comp, n) = tarjan_scc(&succ);
        assert_eq!(n, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[3], comp[0]);
        // Reverse topological: callee component (the cycle) has smaller id.
        assert!(comp[0] < comp[3]);
    }

    #[test]
    fn tarjan_deep_chain_no_overflow() {
        let n = 200_000;
        let succ: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let (comp, ncomps) = tarjan_scc(&succ);
        assert_eq!(ncomps, n);
        // Chain: comp ids strictly increase towards the head.
        assert!(comp[0] > comp[n - 1]);
    }

    #[test]
    fn tarjan_lowlink_through_nested_descent() {
        // 0 -> 1 -> 2 -> 3 -> 1 (cycle 1-2-3), 0 not in it.
        let succ = vec![vec![1], vec![2], vec![3], vec![1]];
        let (comp, n) = tarjan_scc(&succ);
        assert_eq!(n, 2);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn same_generation_classification() {
        let p = prog(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,b).",
        );
        let a = Analysis::of(&p);
        let sg = p.pred_by_name("sg").unwrap();
        let up = p.pred_by_name("up").unwrap();
        assert!(a.recursive[sg]);
        assert!(!a.recursive[up]);
        assert!(a.mutually_recursive(sg, sg));
        assert!(!a.mutually_recursive(sg, up));
        assert!(a.program_is_linear(&p));
        assert!(a.program_is_recursive(&p));
        assert!(binary_chain_violations(&p).is_empty());
        // sg is neither right- nor left-linear (recursion in the middle),
        // hence nonregular.
        assert_eq!(pred_regularity(&p, &a, sg), Regularity::Nonregular);
        assert!(!program_is_regular(&p, &a));
    }

    #[test]
    fn transitive_closure_is_right_linear() {
        let p = prog(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b).",
        );
        let a = Analysis::of(&p);
        let tc = p.pred_by_name("tc").unwrap();
        assert_eq!(pred_regularity(&p, &a, tc), Regularity::RightLinear);
        assert!(program_is_regular(&p, &a));
    }

    #[test]
    fn left_linear_closure() {
        let p = prog(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- tc(X,Y), e(Y,Z).\n\
             e(a,b).",
        );
        let a = Analysis::of(&p);
        let tc = p.pred_by_name("tc").unwrap();
        assert_eq!(pred_regularity(&p, &a, tc), Regularity::LeftLinear);
    }

    #[test]
    fn nonlinear_rule_detected() {
        let p = prog(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- tc(X,Y), tc(Y,Z).\n\
             e(a,b).",
        );
        let a = Analysis::of(&p);
        assert!(!a.program_is_linear(&p));
    }

    #[test]
    fn mutual_recursion_detected() {
        // The paper's §3 example: p1, p2, p3 mutually recursive; q1, q2;
        // r1, r2.
        let p = prog(
            "p1(X,Z) :- b(X,Y), p2(Y,Z).\n\
             p1(X,Z) :- q1(X,Y), p3(Y,Z).\n\
             p2(X,Z) :- c(X,Y), p1(Y,Z).\n\
             p2(X,Z) :- d(X,Y), p3(Y,Z).\n\
             p3(X,Y) :- a(X,Y).\n\
             p3(X,Z) :- e(X,Y), p2(Y,Z).\n\
             q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
             q2(X,Y) :- r2(X,Y).\n\
             q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
             r1(X,Y) :- b(X,Y).\n\
             r1(X,Y) :- r2(X,Y).\n\
             r2(X,Z) :- r1(X,Y), c(Y,Z).\n\
             a(x,y).",
        );
        let a = Analysis::of(&p);
        let by = |n: &str| p.pred_by_name(n).unwrap();
        assert!(a.mutually_recursive(by("p1"), by("p2")));
        assert!(a.mutually_recursive(by("p1"), by("p3")));
        assert!(a.mutually_recursive(by("q1"), by("q2")));
        assert!(a.mutually_recursive(by("r1"), by("r2")));
        assert!(!a.mutually_recursive(by("p1"), by("q1")));
        assert!(!a.mutually_recursive(by("q1"), by("r1")));
        // Paper: p1,p2,p3 are right-linear; r1,r2 left-linear; q1,q2
        // linear but nonregular.
        for n in ["p1", "p2", "p3"] {
            assert_eq!(
                pred_regularity(&p, &a, by(n)),
                Regularity::RightLinear,
                "{n}"
            );
        }
        for n in ["r1", "r2"] {
            assert_eq!(
                pred_regularity(&p, &a, by(n)),
                Regularity::LeftLinear,
                "{n}"
            );
        }
        for n in ["q1", "q2"] {
            assert_eq!(
                pred_regularity(&p, &a, by(n)),
                Regularity::Nonregular,
                "{n}"
            );
        }
        assert!(a.program_is_linear(&p));
        assert!(binary_chain_violations(&p).is_empty());
    }

    #[test]
    fn chain_rule_shape_checks() {
        let p = prog("p(X,Z) :- a(X,Y), b(Y,Z).\na(x,y).");
        assert!(rule_is_chain(&p.rules[0]));
        // Head vars reversed: not a chain.
        let p = prog("p(Z,X) :- a(X,Y), b(Y,Z).\na(x,y).");
        assert!(!rule_is_chain(&p.rules[0]));
        // Repeated variable: not a chain.
        let p = prog("p(X,X) :- a(X,Y), b(Y,X).\na(x,y).");
        assert!(!rule_is_chain(&p.rules[0]));
        // Disconnected body: not a chain.
        let p = prog("p(X,Z) :- a(X,Y), b(W,Z).\na(x,y).");
        assert!(!rule_is_chain(&p.rules[0]));
        // Constant in body: not a chain.
        let p = prog("p(X,Z) :- a(X,k), b(k,Z).\na(x,y).");
        assert!(!rule_is_chain(&p.rules[0]));
    }

    #[test]
    fn chain_violations_reported() {
        let p = prog("t(X,Y,Z) :- e(X,Y), f(Y,Z).\ne(a,b).");
        let v = binary_chain_violations(&p);
        assert!(v
            .iter()
            .any(|x| matches!(x, ChainViolation::NonBinaryPred(_))));
        let p = prog("t(X,Y) :- e(X,Y), X < Y.\ne(1,2).");
        let v = binary_chain_violations(&p);
        assert!(v
            .iter()
            .any(|x| matches!(x, ChainViolation::BuiltinInRule(0))));
    }

    #[test]
    fn unsafe_rules_detected() {
        // Head var Z not in body.
        let p = prog("p(X,Z) :- a(X,Y).\na(x,y).");
        assert_eq!(unsafe_rules(&p), vec![0]);
        // Builtin var W unbound.
        let p = prog("p(X,Y) :- a(X,Y), W < Y.\na(1,2).");
        assert_eq!(unsafe_rules(&p), vec![0]);
        // Safe rule.
        let p = prog("p(X,Y) :- a(X,Y), X < Y.\na(1,2).");
        assert!(unsafe_rules(&p).is_empty());
    }

    #[test]
    fn strata_respect_dependencies() {
        let p = prog(
            "a(X,Y) :- e(X,Y).\n\
             b(X,Y) :- a(X,Y).\n\
             c(X,Y) :- b(X,Y), c(X,Y).\n\
             e(u,v).",
        );
        let an = Analysis::of(&p);
        let s = strata(&p, &an);
        let pos = |name: &str| {
            let pr = p.pred_by_name(name).unwrap();
            s.iter().position(|grp| grp.contains(&pr)).unwrap()
        };
        assert!(pos("a") < pos("b"));
        assert!(pos("b") < pos("c"));
    }

    #[test]
    fn reflexive_empty_body_chain() {
        // p*(X,X) :- .  The parser requires a body, so build it manually.
        let mut p = Program::new();
        let star = p.pred("star", 2);
        p.add_rule(Rule {
            head: crate::ast::Atom::new(
                star,
                vec![Term::Var(rq_common::Var(0)), Term::Var(rq_common::Var(0))],
            ),
            body: vec![],
            var_names: vec!["X".into()],
        });
        assert!(rule_is_chain(&p.rules[0]));
    }
}
