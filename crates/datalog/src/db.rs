//! Extensional/derived relation storage: predicate-sharded, persistent,
//! with on-demand column indexes.
//!
//! The paper's cost model assumes "any tuple in a base relation can be
//! retrieved in constant time".  We realize that model with flat, arity-
//! strided tuple storage plus hash indexes keyed by the bound-column
//! subset, built lazily the first time a lookup with that binding pattern
//! happens and maintained incrementally as tuples are inserted.
//!
//! **Sharding and persistence.**  A [`Database`] holds one `Arc`-shared
//! [`Relation`] *shard* per predicate.  Cloning a database bumps one
//! refcount per shard; mutating a shard first detaches it copy-on-write
//! (`Arc::make_mut`).  Inside a shard, storage is persistent too: tuples
//! live in a chunked [`PVec`] (appends copy only the tail chunk), and
//! the dedup table and every built index are [`PMap`] hash tries (path
//! copying).  The net effect is that publishing a new snapshot epoch
//! after ingesting a handful of facts costs O(delta), not O(database):
//! untouched shards are shared wholesale (`Arc::ptr_eq` with the parent
//! epoch), and the touched shard shares all of its full chunks and all
//! untouched index regions with its predecessor.
//!
//! **Index warmth.**  The index cache lives *inside* the shard, behind
//! an [`RwLock`] so a fully built relation is `Sync`: the serving layer
//! (`rq-service`) shares immutable [`Database`] snapshots across query
//! worker threads.  Because untouched shards are shared by pointer,
//! their warm indexes survive epoch publication for free; a touched
//! shard clones its index *maps* cheaply (persistent tries) and then
//! maintains them incrementally for the delta, so even the dirty shard
//! never rebuilds an index from scratch.

use rq_common::{Const, FxHashMap, IdVec, PMap, PVec, Pred};
use std::sync::{Arc, PoisonError, RwLock};

/// A bitmask of bound columns; bit `i` set means column `i` is bound.
pub type ColMask = u32;

/// Tuples per storage chunk; the chunk byte-capacity scales with arity
/// so a tuple never straddles a chunk boundary.
const TUPLES_PER_CHUNK: usize = 256;

/// Largest relation served by a columnar scan when no hash index for
/// the binding pattern exists yet.  Shards are shared by `Arc` across
/// every reader of a snapshot, so a trie index built by one query is
/// amortized over all of them; repeated O(n) scans only beat that for
/// relations small enough that a scan costs about as much as one hash
/// probe.
const COLUMNAR_SCAN_MAX: usize = 64;

/// Recover the guard from a poisoned lock.  Every structure behind the
/// relation locks is persistent (mutation happens under `&mut self` or
/// replaces an `Arc` wholesale), so a panicked reader cannot have left
/// torn data — wedging the whole service on the poison flag would hurt
/// strictly more than clearing it.
fn recover<G>(result: Result<G, PoisonError<G>>) -> G {
    result.unwrap_or_else(PoisonError::into_inner)
}

/// Build a mask from an iterator of bound column positions.
pub fn mask_of(cols: impl IntoIterator<Item = usize>) -> ColMask {
    let mut m = 0;
    for c in cols {
        debug_assert!(c < 32);
        m |= 1 << c;
    }
    m
}

/// Columns set in a mask, in ascending order.
pub fn mask_cols(mask: ColMask) -> impl Iterator<Item = usize> {
    (0..32).filter(move |c| mask & (1 << c) != 0)
}

type Index = PMap<Box<[Const]>, Vec<u32>>;

/// Read-optimized storage built once per publish
/// ([`Relation::build_compact`]): a column-major copy of the tuple
/// store so bound-column probes scan contiguous buffers instead of
/// walking hash tries, plus forward/reverse CSR adjacency for binary
/// relations so the traversal engine reads successor sets as plain
/// slices.
///
/// The store is immutable once built.  [`Relation::insert`] drops it
/// (the shard is being mutated, so the snapshot is stale);
/// [`Relation::clone`] carries it by `Arc`, which is what lets every
/// shard untouched by an epoch publish keep its compact store for
/// free.
#[derive(Debug)]
pub struct CompactStore {
    /// Column-major tuples: `cols[c][ord]` is column `c` of tuple
    /// `ord`.
    cols: Vec<Vec<Const>>,
    /// CSR adjacency, present for binary relations whose constant ids
    /// are dense enough for the offset table to pay off.
    csr: Option<Csr>,
}

/// Compressed-sparse-row adjacency for one binary relation, in both
/// orientations.  `offsets` is indexed by the constant's interner id:
/// the row of `u` is `targets[offsets[u] .. offsets[u + 1]]`.
#[derive(Debug)]
struct Csr {
    fwd_offsets: Vec<u32>,
    fwd_targets: Vec<Const>,
    rev_offsets: Vec<u32>,
    rev_targets: Vec<Const>,
    /// Distinct first-column constants, in first-appearance order (the
    /// order [`Relation::iter`]-based deduplication would yield).
    sources: Vec<Const>,
}

impl Csr {
    /// Dense offset tables stop paying off when the id space is much
    /// larger than the relation; fall back to the trie indexes then.
    fn build(col0: &[Const], col1: &[Const]) -> Option<Self> {
        let width = col0
            .iter()
            .chain(col1)
            .map(|c| c.index() + 1)
            .max()
            .unwrap_or(0);
        if width > 8 * col0.len() + 1024 {
            return None;
        }
        let (fwd_offsets, fwd_targets) = Self::direction(col0, col1, width);
        let (rev_offsets, rev_targets) = Self::direction(col1, col0, width);
        let mut seen = vec![false; width];
        let mut sources = Vec::new();
        for &u in col0 {
            if !seen[u.index()] {
                seen[u.index()] = true;
                sources.push(u);
            }
        }
        Some(Self {
            fwd_offsets,
            fwd_targets,
            rev_offsets,
            rev_targets,
            sources,
        })
    }

    /// One orientation by counting sort: targets of a key stay in
    /// tuple-ordinal order, matching what the trie-index probe yields.
    fn direction(keys: &[Const], vals: &[Const], width: usize) -> (Vec<u32>, Vec<Const>) {
        let mut offsets = vec![0u32; width + 1];
        for k in keys {
            offsets[k.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut targets = vec![Const::from_index(0); keys.len()];
        let mut cursor: Vec<u32> = offsets.clone();
        for (k, &v) in keys.iter().zip(vals) {
            let slot = cursor[k.index()] as usize;
            targets[slot] = v;
            cursor[k.index()] += 1;
        }
        (offsets, targets)
    }

    #[inline]
    fn row<'s>(offsets: &[u32], targets: &'s [Const], id: usize) -> &'s [Const] {
        if id + 1 >= offsets.len() {
            return &[];
        }
        &targets[offsets[id] as usize..offsets[id + 1] as usize]
    }
}

impl CompactStore {
    /// Number of tuples covered.
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    /// Whether the store covers no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All `v` with `r(u, v)`, as one contiguous slice in tuple-ordinal
    /// order.  `None` when no CSR was built for this relation.
    #[inline]
    pub fn successors(&self, u: Const) -> Option<&[Const]> {
        self.csr
            .as_ref()
            .map(|c| Csr::row(&c.fwd_offsets, &c.fwd_targets, u.index()))
    }

    /// All `u` with `r(u, v)`, as one contiguous slice.
    #[inline]
    pub fn predecessors(&self, v: Const) -> Option<&[Const]> {
        self.csr
            .as_ref()
            .map(|c| Csr::row(&c.rev_offsets, &c.rev_targets, v.index()))
    }

    /// Distinct first-column constants in first-appearance order, or
    /// `None` when no CSR was built.
    pub fn first_column(&self) -> Option<&[Const]> {
        self.csr.as_ref().map(|c| c.sources.as_slice())
    }

    /// Whether every column of `mask` exists in this store.
    fn covers(&self, mask: ColMask) -> bool {
        mask_cols(mask).all(|c| c < self.cols.len())
    }

    /// Append the ordinals of all tuples whose `mask` columns equal
    /// `key`, by scanning the bound columns contiguously.  Ordinals
    /// come out ascending — the same order the trie-index path yields.
    fn scan(&self, mask: ColMask, key: &[Const], out: &mut Vec<u32>) {
        let mut bound: Vec<(&[Const], Const)> = Vec::with_capacity(key.len());
        for (ki, c) in mask_cols(mask).enumerate() {
            bound.push((&self.cols[c], key[ki]));
        }
        let Some(&(first_col, first_key)) = bound.first() else {
            out.extend(0..self.len() as u32);
            return;
        };
        'tuples: for ord in 0..self.len() {
            if first_col[ord] != first_key {
                continue;
            }
            for &(col, k) in &bound[1..] {
                if col[ord] != k {
                    continue 'tuples;
                }
            }
            out.push(ord as u32);
        }
    }
}

/// A stored relation: a set of tuples of a fixed arity, persistent in
/// every part (see the module docs for the sharing story).
#[derive(Debug)]
pub struct Relation {
    arity: usize,
    /// Tuples, stored back to back (`arity` constants each) in shared
    /// chunks.
    flat: PVec<Const>,
    /// Tuple → ordinal, for deduplication and membership tests.
    dedup: PMap<Box<[Const]>, u32>,
    /// Lazily built indexes, one per bound-column mask.  Persistent
    /// values, so cloning the cache is cheap and clones keep their
    /// warmth.
    indexes: RwLock<FxHashMap<ColMask, Index>>,
    /// The publish-time compact store ([`CompactStore`]); `None` until
    /// built, dropped again by [`Self::insert`].
    compact: RwLock<Option<Arc<CompactStore>>>,
}

impl Default for Relation {
    fn default() -> Self {
        Self::new(0)
    }
}

impl Relation {
    /// New, empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Self {
            arity,
            flat: PVec::with_chunk_capacity(arity.max(1) * TUPLES_PER_CHUNK),
            dedup: PMap::new(),
            indexes: RwLock::new(FxHashMap::default()),
            compact: RwLock::new(None),
        }
    }

    /// Build a relation of the given arity from an iterator of rows
    /// (duplicates are dropped).  This is the delta-view constructor:
    /// semi-naive consumers wrap a publish's added tuples as a relation
    /// so [`crate::DeltaView`] can substitute it for one body-atom
    /// occurrence.
    pub fn from_rows<'r>(arity: usize, rows: impl IntoIterator<Item = &'r [Const]>) -> Self {
        let mut rel = Self::new(arity);
        for row in rows {
            rel.insert(row);
        }
        rel
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.dedup.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.dedup.is_empty()
    }

    /// The tuple with the given ordinal.
    #[inline]
    pub fn tuple(&self, ord: u32) -> &[Const] {
        if self.arity == 0 {
            debug_assert!((ord as usize) < self.len());
            return &[];
        }
        self.flat.get_slice(ord as usize * self.arity, self.arity)
    }

    /// Iterate all tuples.  Correct for every arity, including 0: a
    /// nullary relation holds at most the empty tuple, which iteration
    /// over the (empty) flat storage would never yield.
    pub fn iter(&self) -> impl Iterator<Item = &[Const]> {
        (0..self.len()).map(move |ord| self.tuple(ord as u32))
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[Const]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        self.dedup.contains_key(tuple)
    }

    /// Insert a tuple; returns `true` if it was new.  Existing indexes
    /// are maintained incrementally so lookups stay correct as derived
    /// relations grow during bottom-up evaluation, and so a shard
    /// detached from a shared snapshot keeps its warm indexes instead
    /// of rebuilding them.
    pub fn insert(&mut self, tuple: &[Const]) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        if self.dedup.contains_key(tuple) {
            return false;
        }
        let ord = self.len() as u32;
        self.dedup.entry_mut(tuple.into(), || ord);
        self.flat.push_slice(tuple);
        // The compact store is a snapshot of the tuple set; a mutation
        // makes it stale.  The next publish rebuilds it.
        *recover(self.compact.get_mut()) = None;
        let indexes = recover(self.indexes.get_mut());
        for (&mask, index) in indexes.iter_mut() {
            let key = Self::key_for(tuple, mask);
            index.entry_mut(key, Vec::new).push(ord);
        }
        true
    }

    fn key_for(tuple: &[Const], mask: ColMask) -> Box<[Const]> {
        mask_cols(mask)
            .filter(|&c| c < tuple.len())
            .map(|c| tuple[c])
            .collect()
    }

    /// Append to `out` the ordinals of all tuples whose columns in `mask`
    /// equal `key` (the bound values, in ascending column order).  Builds
    /// the index for `mask` on first use.
    pub fn lookup(&self, mask: ColMask, key: &[Const], out: &mut Vec<u32>) {
        self.lookup_tracked(mask, key, out);
    }

    /// [`Self::lookup`], reporting how the probe was served: `true`
    /// when the publish-time [`CompactStore`] answered it by columnar
    /// scan, `false` for the full-scan and trie-index paths.
    ///
    /// Probe routing: an already-built trie index wins (O(1) to the
    /// posting list); otherwise a small relation with a compact store
    /// is scanned column-wise — contiguous reads, no index
    /// construction, identical ordinal order; only when neither
    /// applies is the trie index built on the spot.
    pub fn lookup_tracked(&self, mask: ColMask, key: &[Const], out: &mut Vec<u32>) -> bool {
        if mask == 0 {
            out.extend(0..self.len() as u32);
            return false;
        }
        {
            let indexes = recover(self.indexes.read());
            if let Some(index) = indexes.get(&mask) {
                if let Some(ords) = index.get(key) {
                    out.extend_from_slice(ords);
                }
                return false;
            }
        }
        if self.len() <= COLUMNAR_SCAN_MAX {
            let compact = recover(self.compact.read());
            if let Some(store) = compact.as_deref() {
                if store.covers(mask) {
                    store.scan(mask, key, out);
                    return true;
                }
            }
        }
        self.build_index(mask);
        let indexes = recover(self.indexes.read());
        if let Some(ords) = indexes[&mask].get(key) {
            out.extend_from_slice(ords);
        }
        false
    }

    /// Build (if absent) the index for `mask`, so later [`Self::lookup`]s
    /// with that binding pattern take the shared read path only.  Called
    /// by the serving layer when an immutable snapshot is published; a
    /// no-op for shards that already carry the index (e.g. every shard
    /// shared with, or detached from, a previous epoch).
    pub fn build_index(&self, mask: ColMask) {
        if mask == 0 {
            return;
        }
        let mut indexes = recover(self.indexes.write());
        indexes.entry(mask).or_insert_with(|| {
            let mut idx: Index = PMap::new();
            for ord in 0..self.len() as u32 {
                let key = Self::key_for(self.tuple(ord), mask);
                idx.entry_mut(key, Vec::new).push(ord);
            }
            idx
        });
    }

    /// Whether the index for `mask` has been built — the warmth probe
    /// used by tests and the serving layer's publish path.
    pub fn has_index(&self, mask: ColMask) -> bool {
        recover(self.indexes.read()).contains_key(&mask)
    }

    /// Build the compact store ([`CompactStore`]) if absent; returns
    /// whether a build happened.  Called by the serving layer at
    /// publish: a shard carried over from the previous epoch still has
    /// its store (the `Arc` travels with [`Self::clone`]), so only
    /// dirty shards pay.
    pub fn build_compact(&self) -> bool {
        if self.arity == 0 {
            return false;
        }
        let mut slot = recover(self.compact.write());
        if slot.is_some() {
            return false;
        }
        let n = self.len();
        let mut cols: Vec<Vec<Const>> = vec![Vec::with_capacity(n); self.arity];
        for ord in 0..n {
            for (c, &v) in self.tuple(ord as u32).iter().enumerate() {
                cols[c].push(v);
            }
        }
        let csr = if self.arity == 2 {
            Csr::build(&cols[0], &cols[1])
        } else {
            None
        };
        *slot = Some(Arc::new(CompactStore { cols, csr }));
        true
    }

    /// Whether the compact store is built — the warmth probe used by
    /// tests and the serving layer.
    pub fn has_compact(&self) -> bool {
        recover(self.compact.read()).is_some()
    }

    /// The compact store, if built.  The `Arc` lets callers (e.g. the
    /// traversal engine's source) pin it once and probe lock-free.
    pub fn compact_store(&self) -> Option<Arc<CompactStore>> {
        recover(self.compact.read()).clone()
    }

    /// Count of tuples matching the binding pattern, without materializing.
    pub fn count_matching(&self, mask: ColMask, key: &[Const]) -> usize {
        let mut tmp = Vec::new();
        self.lookup(mask, key, &mut tmp);
        tmp.len()
    }

    /// How many tuple-storage chunks this relation physically shares
    /// with `other` — the structural-sharing test hook.
    pub fn shared_chunks_with(&self, other: &Self) -> usize {
        self.flat.shared_chunks_with(&other.flat)
    }

    /// Trim the tuple store's tail chunk to its live prefix, returning
    /// the number of constant slots reclaimed.  Only a uniquely owned
    /// tail is touched ([`rq_common::PVec::compact_tail`]), so shards
    /// still sharing their tail with a parent epoch are left alone.
    pub fn compact(&mut self) -> usize {
        self.flat.compact_tail()
    }

    /// Constant slots allocated past the tuple store's live prefix —
    /// the compaction opportunity probe used by tests.
    pub fn excess_capacity(&self) -> usize {
        self.flat.tail_excess_capacity()
    }
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        Self {
            arity: self.arity,
            flat: self.flat.clone(),   // chunk refcount bumps
            dedup: self.dedup.clone(), // root refcount bump
            // Indexes are persistent tries too: carry the warm cache
            // over at the cost of one refcount bump per built mask.
            indexes: RwLock::new(recover(self.indexes.read()).clone()),
            // The compact store is immutable; carry it by refcount.
            compact: RwLock::new(recover(self.compact.read()).clone()),
        }
    }
}

/// A database: one `Arc`-shared [`Relation`] shard per predicate.
///
/// `clone` is O(#predicates) refcount bumps; the first mutation of a
/// shard after a clone detaches that shard only (copy-on-write via
/// [`Arc::make_mut`]), and the detached copy still shares its chunked
/// tuple storage and indexes with the original.  In the common
/// single-owner case (bottom-up evaluation filling a fresh database)
/// `Arc::make_mut` sees a unique shard and mutates in place.
#[derive(Debug, Default, Clone)]
pub struct Database {
    relations: IdVec<Pred, Arc<Relation>>,
}

impl Database {
    /// Empty database able to hold relations for `preds` predicates with
    /// the given arities.
    pub fn with_preds(arities: impl IntoIterator<Item = usize>) -> Self {
        Self {
            relations: arities
                .into_iter()
                .map(|a| Arc::new(Relation::new(a)))
                .collect(),
        }
    }

    /// Build a database holding the facts of a program (the EDB).
    pub fn from_program(program: &crate::ast::Program) -> Self {
        let mut db = Self::with_preds(program.preds.iter().map(|i| i.arity));
        for (pred, tuple) in &program.facts {
            db.insert(*pred, tuple);
        }
        db
    }

    /// Ensure a relation exists for `pred` (growing the table if needed).
    pub fn ensure_pred(&mut self, pred: Pred, arity: usize) {
        self.relations.ensure(pred, || Arc::new(Relation::new(0)));
        if self.relations[pred].arity() != arity && self.relations[pred].is_empty() {
            self.relations[pred] = Arc::new(Relation::new(arity));
        }
    }

    /// The relation for a predicate.
    pub fn relation(&self, pred: Pred) -> &Relation {
        &self.relations[pred]
    }

    /// The `Arc`-shared shard behind a predicate — the serving layer's
    /// view type.  Two epochs that did not touch `pred` return
    /// [`Arc::ptr_eq`]-identical shards.
    pub fn shard(&self, pred: Pred) -> Option<&Arc<Relation>> {
        self.relations.get(pred)
    }

    /// Insert a tuple; returns `true` if new.  Detaches the shard
    /// copy-on-write if it is shared with another database version.
    pub fn insert(&mut self, pred: Pred, tuple: &[Const]) -> bool {
        Arc::make_mut(&mut self.relations[pred]).insert(tuple)
    }

    /// Membership test.
    pub fn contains(&self, pred: Pred, tuple: &[Const]) -> bool {
        self.relations.get(pred).is_some_and(|r| r.contains(tuple))
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Build the first-column and second-column indexes of every binary
    /// relation — the two probes the traversal engine makes.  The serving
    /// layer calls this once when publishing an immutable snapshot so
    /// concurrent readers never contend on index construction.  Shards
    /// carried over from a previous epoch already have both indexes, so
    /// for them this is O(1) per shard.
    pub fn prewarm_binary_indexes(&self) {
        for rel in self.relations.iter() {
            if rel.arity() == 2 {
                rel.build_index(mask_of([0]));
                rel.build_index(mask_of([1]));
            }
        }
    }

    /// Build the compact store ([`CompactStore`]) of every relation
    /// that lacks one, returning how many were built.  The serving
    /// layer calls this when publishing a snapshot: shards shared with
    /// the previous epoch kept their store through the `Arc`, so only
    /// the publish's dirty shards rebuild.
    pub fn build_compact_stores(&self) -> usize {
        self.relations
            .iter()
            .filter(|rel| rel.build_compact())
            .count()
    }

    /// Number of predicates with storage.
    pub fn num_preds(&self) -> usize {
        self.relations.len()
    }

    /// Compact the shards of the given predicates (see
    /// [`Relation::compact`]), returning the total constant slots
    /// reclaimed.  The serving layer runs this over each publish's
    /// dirty shards: a just-detached shard is uniquely owned, so its
    /// tail — carrying the capacity its copy-on-write detach
    /// over-allocated — shrinks in place; shards whose `Arc` (or tail
    /// chunk) is still shared are left untouched.
    pub fn compact_shards(&mut self, preds: impl IntoIterator<Item = Pred>) -> usize {
        let mut reclaimed = 0;
        for pred in preds {
            if self.relations.get(pred).is_none() {
                continue;
            }
            if let Some(rel) = Arc::get_mut(&mut self.relations[pred]) {
                reclaimed += rel.compact();
            }
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> Const {
        Const(i)
    }

    #[test]
    fn insert_and_dedup() {
        let mut r = Relation::new(2);
        assert!(r.insert(&[c(1), c(2)]));
        assert!(!r.insert(&[c(1), c(2)]));
        assert!(r.insert(&[c(2), c(1)]));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[c(1), c(2)]));
        assert!(!r.contains(&[c(3), c(3)]));
    }

    #[test]
    fn lookup_by_first_column() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(10)]);
        r.insert(&[c(1), c(11)]);
        r.insert(&[c(2), c(12)]);
        let mut out = Vec::new();
        r.lookup(mask_of([0]), &[c(1)], &mut out);
        let mut seconds: Vec<Const> = out.iter().map(|&o| r.tuple(o)[1]).collect();
        seconds.sort();
        assert_eq!(seconds, vec![c(10), c(11)]);
    }

    #[test]
    fn index_maintained_after_insert() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(10)]);
        // Force index construction.
        let mut out = Vec::new();
        r.lookup(mask_of([0]), &[c(1)], &mut out);
        assert_eq!(out.len(), 1);
        // Insert after the index exists; lookup must see the new tuple.
        r.insert(&[c(1), c(20)]);
        out.clear();
        r.lookup(mask_of([0]), &[c(1)], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn lookup_full_scan_with_empty_mask() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        r.insert(&[c(3), c(4)]);
        let mut out = Vec::new();
        r.lookup(0, &[], &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn lookup_by_both_columns() {
        let mut r = Relation::new(3);
        r.insert(&[c(1), c(2), c(3)]);
        r.insert(&[c(1), c(5), c(3)]);
        let mut out = Vec::new();
        r.lookup(mask_of([0, 2]), &[c(1), c(3)], &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        r.lookup(mask_of([0, 1]), &[c(1), c(5)], &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(r.tuple(out[0]), &[c(1), c(5), c(3)]);
    }

    #[test]
    fn mask_helpers() {
        let m = mask_of([0, 2]);
        assert_eq!(m, 0b101);
        assert_eq!(mask_cols(m).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn database_from_program() {
        let p = crate::parser::parse_program("up(a,b). up(b,c). flat(a,a).").unwrap();
        let db = Database::from_program(&p);
        let up = p.pred_by_name("up").unwrap();
        assert_eq!(db.relation(up).len(), 2);
        assert_eq!(db.total_tuples(), 3);
    }

    #[test]
    fn zero_arity_relation() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
    }

    #[test]
    fn zero_arity_iter_yields_the_empty_tuple() {
        // Regression: iteration driven by flat storage alone yielded
        // nothing for nullary relations even when they held the empty
        // tuple.
        let mut r = Relation::new(0);
        assert_eq!(r.iter().count(), 0);
        r.insert(&[]);
        let tuples: Vec<&[Const]> = r.iter().collect();
        assert_eq!(tuples, vec![&[] as &[Const]]);
    }

    #[test]
    fn iter_matches_len_and_tuple_for_all_arities() {
        for arity in 0..4usize {
            let mut r = Relation::new(arity);
            let tuple: Vec<Const> = (0..arity as u32).map(c).collect();
            r.insert(&tuple);
            assert_eq!(r.iter().count(), r.len());
            for (ord, t) in r.iter().enumerate() {
                assert_eq!(t, r.tuple(ord as u32));
                assert_eq!(t.len(), arity);
            }
        }
    }

    #[test]
    fn relations_are_shareable_across_threads() {
        // The serving layer requires `Sync` storage; hold the line here
        // so a future `Cell`-flavored cache cannot sneak back in.
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Relation>();
        assert_sync::<Database>();

        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        r.insert(&[c(1), c(3)]);
        r.build_index(mask_of([0]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    // Mix a pre-built index probe with a lazily built one.
                    r.lookup(mask_of([0]), &[c(1)], &mut out);
                    assert_eq!(out.len(), 2);
                    out.clear();
                    r.lookup(mask_of([1]), &[c(3)], &mut out);
                    assert_eq!(out.len(), 1);
                });
            }
        });
    }

    #[test]
    fn prewarm_builds_binary_indexes() {
        let p = crate::parser::parse_program("e(a,b). e(b,c). t(a,a,a).").unwrap();
        let db = Database::from_program(&p);
        db.prewarm_binary_indexes();
        let e = p.pred_by_name("e").unwrap();
        assert!(db.relation(e).has_index(mask_of([0])));
        assert!(db.relation(e).has_index(mask_of([1])));
        let mut out = Vec::new();
        db.relation(e).lookup(mask_of([1]), &[Const(1)], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn clone_keeps_warm_indexes_and_data() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        let mut out = Vec::new();
        r.lookup(mask_of([0]), &[c(1)], &mut out);
        let r2 = r.clone();
        // The clone carried the built index over instead of rebuilding.
        assert!(r2.has_index(mask_of([0])));
        out.clear();
        r2.lookup(mask_of([0]), &[c(1)], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn cloned_relation_diverges_without_disturbing_the_original() {
        let mut r = Relation::new(2);
        for i in 0..600u32 {
            r.insert(&[c(i), c(i + 1)]);
        }
        r.build_index(mask_of([0]));
        let snapshot = r.clone();
        // Full chunks are physically shared between the versions.
        assert!(snapshot.shared_chunks_with(&r) >= 2);
        r.insert(&[c(9000), c(9001)]);
        assert_eq!(snapshot.len(), 600);
        assert_eq!(r.len(), 601);
        assert!(!snapshot.contains(&[c(9000), c(9001)]));
        // Both versions answer indexed lookups correctly.
        let mut out = Vec::new();
        snapshot.lookup(mask_of([0]), &[c(9000)], &mut out);
        assert!(out.is_empty());
        r.lookup(mask_of([0]), &[c(9000)], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn compact_store_csr_matches_index_lookups() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(10)]);
        r.insert(&[c(1), c(11)]);
        r.insert(&[c(2), c(10)]);
        assert!(r.build_compact());
        assert!(!r.build_compact(), "second build is a no-op");
        let store = r.compact_store().unwrap();
        assert_eq!(store.successors(c(1)).unwrap(), &[c(10), c(11)]);
        assert_eq!(store.successors(c(7)).unwrap(), &[] as &[Const]);
        assert_eq!(store.predecessors(c(10)).unwrap(), &[c(1), c(2)]);
        assert_eq!(store.first_column().unwrap(), &[c(1), c(2)]);
    }

    #[test]
    fn columnar_scan_matches_trie_index() {
        let mut with_store = Relation::new(3);
        let mut with_index = Relation::new(3);
        for t in [[1, 2, 3], [1, 5, 3], [4, 2, 3], [1, 2, 9]] {
            let tuple: Vec<Const> = t.iter().map(|&i| c(i)).collect();
            with_store.insert(&tuple);
            with_index.insert(&tuple);
        }
        with_store.build_compact();
        for (mask, key) in [
            (mask_of([0]), vec![c(1)]),
            (mask_of([0, 2]), vec![c(1), c(3)]),
            (mask_of([1, 2]), vec![c(2), c(3)]),
            (mask_of([0, 1, 2]), vec![c(9), c(9), c(9)]),
        ] {
            let (mut scanned, mut indexed) = (Vec::new(), Vec::new());
            assert!(with_store.lookup_tracked(mask, &key, &mut scanned));
            assert!(!with_index.lookup_tracked(mask, &key, &mut indexed));
            assert_eq!(scanned, indexed, "mask {mask:#b}");
        }
    }

    #[test]
    fn insert_invalidates_compact_store() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        r.build_compact();
        assert!(r.has_compact());
        r.insert(&[c(1), c(3)]);
        assert!(!r.has_compact(), "mutation drops the stale store");
        // Lookups stay correct through the fallback paths.
        let mut out = Vec::new();
        r.lookup(mask_of([0]), &[c(1)], &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn clone_carries_compact_store() {
        let mut r = Relation::new(2);
        r.insert(&[c(1), c(2)]);
        r.build_compact();
        let snapshot = r.clone();
        assert!(snapshot.has_compact());
        // Mutating the original drops only its own store.
        r.insert(&[c(2), c(3)]);
        assert!(!r.has_compact());
        assert!(snapshot.has_compact());
        assert_eq!(
            snapshot.compact_store().unwrap().successors(c(1)).unwrap(),
            &[c(2)]
        );
    }

    #[test]
    fn empty_and_nullary_relations_build_cleanly() {
        let empty = Relation::new(2);
        assert!(empty.build_compact());
        let store = empty.compact_store().unwrap();
        assert_eq!(store.successors(c(3)).unwrap(), &[] as &[Const]);
        assert_eq!(store.first_column().unwrap(), &[] as &[Const]);
        let nullary = Relation::new(0);
        assert!(!nullary.build_compact(), "nothing to probe in arity 0");
    }

    #[test]
    fn database_builds_stores_once_per_shard() {
        let p = crate::parser::parse_program("e(a,b). t(a,a,a).").unwrap();
        let db = Database::from_program(&p);
        assert_eq!(db.build_compact_stores(), 2);
        assert_eq!(db.build_compact_stores(), 0, "all shards already built");
    }

    #[test]
    fn poisoned_index_lock_recovers() {
        let r = std::sync::Arc::new({
            let mut r = Relation::new(2);
            r.insert(&[c(1), c(2)]);
            r
        });
        let poisoner = std::sync::Arc::clone(&r);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.indexes.write();
            panic!("poison the lock");
        })
        .join();
        // The relation still answers lookups instead of wedging.
        let mut out = Vec::new();
        r.lookup(mask_of([0]), &[c(1)], &mut out);
        assert_eq!(out.len(), 1);
        assert!(r.build_compact());
    }

    #[test]
    fn database_clone_shares_untouched_shards() {
        let p = crate::parser::parse_program("e(a,b). f(b,c). g(c,d).").unwrap();
        let db = Database::from_program(&p);
        let mut next = db.clone();
        let e = p.pred_by_name("e").unwrap();
        let f = p.pred_by_name("f").unwrap();
        let g = p.pred_by_name("g").unwrap();
        next.insert(e, &[c(50), c(51)]);
        // The touched shard detached; the other two are pointer-shared.
        assert!(!Arc::ptr_eq(db.shard(e).unwrap(), next.shard(e).unwrap()));
        assert!(Arc::ptr_eq(db.shard(f).unwrap(), next.shard(f).unwrap()));
        assert!(Arc::ptr_eq(db.shard(g).unwrap(), next.shard(g).unwrap()));
        assert_eq!(db.relation(e).len(), 1);
        assert_eq!(next.relation(e).len(), 2);
    }
}
