//! E6: constructing the Horner-style unrolling `sg_i` (linear size) vs
//! the flattened `sg'_i` (quadratic size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_relalg::{flattened_linear, initial_system, linear_decomposition, unroll};

fn bench_horner(c: &mut Criterion) {
    let program = rq_datalog::parse_program(
        "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\nflat(a,b).",
    )
    .unwrap();
    let system = initial_system(&program).unwrap();
    let sg = program.pred_by_name("sg").unwrap();
    let (e0, e1, e2) = linear_decomposition(sg, &system.rhs[&sg]).unwrap();

    let mut group = c.benchmark_group("horner_unrolling");
    group.sample_size(10);
    for i in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("horner_sg_i", i), &i, |b, &i| {
            b.iter(|| unroll(&system, sg, i).occurrence_count())
        });
        group.bench_with_input(BenchmarkId::new("flattened_sg_i", i), &i, |b, &i| {
            b.iter(|| flattened_linear(&e0, &e1, &e2, i - 1).occurrence_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_horner);
criterion_main!(benches);
