//! E9: Theorem 4 — the linear case runs in O(h·n·t); sweep the number
//! of iterations h (ladder height) and the per-level size n (bundle
//! width) independently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{prepare, run_strategy, StrategyKind};
use rq_workloads::{fig7, graphs};

fn bench_linear(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem4_linear");
    group.sample_size(10);
    // h sweep: fig7(c) ladder, h = n, total work O(n).
    for n in [128usize, 512, 2048] {
        let prepared = prepare(&fig7::sample_c(n));
        group.bench_with_input(BenchmarkId::new("sweep_h_ladder", n), &n, |b, _| {
            b.iter(|| run_strategy(&prepared, StrategyKind::Ours, None))
        });
    }
    // n sweep: fig7(a) bundle, h = 2 fixed.
    for n in [128usize, 512, 2048] {
        let prepared = prepare(&fig7::sample_a(n));
        group.bench_with_input(BenchmarkId::new("sweep_n_bundle", n), &n, |b, _| {
            b.iter(|| run_strategy(&prepared, StrategyKind::Ours, None))
        });
    }
    // Balanced same-generation trees: h = depth, n = 2^depth.
    for depth in [4usize, 6, 8] {
        let prepared = prepare(&graphs::sg_tree(depth));
        group.bench_with_input(BenchmarkId::new("sg_tree", depth), &depth, |b, _| {
            b.iter(|| run_strategy(&prepared, StrategyKind::Ours, None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_linear);
criterion_main!(benches);
