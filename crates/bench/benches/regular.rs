//! E8: Theorem 3 — the regular case runs in O(n t); wall-clock scaling
//! on chains, trees, grids, and random DAGs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rq_bench::{prepare, run_strategy, StrategyKind};
use rq_workloads::graphs;

fn bench_regular(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem3_regular");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let prepared = prepare(&graphs::chain(n));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |b, _| {
            b.iter(|| run_strategy(&prepared, StrategyKind::Ours, None))
        });
    }
    for depth in [6usize, 8, 10] {
        let prepared = prepare(&graphs::binary_tree(depth));
        group.bench_with_input(BenchmarkId::new("btree", depth), &depth, |b, _| {
            b.iter(|| run_strategy(&prepared, StrategyKind::Ours, None))
        });
    }
    for w in [8usize, 16, 32] {
        let prepared = prepare(&graphs::grid(w, w));
        group.bench_with_input(BenchmarkId::new("grid", w), &w, |b, _| {
            b.iter(|| run_strategy(&prepared, StrategyKind::Ours, None))
        });
    }
    for layers in [8usize, 16, 32] {
        let prepared = prepare(&graphs::layered_dag(layers, 8, 0.3, 42));
        group.bench_with_input(BenchmarkId::new("dag", layers), &layers, |b, _| {
            b.iter(|| run_strategy(&prepared, StrategyKind::Ours, None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_regular);
criterion_main!(benches);
