//! E3: Figure 8 — cyclic same generation with the m·n guard, sweeping
//! the cycle lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::prepare;
use rq_engine::{evaluate_with_cyclic_guard, EvalOptions};
use rq_workloads::fig8;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    for (m, n) in [(3, 5), (5, 7), (7, 9), (9, 11)] {
        let prepared = prepare(&fig8::cyclic(m, n));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("m{m}_n{n}")),
            &(m, n),
            |b, _| {
                b.iter(|| {
                    evaluate_with_cyclic_guard(
                        &prepared.system,
                        &prepared.db,
                        prepared.pred,
                        prepared.source_const,
                        &EvalOptions::default(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
