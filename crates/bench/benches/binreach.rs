//! E16: the simple §4 bin transformation (whole-tuple nodes, no binding
//! propagation) vs the full pipeline, on a same-generation database that
//! grows away from the query constant.  The simple transformation
//! "simulates the naive bottom-up evaluation" and must pay for every
//! fact; the binding-propagating pipeline pays only for the reachable
//! neighborhood.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_baselines::bin_reach;
use rq_datalog::{Database, Query};
use rq_engine::EvalOptions;

fn sg_with_irrelevant_components(n: usize) -> rq_datalog::Program {
    let mut src = String::from(
        "sg(X,Y) :- flat(X,Y).\n\
         sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
         up(a,a1). flat(a1,b1). down(b1,b).\n",
    );
    for i in 0..n {
        src.push_str(&format!(
            "up(u{i},v{i}). flat(v{i},w{i}). down(w{i},x{i}).\n"
        ));
    }
    rq_datalog::parse_program(&src).unwrap()
}

fn bench_binreach(c: &mut Criterion) {
    let mut group = c.benchmark_group("binreach_vs_pipeline");
    group.sample_size(10);
    for n in [50usize, 100, 200, 400] {
        let program = sg_with_irrelevant_components(n);
        group.bench_with_input(BenchmarkId::new("simple_bin", n), &n, |b, _| {
            let mut p = program.clone();
            let db = Database::from_program(&p);
            let query = Query::parse(&mut p, "sg(a, Y)").unwrap();
            b.iter(|| bin_reach(&p, &db, &query).unwrap().answers.len())
        });
        group.bench_with_input(BenchmarkId::new("pipeline", n), &n, |b, _| {
            let mut p = program.clone();
            b.iter(|| {
                recursive_queries::solve_with(&mut p, "sg(a, Y)", &EvalOptions::default())
                    .unwrap()
                    .answers
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binreach);
criterion_main!(benches);
