//! E1: wall-clock version of the §3 comparison table — all five
//! strategies on the three Figure 7 samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_bench::{prepare, run_strategy, StrategyKind};
use rq_workloads::{fig7, Workload};

fn bench_table1(c: &mut Criterion) {
    for (sample, generator) in [
        ("fig7a", fig7::sample_a as fn(usize) -> Workload),
        ("fig7b", fig7::sample_b as fn(usize) -> Workload),
        ("fig7c", fig7::sample_c as fn(usize) -> Workload),
    ] {
        let mut group = c.benchmark_group(format!("table1/{sample}"));
        group.sample_size(10);
        for n in [64usize, 128, 256] {
            let prepared = prepare(&generator(n));
            for strategy in StrategyKind::TABLE1 {
                group.bench_with_input(BenchmarkId::new(strategy.label(), n), &n, |b, _| {
                    b.iter(|| run_strategy(&prepared, strategy, None))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
