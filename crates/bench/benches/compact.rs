//! Ablation: ε-compacted machines vs plain Thompson machines.
//!
//! DESIGN.md calls out that every `id` transition of `M(e_p)` costs one
//! graph node per constant that flows through it.  This bench measures
//! the end-to-end effect of [`rq_automata::compact`] on a union-heavy
//! regular program and on the linear same-generation program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_common::ConstValue;
use rq_datalog::Database;
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};

fn union_heavy_program(n: usize) -> rq_datalog::Program {
    let mut src = String::from(
        "r(X,Y) :- a(X,Y).\n\
         r(X,Y) :- b(X,Y).\n\
         r(X,Y) :- c(X,Y).\n\
         r(X,Z) :- a(X,Y), r(Y,Z).\n",
    );
    for i in 0..n {
        src.push_str(&format!("a(v{}, v{}).\n", i, i + 1));
        src.push_str(&format!("b(v{i}, w{i}).\n"));
        src.push_str(&format!("c(w{i}, v{i}).\n"));
    }
    rq_datalog::parse_program(&src).unwrap()
}

fn bench_compact(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction_ablation");
    group.sample_size(20);
    for n in [100usize, 400, 1600] {
        let program = union_heavy_program(n);
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let r = program.pred_by_name("r").unwrap();
        let v0 = program.consts.get(&ConstValue::Str("v0".into())).unwrap();
        group.bench_with_input(BenchmarkId::new("plain_thompson", n), &n, |b, _| {
            let source = EdbSource::new(&db);
            let ev = Evaluator::new(&system, &source);
            b.iter(|| ev.evaluate(r, v0, &EvalOptions::default()).answers.len())
        });
        group.bench_with_input(BenchmarkId::new("compacted", n), &n, |b, _| {
            let source = EdbSource::new(&db);
            let ev = Evaluator::new_compacted(&system, &source);
            b.iter(|| ev.evaluate(r, v0, &EvalOptions::default()).answers.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compact);
criterion_main!(benches);
