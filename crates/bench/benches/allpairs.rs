//! E13: all-pairs queries `p(X,Y)` — per-source evaluation vs Tarjan
//! strong-component sharing, on cycles (worst case for per-source).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_datalog::Database;
use rq_engine::{all_pairs_per_source, all_pairs_scc, EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};

fn cycle_program(n: usize) -> rq_datalog::Program {
    let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
    for i in 0..n {
        src.push_str(&format!("e(v{}, v{}).\n", i, (i + 1) % n));
    }
    rq_datalog::parse_program(&src).unwrap()
}

fn bench_allpairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("allpairs");
    group.sample_size(10);
    for n in [16usize, 32, 64] {
        let program = cycle_program(n);
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        group.bench_with_input(BenchmarkId::new("per_source", n), &n, |b, _| {
            b.iter(|| {
                let source = EdbSource::new(&db);
                let ev = Evaluator::new(&system, &source);
                all_pairs_per_source(&ev, &source, tc, &EvalOptions::default())
                    .pairs
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("scc_shared", n), &n, |b, _| {
            b.iter(|| {
                let source = EdbSource::new(&db);
                all_pairs_scc(&system, &source, tc, &EvalOptions::default())
                    .pairs
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allpairs);
criterion_main!(benches);
