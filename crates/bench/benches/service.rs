//! Service throughput across three dimensions:
//!
//! * **batch vs sequential** — `query_batch` fan-out against a
//!   one-query-at-a-time loop over the same service;
//! * **warm vs cold epoch** — with the epoch-scoped evaluation context
//!   shared (`share_epoch_context: true`, machine/probe memos populated
//!   by the first flight of the batch) against per-query re-derivation
//!   (`share_epoch_context: false`, the pre-context behavior);
//! * **worker count** — 1/2/4/8 batch threads;
//! * **tracing armed vs off** — `sequential_warm_traced` re-runs the
//!   sequential loop with a thread-local trace buffer armed, so the
//!   span-capture overhead (vs the disarmed no-op checks every query
//!   pays) is a measured number, not a guess.  Sequential is the right
//!   vehicle: it evaluates on the caller thread, where the buffer
//!   lives; batch workers would record nothing.
//!
//! All service configurations run with result memoization off, so they
//! measure evaluation (through or without the context), not the result
//! cache.  `batch_memoized` is the steady state where the result cache
//! serves repeats.
//!
//! Besides the criterion groups, the bench writes `BENCH_service.json`
//! at the workspace root with best-of-N throughput numbers for the key
//! configurations (including the flights §4 workload), so the perf
//! trajectory is tracked across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rq_bench::{best_of, BenchSummary};
use rq_common::Const;
use rq_engine::{cyclic_iteration_bound, EdbSource, EvalOptions, Evaluator};
use rq_service::{QueryService, QuerySpec, ServiceConfig, ServiceError};
use rq_workloads::{fig8, flights, graphs, Workload};

/// Bound-free point queries from every constant of the workload.
fn point_queries(workload: &Workload) -> Vec<QuerySpec> {
    let pred_name = workload.query.split('(').next().unwrap().trim();
    let pred = workload.program.pred_by_name(pred_name).unwrap();
    (0..workload.program.consts.len())
        .map(|i| QuerySpec::bound_free(pred, Const::from_index(i)))
        .collect()
}

fn config(threads: usize, share_epoch_context: bool) -> ServiceConfig {
    ServiceConfig {
        threads,
        eval_threads: threads,
        share_epoch_context,
        memoize_results: false,
        ..ServiceConfig::default()
    }
}

fn bench_service(c: &mut Criterion) {
    for workload in [fig8::cyclic(7, 9), graphs::layered_dag(6, 30, 0.35, 42)] {
        let queries = point_queries(&workload);
        let mut group = c.benchmark_group(format!("service_{}", workload.name));
        group.sample_size(10);
        group.throughput(Throughput::Elements(queries.len() as u64));

        // Baseline: one plan, one thread, plain Evaluator loop with the
        // same cyclic guard the service applies.
        let prepared = rq_bench::prepare(&workload);
        group.bench_function("single_thread_loop", |b| {
            let source = EdbSource::new(&prepared.db);
            let evaluator = Evaluator::new(&prepared.system, &source);
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    let constant = q.bound_values()[0];
                    let options = EvalOptions {
                        max_iterations: cyclic_iteration_bound(
                            &prepared.system,
                            &prepared.db,
                            q.pred,
                            constant,
                        )
                        .map(|b| b + 1),
                        ..EvalOptions::default()
                    };
                    total += evaluator.evaluate(q.pred, constant, &options).answers.len();
                }
                total
            })
        });

        // Sequential serving loop (one query at a time, warm context).
        let sequential = QueryService::with_config(workload.program.clone(), config(1, true));
        group.bench_function("sequential_warm", |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|q| sequential.query(q).unwrap().rows.len())
                    .sum::<usize>()
            })
        });

        // Same loop with a trace armed: every query's span tree is
        // captured (and discarded), bounding what `"trace": true` or a
        // slow-query log costs on top of the disarmed path above.
        group.bench_function("sequential_warm_traced", |b| {
            b.iter(|| {
                rq_common::obs::trace_start();
                let total = queries
                    .iter()
                    .map(|q| sequential.query(q).unwrap().rows.len())
                    .sum::<usize>();
                let spans = rq_common::obs::trace_finish();
                (total, spans.len())
            })
        });

        let serve_queries: Vec<QuerySpec> = queries.clone();
        for threads in [1usize, 2, 4, 8] {
            // Cold epoch: every query re-derives its traversal state.
            let cold = QueryService::with_config(workload.program.clone(), config(threads, false));
            group.bench_with_input(BenchmarkId::new("batch_cold", threads), &threads, |b, _| {
                b.iter(|| cold.query_batch(&serve_queries))
            });
            // Warm epoch: the batch shares the epoch context (the
            // first criterion warm-up flight populates it).
            let warm = QueryService::with_config(workload.program.clone(), config(threads, true));
            group.bench_with_input(BenchmarkId::new("batch_warm", threads), &threads, |b, _| {
                b.iter(|| warm.query_batch(&serve_queries))
            });
        }

        let memoized = QueryService::with_config(
            workload.program.clone(),
            ServiceConfig {
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        group.bench_function("batch_memoized", |b| {
            b.iter(|| memoized.query_batch(&serve_queries))
        });
        group.finish();
    }

    // The JSON summary sweep runs only on unfiltered invocations: a
    // `cargo bench ... -- <filter>` run is re-measuring one group and
    // must not spend minutes on the full sweep nor overwrite the
    // committed BENCH_service.json with partial-context numbers.
    let filtered = std::env::args()
        .skip(1)
        .any(|a| !a.starts_with('-') && a != "--bench");
    if !filtered {
        write_service_summary();
    }
}

/// Best-of-N measurements of the key configurations →
/// `BENCH_service.json`.  Covers the §3 point-query workloads above
/// plus the §4 flights serving workload (the ISSUE's warm-batch
/// target), each as cold-vs-warm batch pairs.
fn write_service_summary() {
    let mut summary = BenchSummary::new("service");
    let runs = 5;

    // §3 point queries on the layered DAG.
    let dag = graphs::layered_dag(6, 30, 0.35, 42);
    let dag_queries = point_queries(&dag);
    for (name, share) in [("dag_batch_cold_t4", false), ("dag_batch_warm_t4", true)] {
        let service = QueryService::with_config(dag.program.clone(), config(4, share));
        let best = best_of(runs, || {
            assert!(service
                .query_batch(&dag_queries)
                .into_iter()
                .all(|r| r.is_ok()));
        });
        summary.add(name, dag_queries.len() as u64, best);
    }

    // Cold-path scaling: the same batch shape at three graph scales,
    // all cold-epoch (no shared context), so the per-scale trajectory
    // of the raw traversal path — the CSR/columnar beneficiary — is a
    // committed number rather than a single point.
    for (name, layers, width) in [
        ("dag_small_batch_cold_t4", 4usize, 15usize),
        ("dag_medium_batch_cold_t4", 6, 30),
        ("dag_large_batch_cold_t4", 8, 60),
    ] {
        let scaled = graphs::layered_dag(layers, width, 0.35, 42);
        let scaled_queries = point_queries(&scaled);
        let service = QueryService::with_config(scaled.program.clone(), config(4, false));
        let best = best_of(runs, || {
            assert!(service
                .query_batch(&scaled_queries)
                .into_iter()
                .all(|r| r.is_ok()));
        });
        summary.add(name, scaled_queries.len() as u64, best);
    }

    // §4 flights batches: every (airport, departure) point query.
    let network = flights::network(24, 6, 42);
    let texts = flights::serve_queries(24, 6);
    for (name, share) in [
        ("flights24_batch_cold_t4", false),
        ("flights24_batch_warm_t4", true),
    ] {
        let service = QueryService::with_config(network.program.clone(), config(4, share));
        let specs: Vec<QuerySpec> = texts
            .iter()
            .map(|t| service.parse_query(t).unwrap())
            .collect();
        let best = best_of(runs, || {
            let batch = service.query_batch(&specs);
            assert!(batch
                .iter()
                .all(|r| !matches!(r, Err(ServiceError::Plan(_)))));
        });
        summary.add(name, specs.len() as u64, best);
    }

    // Incremental maintenance: before each timed run, publish a
    // genuinely new flight (dirtying the §4 plan's read-set), then
    // time the **first batch on the freshly published epoch**.  With
    // delta repair the publish patched the warm probe space and
    // machine memos in place, so that first batch runs at warm speed;
    // without it, every post-publish batch would pay the cold number
    // above.  (The publish itself stays outside the timer: repair cost
    // is ingest-side and paid once per publish, not per batch.)
    {
        let service = QueryService::with_config(network.program.clone(), config(4, true));
        let specs: Vec<QuerySpec> = texts
            .iter()
            .map(|t| service.parse_query(t).unwrap())
            .collect();
        service.query_batch(&specs); // warm the epoch being repaired
        let mut best = std::time::Duration::MAX;
        for tick in 0..=runs as i64 {
            let dt = 1200 + tick * 60; // late departures: all fresh facts
            service
                .ingest(&format!(
                    "flight(p0, {dt}, p1, {arr}). is_deptime({dt}).",
                    arr = dt + 90
                ))
                .unwrap();
            let start = std::time::Instant::now();
            let batch = service.query_batch(&specs);
            let elapsed = start.elapsed();
            assert!(batch
                .iter()
                .all(|r| !matches!(r, Err(ServiceError::Plan(_)))));
            if tick > 0 {
                best = best.min(elapsed); // first round is the warm-up
            }
        }
        let report = service.stats_report();
        assert!(
            report.delta_repairs >= runs as u64 && report.delta_fallback_cold == 0,
            "every publish must repair the warm cnx plan in place: {report:?}"
        );
        summary.add(
            "flights24_batch_after_small_ingest_t4",
            specs.len() as u64,
            best,
        );
    }

    // The §3 equivalent on the layered DAG: each round ingests one
    // fresh edge out of the root and times the first point-query batch
    // served through the repaired chain-machine memos.
    {
        let service = QueryService::with_config(dag.program.clone(), config(4, true));
        service.query_batch(&dag_queries);
        let mut best = std::time::Duration::MAX;
        for tick in 0..=runs {
            service.ingest(&format!("e(l0_0, fresh{tick}).")).unwrap();
            let start = std::time::Instant::now();
            let batch = service.query_batch(&dag_queries);
            let elapsed = start.elapsed();
            assert!(batch.into_iter().all(|r| r.is_ok()));
            if tick > 0 {
                best = best.min(elapsed);
            }
        }
        let report = service.stats_report();
        assert!(
            report.delta_repairs >= runs as u64 && report.delta_fallback_cold == 0,
            "every publish must repair the warm tc plan in place: {report:?}"
        );
        summary.add(
            "dag_batch_after_small_ingest_t4",
            dag_queries.len() as u64,
            best,
        );
    }

    // Sequential flights serving, warm context (batch-vs-sequential).
    let sequential = QueryService::with_config(network.program.clone(), config(1, true));
    let specs: Vec<QuerySpec> = texts
        .iter()
        .map(|t| sequential.parse_query(t).unwrap())
        .collect();
    let best = best_of(runs, || {
        for q in &specs {
            sequential.query(q).unwrap();
        }
    });
    summary.add("flights24_sequential_warm", specs.len() as u64, best);

    // The same loop with span capture armed, so the observability
    // overhead shows up in the committed trajectory.
    let best = best_of(runs, || {
        rq_common::obs::trace_start();
        for q in &specs {
            sequential.query(q).unwrap();
        }
        rq_common::obs::trace_finish();
    });
    summary.add("flights24_sequential_warm_traced", specs.len() as u64, best);

    // Publish-time compact-store construction over the flights network:
    // each element is one shard's columnar+CSR build on a fresh
    // database clone (the dominant new cost an ingest-heavy deployment
    // pays for the CSR read path).
    {
        let probe = rq_datalog::Database::from_program(&network.program);
        let shards = probe.build_compact_stores() as u64;
        // Fresh databases prepared outside the timed closure, so only
        // the store construction itself is measured (`best_of` runs
        // one warm-up call plus `runs` samples).
        let mut fresh: Vec<rq_datalog::Database> = (0..runs + 1)
            .map(|_| rq_datalog::Database::from_program(&network.program))
            .collect();
        let best = best_of(runs, || {
            let db = fresh.pop().expect("one database per timed run");
            assert_eq!(db.build_compact_stores() as u64, shards);
        });
        summary.add("flights24_csr_build", shards.max(1), best);
    }

    if let Some(speedup) = summary.speedup("flights24_batch_cold_t4", "flights24_batch_warm_t4") {
        eprintln!("flights24 warm-vs-cold batch speedup: {speedup:.2}x");
    }
    if let Some(speedup) = summary.speedup(
        "flights24_batch_cold_t4",
        "flights24_batch_after_small_ingest_t4",
    ) {
        eprintln!("flights24 repaired-after-ingest vs cold batch speedup: {speedup:.2}x");
    }
    if let Some(ratio) = summary.speedup(
        "flights24_sequential_warm_traced",
        "flights24_sequential_warm",
    ) {
        eprintln!("flights24 sequential trace-capture overhead: {ratio:.2}x");
    }
    summary.write();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
