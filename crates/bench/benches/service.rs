//! Service throughput: a batch of point queries answered by
//! `rq-service` with growing worker counts, against the single-threaded
//! `Evaluator` loop, on the Figure 8 cyclic workload and a layered-DAG
//! binary-reachability workload.
//!
//! `batch/N` runs with result memoization off, so it measures raw
//! parallel traversal over one shared snapshot; `batch_memoized`
//! measures the steady state where the result cache serves repeats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rq_common::Const;
use rq_engine::{cyclic_iteration_bound, EdbSource, EvalOptions, Evaluator};
use rq_service::{QueryService, QuerySpec, ServiceConfig};
use rq_workloads::{fig8, graphs, Workload};

/// Bound-free point queries from every constant of the workload.
fn point_queries(workload: &Workload) -> Vec<QuerySpec> {
    let pred_name = workload.query.split('(').next().unwrap().trim();
    let pred = workload.program.pred_by_name(pred_name).unwrap();
    (0..workload.program.consts.len())
        .map(|i| QuerySpec::bound_free(pred, Const::from_index(i)))
        .collect()
}

fn bench_service(c: &mut Criterion) {
    for workload in [fig8::cyclic(7, 9), graphs::layered_dag(6, 30, 0.35, 42)] {
        let queries = point_queries(&workload);
        let mut group = c.benchmark_group(format!("service_{}", workload.name));
        group.sample_size(10);
        group.throughput(Throughput::Elements(queries.len() as u64));

        // Baseline: one plan, one thread, plain Evaluator loop with the
        // same cyclic guard the service applies.
        let prepared = rq_bench::prepare(&workload);
        group.bench_function("single_thread_loop", |b| {
            let source = EdbSource::new(&prepared.db);
            let evaluator = Evaluator::new(&prepared.system, &source);
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    let constant = q.bound_values()[0];
                    let options = EvalOptions {
                        max_iterations: cyclic_iteration_bound(
                            &prepared.system,
                            &prepared.db,
                            q.pred,
                            constant,
                        )
                        .map(|b| b + 1),
                        ..EvalOptions::default()
                    };
                    total += evaluator.evaluate(q.pred, constant, &options).answers.len();
                }
                total
            })
        });

        let serve_queries: Vec<QuerySpec> = queries.clone();
        for threads in [1usize, 2, 4, 8] {
            let service = QueryService::with_config(
                workload.program.clone(),
                ServiceConfig {
                    threads,
                    memoize_results: false,
                    ..ServiceConfig::default()
                },
            );
            group.bench_with_input(BenchmarkId::new("batch", threads), &threads, |b, _| {
                b.iter(|| service.query_batch(&serve_queries))
            });
        }

        let memoized = QueryService::with_config(
            workload.program.clone(),
            ServiceConfig {
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        group.bench_function("batch_memoized", |b| {
            b.iter(|| memoized.query_batch(&serve_queries))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
