//! Publish cost for the persistent predicate-sharded store: ingesting a
//! fixed delta (one fact into one relation) and publishing the next
//! epoch, as the *rest* of the database grows.
//!
//! With whole-database copy-on-write this scaled O(total tuples); with
//! `Arc`-shared shards over persistent chunk storage it should stay
//! ~flat — the delta detaches one shard, bumps refcounts for untouched
//! chunks, and every other shard is shared by pointer:
//!
//! * `ingest_fixed_delta/<total>` — one fresh fact into a small `hot`
//!   relation while cold relations grow the database around it.
//! * `ingest_into_large_relation/<size>` — one fresh fact into one
//!   *large* relation; within-shard persistence (tail-chunk COW plus
//!   path-copied dedup/index tries) keeps this from degrading to a
//!   deep relation copy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_service::QueryService;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh-constant ticker so every ingested fact is a true delta.
static FRESH: AtomicU64 = AtomicU64::new(0);

fn chain_program(pred: &str, edges: usize) -> String {
    let mut src = format!("tc(X,Y) :- {pred}(X,Y).\ntc(X,Z) :- {pred}(X,Y), tc(Y,Z).\n");
    for i in 0..edges {
        writeln!(src, "{pred}(h{i}, h{}).", i + 1).unwrap();
    }
    src
}

fn bench_fixed_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_fixed_delta");
    group.sample_size(10);
    // Same hot relation (64 edges) everywhere; the cold bulk grows the
    // total database size by ~16x per step.
    for (cold_relations, facts_each) in [(4, 250), (16, 1_000), (64, 4_000)] {
        let mut src = chain_program("hot", 64);
        for r in 0..cold_relations {
            for i in 0..facts_each {
                writeln!(src, "cold{r}(c{r}_{i}, c{r}_{}).", i + 1).unwrap();
            }
        }
        let service = QueryService::from_source(&src).unwrap();
        let total = service.snapshot().db().total_tuples();
        group.bench_with_input(BenchmarkId::from_parameter(total), &total, |b, _| {
            b.iter(|| {
                let n = FRESH.fetch_add(1, Ordering::Relaxed);
                service
                    .ingest(&format!("hot(fx{n}, fy{n})."))
                    .expect("ingest")
                    .epoch()
            })
        });
    }
    group.finish();
}

fn bench_large_dirty_relation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest_into_large_relation");
    group.sample_size(10);
    for size in [1_000usize, 8_000, 64_000] {
        let service = QueryService::from_source(&chain_program("e", size)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| {
                let n = FRESH.fetch_add(1, Ordering::Relaxed);
                service
                    .ingest(&format!("e(gx{n}, gy{n})."))
                    .expect("ingest")
                    .epoch()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fixed_delta, bench_large_dirty_relation);
criterion_main!(benches);
