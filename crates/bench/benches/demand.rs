//! E14: demand-driven traversal vs the Hunt et al. preconstructed graph
//! on a database dominated by facts irrelevant to the query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_baselines::HuntGraph;
use rq_common::{ConstValue, Counters};
use rq_datalog::Database;
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, Lemma1Options};

fn program_with_irrelevant_tail(n: usize) -> rq_datalog::Program {
    let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b).\n");
    for i in 0..n {
        src.push_str(&format!("e(u{}, u{}).\n", i, i + 1));
    }
    rq_datalog::parse_program(&src).unwrap()
}

fn bench_demand(c: &mut Criterion) {
    let mut group = c.benchmark_group("demand_vs_preconstruction");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let program = program_with_irrelevant_tail(n);
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        group.bench_with_input(BenchmarkId::new("ours_demand", n), &n, |b, _| {
            b.iter(|| {
                let source = EdbSource::new(&db);
                Evaluator::new(&system, &source)
                    .evaluate(tc, a, &EvalOptions::default())
                    .answers
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("hunt_preconstruct", n), &n, |b, _| {
            b.iter(|| {
                let graph = HuntGraph::build(&db, &system.rhs[&tc]);
                let mut counters = Counters::new();
                graph.query(a, &mut counters).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_demand);
criterion_main!(benches);
