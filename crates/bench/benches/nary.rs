//! The §4 n-ary serving path end to end: the flights database at
//! several scales, queried through `rq-service`'s generalized
//! `QuerySpec` pipeline (adorn → transform → Lemma 1 → traversal over
//! virtual relations, plan cached per adornment), against the one-shot
//! `rq_adorn::answer_query` pipeline that recompiles per query, and
//! the QSQ baseline.
//!
//! `batch_cold` runs with result memoization *and* epoch-context
//! sharing off (raw per-query §4 traversal over one shared snapshot —
//! the pre-context behavior); `batch_warm` keeps memoization off but
//! shares the epoch context, so the batch pays each virtual-predicate
//! probe once per epoch; `batch_memoized` is the steady state where
//! the result cache serves repeats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rq_baselines::qsq;
use rq_datalog::{Database, Query};
use rq_engine::EvalOptions;
use rq_service::{QueryService, QuerySpec, ServiceConfig};
use rq_workloads::flights;

fn bench_nary(c: &mut Criterion) {
    for (airports, per, seed) in [(6usize, 3usize, 42u64), (12, 4, 42), (24, 6, 42)] {
        let workload = flights::network(airports, per, seed);
        let texts = flights::serve_queries(airports, per);
        let mut group = c.benchmark_group(format!("nary_{}", workload.name));
        group.sample_size(10);
        group.throughput(Throughput::Elements(texts.len() as u64));

        // Baseline 1: the one-shot §4 pipeline, recompiled per query.
        group.bench_function("adorn_one_shot", |b| {
            let mut program = workload.program.clone();
            let queries: Vec<Query> = texts
                .iter()
                .map(|t| Query::parse(&mut program, t).unwrap())
                .collect();
            let db = Database::from_program(&program);
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += rq_adorn::answer_query(&program, &db, q, &EvalOptions::default())
                        .unwrap()
                        .rows
                        .len();
                }
                total
            })
        });

        // Baseline 2: QSQ over the original n-ary program.
        group.bench_function("qsq", |b| {
            let mut program = workload.program.clone();
            let queries: Vec<Query> = texts
                .iter()
                .map(|t| Query::parse(&mut program, t).unwrap())
                .collect();
            b.iter(|| {
                let mut total = 0usize;
                for q in &queries {
                    total += qsq(&program, q).unwrap().rows.len();
                }
                total
            })
        });

        // The service: plan cached per adornment, parallel batch,
        // cold (per-query re-derivation) vs warm (shared epoch
        // context) epochs.
        for threads in [1usize, 4] {
            for (label, share) in [("batch_cold", false), ("batch_warm", true)] {
                let service = QueryService::with_config(
                    workload.program.clone(),
                    ServiceConfig {
                        threads,
                        eval_threads: threads,
                        share_epoch_context: share,
                        memoize_results: false,
                        ..ServiceConfig::default()
                    },
                );
                let specs: Vec<QuerySpec> = texts
                    .iter()
                    .map(|t| service.parse_query(t).unwrap())
                    .collect();
                group.bench_with_input(BenchmarkId::new(label, threads), &threads, |b, _| {
                    b.iter(|| service.query_batch(&specs))
                });
            }
        }

        let memoized = QueryService::with_config(
            workload.program.clone(),
            ServiceConfig {
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        let specs: Vec<QuerySpec> = texts
            .iter()
            .map(|t| memoized.parse_query(t).unwrap())
            .collect();
        group.bench_function("batch_memoized", |b| {
            b.iter(|| memoized.query_batch(&specs))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_nary);
criterion_main!(benches);
