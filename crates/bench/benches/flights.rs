//! E10: the §4 flight-connection query — the full adorn + transform +
//! traverse pipeline against plain seminaive bottom-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rq_datalog::{Database, Query};
use rq_engine::EvalOptions;
use rq_workloads::flights;

fn bench_flights(c: &mut Criterion) {
    let mut group = c.benchmark_group("flights_section4");
    group.sample_size(10);
    for airports in [20usize, 40, 80] {
        let mut w = flights::network(airports, 4, 7);
        let query = Query::parse(&mut w.program, &w.query).unwrap();
        let db = Database::from_program(&w.program);
        group.bench_with_input(
            BenchmarkId::new("ours_demand_driven", airports),
            &airports,
            |b, _| {
                b.iter(|| {
                    rq_adorn::answer_query(&w.program, &db, &query, &EvalOptions::default())
                        .unwrap()
                        .rows
                        .len()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("seminaive_bottom_up", airports),
            &airports,
            |b, _| {
                b.iter(|| {
                    rq_datalog::seminaive_eval(&w.program)
                        .unwrap()
                        .db
                        .total_tuples()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flights);
criterion_main!(benches);
