//! Machine-readable bench summaries, persisted to `BENCH_<name>.json`
//! at the workspace root through the workspace's shared JSON encoder
//! ([`rq_common::json`] — no registry access, so no serde).  The file
//! is committed, so the perf trajectory is tracked across PRs instead
//! of evaporating with each bench run.

use rq_common::Json;
use std::time::Duration;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct SummaryEntry {
    /// Configuration name, e.g. `flights24_batch_warm_t4`.
    pub name: String,
    /// Work items (queries, tuples, …) per run.
    pub elements: u64,
    /// Best-of-N wall time for one run, in seconds.
    pub secs: f64,
}

impl SummaryEntry {
    /// Items per second.
    pub fn rate(&self) -> f64 {
        if self.secs > 0.0 {
            self.elements as f64 / self.secs
        } else {
            0.0
        }
    }
}

/// A named collection of measurements, serializable to JSON.
#[derive(Clone, Debug, Default)]
pub struct BenchSummary {
    /// Bench name (becomes `BENCH_<name>.json`).
    pub bench: String,
    entries: Vec<SummaryEntry>,
}

impl BenchSummary {
    /// Start an empty summary for `bench`.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            entries: Vec::new(),
        }
    }

    /// Record one configuration's best-of-N run time.
    pub fn add(&mut self, name: &str, elements: u64, best: Duration) {
        self.entries.push(SummaryEntry {
            name: name.to_string(),
            elements,
            secs: best.as_secs_f64(),
        });
    }

    /// The recorded entries.
    pub fn entries(&self) -> &[SummaryEntry] {
        &self.entries
    }

    /// Speedup of `fast` over `slow` (by wall time), when both exist.
    pub fn speedup(&self, slow: &str, fast: &str) -> Option<f64> {
        let find = |n: &str| self.entries.iter().find(|e| e.name == n);
        match (find(slow), find(fast)) {
            (Some(s), Some(f)) if f.secs > 0.0 => Some(s.secs / f.secs),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (via the shared
    /// [`rq_common::json`] encoder).
    pub fn to_json(&self) -> String {
        // Round to keep the committed file tidy: microsecond wall
        // times, one decimal of throughput.
        let round = |x: f64, digits: i32| {
            let scale = 10f64.powi(digits);
            (x * scale).round() / scale
        };
        Json::object([
            ("bench", Json::Str(self.bench.clone())),
            (
                "entries",
                Json::Array(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::object([
                                ("name", Json::Str(e.name.clone())),
                                ("elements", Json::Int(e.elements as i64)),
                                ("secs", Json::Float(round(e.secs, 6))),
                                ("per_sec", Json::Float(round(e.rate(), 1))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .encode_pretty()
    }

    /// Write `BENCH_<bench>.json` at the workspace root (two levels up
    /// from this crate's manifest), printing the path and any error to
    /// stderr; bench summaries must never fail the bench itself.
    pub fn write(&self) {
        let path = format!(
            "{}/../../BENCH_{}.json",
            env!("CARGO_MANIFEST_DIR"),
            self.bench
        );
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

/// Best-of-`runs` wall time of `f` (one warm-up run first).
pub fn best_of(runs: usize, mut f: impl FnMut()) -> Duration {
    f();
    let mut best = Duration::MAX;
    for _ in 0..runs.max(1) {
        let start = std::time::Instant::now();
        f();
        best = best.min(start.elapsed());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_and_speedup() {
        let mut s = BenchSummary::new("test");
        s.add("cold", 100, Duration::from_millis(200));
        s.add("warm", 100, Duration::from_millis(50));
        let json = s.to_json();
        assert!(json.contains("\"bench\": \"test\""));
        assert!(json.contains("\"name\": \"cold\""));
        assert!(json.contains("\"per_sec\": 2000.0"));
        assert!((s.speedup("cold", "warm").unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(s.speedup("cold", "missing"), None);
    }

    #[test]
    fn json_escapes_strings() {
        let mut s = BenchSummary::new("esc");
        s.add("a\"b\\c", 1, Duration::from_millis(1));
        assert!(s.to_json().contains("a\\\"b\\\\c"));
    }

    #[test]
    fn best_of_runs_at_least_once() {
        let mut n = 0;
        let d = best_of(3, || n += 1);
        assert_eq!(n, 4); // warm-up + 3 samples
        assert!(d <= Duration::from_secs(1));
    }
}
