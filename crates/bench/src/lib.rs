//! Shared helpers for the benchmark harness: one uniform way to run
//! every strategy on a [`Workload`] and collect its unit-cost counters.
//!
//! The experiment-to-code map lives in `DESIGN.md`; the measured results
//! and their comparison with the paper in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rq_baselines::{counting, henschen_naqvi, magic_sets, reverse_counting};
use rq_common::{Const, ConstValue, Counters, Pred};
use rq_datalog::{Database, Program, Query};
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, EqSystem, Lemma1Options};
use rq_workloads::Workload;

/// A workload prepared for repeated strategy runs.
pub struct Prepared {
    /// The program.
    pub program: Program,
    /// Its extensional database.
    pub db: Database,
    /// The Lemma 1 equation system.
    pub system: EqSystem,
    /// The queried (derived) predicate.
    pub pred: Pred,
    /// The query's bound constant (first argument).
    pub source_const: Const,
    /// The query text.
    pub query: String,
}

/// Prepare a workload whose query has the form `p(a, Y)`.
pub fn prepare(w: &Workload) -> Prepared {
    let program = w.program.clone();
    let db = Database::from_program(&program);
    let system = lemma1(&program, &Lemma1Options::default())
        .expect("workload programs are binary-chain")
        .system;
    let query_pred_name = w.query.split('(').next().unwrap().trim();
    let pred = program.pred_by_name(query_pred_name).unwrap();
    let src_name = w
        .query
        .split('(')
        .nth(1)
        .unwrap()
        .split(',')
        .next()
        .unwrap()
        .trim();
    let source_const = program
        .consts
        .get(&ConstValue::Str(src_name.into()))
        .or_else(|| {
            src_name
                .parse::<i64>()
                .ok()
                .and_then(|i| program.consts.get(&ConstValue::Int(i)))
        })
        .expect("query constant is interned");
    Prepared {
        program,
        db,
        system,
        pred,
        source_const,
        query: w.query.clone(),
    }
}

/// Strategies comparable on `p(a, Y)` binary-chain workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// The paper's graph-traversal engine.
    Ours,
    /// Henschen–Naqvi.
    HenschenNaqvi,
    /// Magic sets + seminaive.
    MagicSets,
    /// The counting method.
    Counting,
    /// The reverse-counting method.
    ReverseCounting,
    /// Plain seminaive bottom-up (no binding propagation).
    Seminaive,
}

impl StrategyKind {
    /// All strategies, in the §3 table's column order.
    pub const TABLE1: [StrategyKind; 5] = [
        StrategyKind::HenschenNaqvi,
        StrategyKind::MagicSets,
        StrategyKind::Counting,
        StrategyKind::ReverseCounting,
        StrategyKind::Ours,
    ];

    /// Short column label.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Ours => "ours",
            StrategyKind::HenschenNaqvi => "HN",
            StrategyKind::MagicSets => "magic",
            StrategyKind::Counting => "counting",
            StrategyKind::ReverseCounting => "rev-count",
            StrategyKind::Seminaive => "seminaive",
        }
    }
}

/// Run one strategy; returns `(answer count, counters)`.  `max_levels`
/// bounds iteration for cyclic data.
pub fn run_strategy(
    p: &Prepared,
    strategy: StrategyKind,
    max_levels: Option<u64>,
) -> (usize, Counters) {
    match strategy {
        StrategyKind::Ours => {
            let source = EdbSource::new(&p.db);
            let ev = Evaluator::new(&p.system, &source);
            let out = ev.evaluate(
                p.pred,
                p.source_const,
                &EvalOptions {
                    max_iterations: max_levels,
                    ..EvalOptions::default()
                },
            );
            (out.answers.len(), out.counters)
        }
        StrategyKind::HenschenNaqvi => {
            let out = henschen_naqvi(&p.system, &p.db, p.pred, p.source_const, max_levels);
            (out.answers.len(), out.counters)
        }
        StrategyKind::Counting => {
            let out = counting(&p.system, &p.db, p.pred, p.source_const, max_levels);
            (out.answers.len(), out.counters)
        }
        StrategyKind::ReverseCounting => {
            let out = reverse_counting(&p.system, &p.db, p.pred, p.source_const, max_levels);
            (out.answers.len(), out.counters)
        }
        StrategyKind::MagicSets => {
            let mut program = p.program.clone();
            let q = Query::parse(&mut program, &p.query).unwrap();
            let out = magic_sets(&program, &q).unwrap();
            (out.rows.len(), out.counters)
        }
        StrategyKind::Seminaive => {
            let res = rq_datalog::seminaive_eval(&p.program).unwrap();
            let count = res
                .db
                .relation(p.pred)
                .iter()
                .filter(|t| t[0] == p.source_const)
                .count();
            (count, res.counters)
        }
    }
}

pub mod summary;
pub use summary::{best_of, BenchSummary, SummaryEntry};

/// Least-squares slope of log(y) on log(x) — the growth exponent.
pub fn loglog_slope(points: &[(usize, f64)]) -> f64 {
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let lx = (x as f64).ln();
        let ly = y.max(1.0).ln();
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_workloads::fig7;

    #[test]
    fn all_table1_strategies_run_and_agree() {
        let p = prepare(&fig7::sample_c(12));
        let (base_count, _) = run_strategy(&p, StrategyKind::Ours, None);
        for s in StrategyKind::TABLE1 {
            let (count, counters) = run_strategy(&p, s, None);
            assert_eq!(count, base_count, "{}", s.label());
            assert!(counters.total_work() > 0, "{}", s.label());
        }
    }

    #[test]
    fn slope_helper_fits_powers() {
        let lin: Vec<(usize, f64)> = vec![(10, 30.0), (20, 60.0), (40, 120.0)];
        assert!((loglog_slope(&lin) - 1.0).abs() < 1e-9);
        let quad: Vec<(usize, f64)> = vec![(10, 100.0), (20, 400.0), (40, 1600.0)];
        assert!((loglog_slope(&quad) - 2.0).abs() < 1e-9);
    }
}
