//! Regenerate every table and figure of the paper's evaluation as
//! operation-count tables (the paper reports asymptotic complexity under
//! a unit-cost tuple-retrieval model; we print the measured counts and
//! the fitted growth exponents).
//!
//! Usage: `paper_tables [table1|fig8|horner|demand|flights|theorem3|theorem4|allpairs|duplication|binreach|compact|minside|all] [--json]`

use rq_bench::{loglog_slope, prepare, run_strategy, StrategyKind};
use rq_common::ConstValue;
use rq_datalog::Database;
use rq_engine::{EdbSource, EvalOptions, Evaluator};
use rq_relalg::{lemma1, linear_decomposition, unroll, Lemma1Options};
use rq_workloads::{fig7, fig8, flights, graphs, Workload};

struct TableRow {
    table: String,
    label: String,
    values: Vec<(String, f64)>,
}

impl TableRow {
    /// Hand-rolled JSON (shape matches what `serde_json` used to emit
    /// for the derived `Serialize`); tuples serialize as two-element
    /// arrays.  No third-party JSON crate is available offline.
    fn to_json(&self) -> String {
        let values: Vec<String> = self
            .values
            .iter()
            .map(|(k, v)| format!("[{}, {}]", json_string(k), json_f64(*v)))
            .collect();
        format!(
            "{{\"table\": {}, \"label\": {}, \"values\": [{}]}}",
            json_string(&self.table),
            json_string(&self.label),
            values.join(", ")
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        "null".to_string()
    }
}

struct Report {
    json: bool,
    rows: Vec<TableRow>,
}

impl Report {
    fn section(&mut self, title: &str) {
        if !self.json {
            println!("\n=== {title} ===");
        }
    }

    fn row(&mut self, table: &str, label: &str, values: Vec<(String, f64)>) {
        if !self.json {
            let cells: Vec<String> = values.iter().map(|(k, v)| format!("{k}={v:.2}")).collect();
            println!("{label:<24} {}", cells.join("  "));
        }
        self.rows.push(TableRow {
            table: table.to_string(),
            label: label.to_string(),
            values,
        });
    }

    fn finish(self) {
        if self.json {
            let rows: Vec<String> = self
                .rows
                .iter()
                .map(|r| format!("  {}", r.to_json()))
                .collect();
            println!("[\n{}\n]", rows.join(",\n"));
        }
    }
}

const SIZES: [usize; 4] = [64, 128, 256, 512];

/// E1: the §3 comparison table — work counts and growth exponents for
/// the five strategies on the three Figure 7 samples.
fn table1(r: &mut Report) {
    r.section("Table 1 (§3): same generation on Figure 7 samples — growth exponents");
    for (label, generator) in [
        ("sample (a)", fig7::sample_a as fn(usize) -> Workload),
        ("sample (b)", fig7::sample_b as fn(usize) -> Workload),
        ("sample (c)", fig7::sample_c as fn(usize) -> Workload),
    ] {
        let mut values = Vec::new();
        for s in StrategyKind::TABLE1 {
            let points: Vec<(usize, f64)> = SIZES
                .iter()
                .map(|&n| {
                    let p = prepare(&generator(n));
                    let (_, counters) = run_strategy(&p, s, None);
                    (n, counters.total_work() as f64)
                })
                .collect();
            values.push((s.label().to_string(), loglog_slope(&points)));
        }
        r.row("table1", label, values);
    }
    if !r.json {
        println!("(paper: ours/counting O(n) on (a),(c); O(n^2) on (b); HN O(n^2) on (c))");
    }
}

/// E3: Figure 8 — iterations needed on cyclic data.
fn fig8_table(r: &mut Report) {
    r.section("Figure 8: cyclic data — iterations until the last answer vs m·n");
    for (m, n) in [(2, 3), (3, 4), (3, 5), (4, 5), (2, 4), (4, 6)] {
        let w = fig8::cyclic(m, n);
        let p = prepare(&w);
        let out = rq_engine::evaluate_with_cyclic_guard(
            &p.system,
            &p.db,
            p.pred,
            p.source_const,
            &EvalOptions {
                max_iterations: None,
                record_iterations: true,
                ..EvalOptions::default()
            },
        );
        let mut last = 0u64;
        let mut prev = 0u64;
        for (i, s) in out.iteration_stats.iter().enumerate() {
            if s.answers_so_far > prev {
                last = i as u64 + 1;
                prev = s.answers_so_far;
            }
        }
        r.row(
            "fig8",
            &format!("m={m} n={n}"),
            vec![
                ("answers".into(), out.answers.len() as f64),
                ("last_productive_iter".into(), last as f64),
                ("mn_bound".into(), (m * n) as f64),
            ],
        );
    }
}

/// E6: the Horner-style `sg_i` expression vs the flattened `sg'_i`
/// (paper: smaller by a factor of i).
fn horner(r: &mut Report) {
    r.section("Lemma 2 / Horner: size of sg_i vs flattened sg'_i (occurrence counts)");
    let program = rq_datalog::parse_program(
        "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\nflat(a,b).",
    )
    .unwrap();
    let system = rq_relalg::initial_system(&program).unwrap();
    let sg = program.pred_by_name("sg").unwrap();
    let (e0, e1, e2) = linear_decomposition(sg, &system.rhs[&sg]).unwrap();
    for i in [4usize, 8, 16, 32, 64] {
        let h = unroll(&system, sg, i).occurrence_count();
        let f = rq_relalg::flattened_linear(&e0, &e1, &e2, i - 1).occurrence_count();
        r.row(
            "horner",
            &format!("i={i}"),
            vec![
                ("sg_i".into(), h as f64),
                ("sg'_i".into(), f as f64),
                ("ratio".into(), f as f64 / h as f64),
            ],
        );
    }
}

/// E14: demand-driven construction vs Hunt et al. preconstruction.
fn demand(r: &mut Report) {
    r.section("Demand-driven vs preconstructed graph (Hunt et al.) — total work");
    for &n in &[100usize, 200, 400, 800] {
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b).\n");
        for i in 0..n {
            src.push_str(&format!("e(u{}, u{}).\n", i, i + 1));
        }
        let program = rq_datalog::parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let hunt = rq_baselines::HuntGraph::build(&db, &system.rhs[&tc]);
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let source = EdbSource::new(&db);
        let engine = Evaluator::new(&system, &source).evaluate(tc, a, &EvalOptions::default());
        r.row(
            "demand",
            &format!("n={n}"),
            vec![
                ("hunt_build".into(), hunt.build_counters.total_work() as f64),
                ("ours".into(), engine.counters.total_work() as f64),
            ],
        );
    }
}

/// E10: §4 binding propagation on the flight database.
fn flights_table(r: &mut Report) {
    r.section("§4 flights: facts consulted, demand-driven vs full bottom-up");
    for &airports in &[20usize, 40, 80, 160] {
        let mut w = flights::network(airports, 4, 7);
        let q = rq_datalog::Query::parse(&mut w.program, &w.query).unwrap();
        let db = Database::from_program(&w.program);
        let ans = rq_adorn::answer_query(&w.program, &db, &q, &EvalOptions::default()).unwrap();
        let bottom_up = rq_adorn::bottom_up_counters(&w.program);
        r.row(
            "flights",
            &format!("airports={airports}"),
            vec![
                (
                    "ours_tuples".into(),
                    ans.outcome.counters.tuples_retrieved as f64,
                ),
                ("seminaive_tuples".into(), bottom_up.tuples_retrieved as f64),
                ("answers".into(), ans.rows.len() as f64),
            ],
        );
    }
}

/// E8: Theorem 3 — regular case linearity across graph families.
fn theorem3(r: &mut Report) {
    r.section("Theorem 3 (regular case): growth exponent of work in database size");
    let families: Vec<(&str, Vec<Workload>)> = vec![
        ("chain", SIZES.iter().map(|&n| graphs::chain(n)).collect()),
        (
            "binary tree",
            [4usize, 5, 6, 7]
                .iter()
                .map(|&d| graphs::binary_tree(d))
                .collect(),
        ),
        (
            "grid",
            [8usize, 11, 16, 23]
                .iter()
                .map(|&w| graphs::grid(w, w))
                .collect(),
        ),
    ];
    for (label, ws) in families {
        let points: Vec<(usize, f64)> = ws
            .iter()
            .map(|w| {
                let p = prepare(w);
                let (_, counters) = run_strategy(&p, StrategyKind::Ours, None);
                (w.program.facts.len(), counters.total_work() as f64)
            })
            .collect();
        r.row(
            "theorem3",
            label,
            vec![("slope".into(), loglog_slope(&points))],
        );
    }
}

/// E9: Theorem 4 — O(h·n) in the linear case: fix h, sweep n; fix n,
/// sweep h, on same-generation ladders.
fn theorem4(r: &mut Report) {
    r.section("Theorem 4 (linear case): O(h·n) — slopes in h and in n");
    // Sweep h with fixed rung width: fig7(c) ladders of increasing
    // height have h = n, work O(n) → slope 1 in h.
    let points_h: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&n| {
            let p = prepare(&fig7::sample_c(n));
            let (_, counters) = run_strategy(&p, StrategyKind::Ours, None);
            (n, counters.total_work() as f64)
        })
        .collect();
    r.row(
        "theorem4",
        "sweep h (fig7c ladder)",
        vec![("slope".into(), loglog_slope(&points_h))],
    );
    // Sweep n with fixed h: same-generation trees of fixed depth,
    // increasing breadth — realized as sample (a) bundles (h = 2).
    let points_n: Vec<(usize, f64)> = SIZES
        .iter()
        .map(|&n| {
            let p = prepare(&fig7::sample_a(n));
            let (_, counters) = run_strategy(&p, StrategyKind::Ours, None);
            (n, counters.total_work() as f64)
        })
        .collect();
    r.row(
        "theorem4",
        "sweep n (fig7a bundle, h=2)",
        vec![("slope".into(), loglog_slope(&points_n))],
    );
}

/// E13: all-pairs — per-source vs Tarjan SCC sharing on cycles.
fn allpairs(r: &mut Report) {
    r.section("All-pairs p(X,Y): per-source vs SCC-shared (node insertions)");
    for &n in &[20usize, 40, 80] {
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..n {
            src.push_str(&format!("e(v{}, v{}).\n", i, (i + 1) % n));
        }
        let program = rq_datalog::parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&system, &source);
        let per = rq_engine::all_pairs_per_source(&ev, &source, tc, &EvalOptions::default());
        let scc = rq_engine::all_pairs_scc(&system, &source, tc, &EvalOptions::default());
        assert_eq!(per.pairs, scc.pairs);
        r.row(
            "allpairs",
            &format!("cycle n={n}"),
            vec![
                (
                    "per_source_nodes".into(),
                    per.counters.nodes_inserted as f64,
                ),
                ("scc_nodes".into(), scc.counters.nodes_inserted as f64),
            ],
        );
    }
}

/// Intro factor (1) "duplication of work": Prolog-style SLD vs the
/// memoizing strategies (QSQ, ours) on diamond-ladder DAGs where SLD's
/// proof count is exponential.
fn duplication(r: &mut Report) {
    r.section("Duplication of work: SLD (Prolog) vs QSQ vs ours on diamond ladders");
    for &k in &[6usize, 8, 10, 12] {
        let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
        for i in 0..k {
            src.push_str(&format!(
                "e(n{i}, l{i}). e(n{i}, r{i}). e(l{i}, n{n}). e(r{i}, n{n}).\n",
                n = i + 1
            ));
        }
        let mut program = rq_datalog::parse_program(&src).unwrap();
        let q = rq_datalog::Query::parse(&mut program, "tc(n0, Y)").unwrap();
        let sld_out = rq_baselines::sld(&program, &q, 100_000_000);
        let qsq_out = rq_baselines::qsq(&program, &q).unwrap();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let tc = program.pred_by_name("tc").unwrap();
        let n0 = program.consts.get(&ConstValue::Str("n0".into())).unwrap();
        let source = EdbSource::new(&db);
        let ours = Evaluator::new(&system, &source).evaluate(tc, n0, &EvalOptions::default());
        assert_eq!(sld_out.rows.len(), ours.answers.len());
        assert_eq!(qsq_out.rows.len(), ours.answers.len());
        r.row(
            "duplication",
            &format!("diamonds k={k}"),
            vec![
                ("sld_firings".into(), sld_out.counters.rule_firings as f64),
                ("qsq_work".into(), qsq_out.counters.total_work() as f64),
                ("ours_work".into(), ours.counters.total_work() as f64),
            ],
        );
    }
}

/// E16: the simple §4 bin transformation (no binding propagation) vs
/// the full pipeline as irrelevant data grows.
fn binreach(r: &mut Report) {
    r.section("Simple bin transformation vs binding-propagating pipeline — facts consulted");
    for &n in &[50usize, 100, 200, 400] {
        let mut src = String::from(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). flat(a1,b1). down(b1,b).\n",
        );
        for i in 0..n {
            src.push_str(&format!(
                "up(u{i},v{i}). flat(v{i},w{i}). down(w{i},x{i}).\n"
            ));
        }
        let mut program = rq_datalog::parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let query = rq_datalog::Query::parse(&mut program, "sg(a, Y)").unwrap();
        let simple = rq_baselines::bin_reach(&program, &db, &query).unwrap();
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program.consts.get(&ConstValue::Str("a".into())).unwrap();
        let source = EdbSource::new(&db);
        let ours = Evaluator::new(&system, &source).evaluate(sg, a, &EvalOptions::default());
        assert_eq!(simple.answers.len(), ours.answers.len());
        r.row(
            "binreach",
            &format!("irrelevant n={n}"),
            vec![
                (
                    "simple_bin_tuples".into(),
                    simple.counters.tuples_retrieved as f64,
                ),
                ("simple_bin_nodes".into(), simple.bin_nodes as f64),
                ("ours_tuples".into(), ours.counters.tuples_retrieved as f64),
            ],
        );
    }
}

/// E17: ε-compaction ablation — graph nodes with plain vs compacted
/// machines on a union-heavy regular program.
fn compaction(r: &mut Report) {
    r.section("ε-compaction ablation: G(p,a,1) nodes, plain vs compacted machines");
    for &n in &[100usize, 400, 1600] {
        let mut src = String::from(
            "r(X,Y) :- a(X,Y).\n\
             r(X,Y) :- b(X,Y).\n\
             r(X,Y) :- c(X,Y).\n\
             r(X,Z) :- a(X,Y), r(Y,Z).\n",
        );
        for i in 0..n {
            src.push_str(&format!("a(v{}, v{}).\n", i, i + 1));
            src.push_str(&format!("b(v{i}, w{i}).\n"));
            src.push_str(&format!("c(w{i}, v{i}).\n"));
        }
        let program = rq_datalog::parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let p = program.pred_by_name("r").unwrap();
        let v0 = program.consts.get(&ConstValue::Str("v0".into())).unwrap();
        let source = EdbSource::new(&db);
        let plain = Evaluator::new(&system, &source).evaluate(p, v0, &EvalOptions::default());
        let compacted =
            Evaluator::new_compacted(&system, &source).evaluate(p, v0, &EvalOptions::default());
        assert_eq!(plain.answers, compacted.answers);
        r.row(
            "compact",
            &format!("n={n}"),
            vec![
                ("plain_nodes".into(), plain.graph_nodes as f64),
                ("compacted_nodes".into(), compacted.graph_nodes as f64),
                (
                    "saved".into(),
                    (plain.graph_nodes - compacted.graph_nodes) as f64,
                ),
            ],
        );
    }
}

/// E18: all-pairs side selection — propagation work forward vs reverse
/// vs the chosen minimum on funnel and fan-out graphs.
fn minside(r: &mut Report) {
    r.section("All-pairs side selection: O(tn), t = min(|domain|, |range|)");
    for (label, fan_out) in [("funnel", false), ("fan-out", true)] {
        for &n in &[30usize, 60, 120] {
            let mut src = String::from("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\n");
            if fan_out {
                src.push_str("e(root, mid).\n");
                for i in 0..n {
                    src.push_str(&format!("e(mid, w{i}).\n"));
                }
            } else {
                for i in 0..n {
                    src.push_str(&format!("e(u{i}, mid).\n"));
                }
                src.push_str("e(mid, sink).\n");
            }
            let program = rq_datalog::parse_program(&src).unwrap();
            let db = Database::from_program(&program);
            let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
            let tc = program.pred_by_name("tc").unwrap();
            let source = EdbSource::new(&db);
            let fwd = rq_engine::all_pairs_scc(&system, &source, tc, &EvalOptions::default());
            let (chosen, side) =
                rq_engine::all_pairs_min_side(&system, &source, tc, &EvalOptions::default());
            assert_eq!(fwd.pairs, chosen.pairs);
            r.row(
                "minside",
                &format!("{label} n={n} (chose {side:?})"),
                vec![
                    ("forward_firings".into(), fwd.counters.rule_firings as f64),
                    ("chosen_firings".into(), chosen.counters.rule_firings as f64),
                ],
            );
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let mut r = Report { json, rows: vec![] };
    match which.as_str() {
        "table1" => table1(&mut r),
        "fig8" => fig8_table(&mut r),
        "horner" => horner(&mut r),
        "demand" => demand(&mut r),
        "flights" => flights_table(&mut r),
        "theorem3" => theorem3(&mut r),
        "theorem4" => theorem4(&mut r),
        "allpairs" => allpairs(&mut r),
        "duplication" => duplication(&mut r),
        "binreach" => binreach(&mut r),
        "compact" => compaction(&mut r),
        "minside" => minside(&mut r),
        "all" => {
            table1(&mut r);
            fig8_table(&mut r);
            horner(&mut r);
            demand(&mut r);
            flights_table(&mut r);
            theorem3(&mut r);
            theorem4(&mut r);
            allpairs(&mut r);
            duplication(&mut r);
            binreach(&mut r);
            compaction(&mut r);
            minside(&mut r);
        }
        other => {
            eprintln!("unknown table `{other}`; expected table1|fig8|horner|demand|flights|theorem3|theorem4|allpairs|duplication|binreach|compact|minside|all");
            std::process::exit(2);
        }
    }
    r.finish();
}
