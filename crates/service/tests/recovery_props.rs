//! Crash-injection recovery properties for the durable storage layer.
//!
//! The central contract: for any workload and any crash point,
//! `recover(crash_at_any_point(workload))` equals the replay-prefix of
//! `never_crashed(workload)` — same epoch, same interner ids, same
//! database contents, same query answers.  The crash is injected
//! deterministically with [`rq_store::MemBackend::with_fault`], which
//! kills the write-ahead-log append stream at a chosen byte offset and
//! leaves exactly the torn prefix a power cut would.
//!
//! Corruption recovery is exercised separately: truncated tails are
//! dropped cleanly (counted, never fatal), a flipped byte mid-log
//! fails the frame CRC and recovery stops at the last valid record,
//! and a corrupted checkpoint whose log was already truncated refuses
//! to serve (a silent gap would be worse).

use proptest::prelude::*;
use rq_common::Pred;
use rq_service::{QueryService, ServiceConfig, ServiceError, Snapshot};
use rq_store::MemBackend;
use std::sync::Arc;

const RULES: &str = "tc(X,Y) :- e(X,Y).\n\
                     tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                     e(n0,n1).";

fn program() -> rq_datalog::Program {
    rq_datalog::parse_program(RULES).unwrap()
}

/// Durable test settings: 4 worker threads (the ISSUE's concurrency
/// floor), a short checkpoint cadence so workloads cross checkpoint
/// boundaries, and the memoization toggle under test.
fn config(memoize: bool) -> ServiceConfig {
    let mut config = ServiceConfig {
        threads: 4,
        memoize_results: memoize,
        ..ServiceConfig::default()
    };
    config.durability.checkpoint_interval = 2;
    config
}

/// One ingested batch over a small universe: edges plus fresh `r<k>`
/// relations (their first appearance exercises predicate re-interning
/// on replay), with plenty of duplicate collisions.
fn batch_text(batch: &[(u8, u8, u8)]) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for &(rel, x, y) in batch {
        let rel = rel % 4;
        if rel == 0 {
            writeln!(text, "e(n{}, n{}).", x % 12, y % 12).unwrap();
        } else {
            writeln!(text, "r{rel}(n{}, n{}).", x % 12, y % 12).unwrap();
        }
    }
    text
}

/// Every `(pred, sorted tuple set)` of a snapshot's database.  Raw
/// interner ids, deliberately: recovery must reproduce them exactly,
/// not just name-equivalent contents.
fn db_contents(snapshot: &Snapshot) -> Vec<(Pred, Vec<Vec<rq_common::Const>>)> {
    let mut out = Vec::new();
    for pred in snapshot.program().preds.ids() {
        let mut tuples: Vec<Vec<rq_common::Const>> = snapshot
            .db()
            .relation(pred)
            .iter()
            .map(|t| t.to_vec())
            .collect();
        tuples.sort();
        out.push((pred, tuples));
    }
    out
}

/// Assert two snapshots are indistinguishable: epoch, interner sizes,
/// per-id constant values, facts, and database contents.
fn assert_snapshots_identical(a: &Snapshot, b: &Snapshot) {
    assert_eq!(a.epoch(), b.epoch());
    assert_eq!(a.program().preds.len(), b.program().preds.len());
    assert_eq!(a.program().consts.len(), b.program().consts.len());
    for i in 0..a.program().consts.len() {
        let c = rq_common::Const::from_index(i);
        assert_eq!(
            a.program().consts.value(c),
            b.program().consts.value(c),
            "constant id {i} diverged"
        );
    }
    assert_eq!(a.program().facts.len(), b.program().facts.len());
    for (fa, fb) in a.program().facts.iter().zip(b.program().facts.iter()) {
        assert_eq!(fa, fb);
    }
    assert_eq!(db_contents(a), db_contents(b));
}

/// Answer `tc(n0, Y)` as raw id rows — byte-identical recovery means
/// identical ids, so the rows compare with `==` directly.
fn answer(service: &QueryService) -> Vec<Vec<rq_common::Const>> {
    let q = service.parse_query("tc(n0, Y)").unwrap();
    service.query(&q).unwrap().rows.as_ref().clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash the write-ahead-log append at an arbitrary byte offset,
    /// "restart" (clear the fault, reopen the backend), and compare
    /// the recovered service against the never-crashed oracle's
    /// prefix: same epoch, same interner ids, same database, same
    /// answers.  Memoizing and non-memoizing, 4 worker threads.
    #[test]
    fn recovery_equals_the_never_crashed_prefix(
        batches in prop::collection::vec(
            prop::collection::vec((0..255u8, 0..255u8, 0..255u8), 1..6),
            1..6,
        ),
        kill_fraction in 0..=1000u32,
        memoize_bit in 0..2u8,
    ) {
        let memoize = memoize_bit == 1;
        // The never-crashed oracle, capturing one snapshot per epoch.
        let oracle = QueryService::open_backend(
            program(), Arc::new(MemBackend::new()), config(memoize),
        ).unwrap();
        let mut oracle_snaps = vec![oracle.snapshot()];
        for batch in &batches {
            oracle_snaps.push(oracle.ingest(&batch_text(batch)).unwrap());
        }

        // Learn the clean log length, then pick the crash offset as a
        // fraction of it (offset == length means no crash fires).
        let total = clean_log_len(&batches, memoize);
        let kill = (total as u64).saturating_mul(u64::from(kill_fraction)) / 1000;

        // The crashing run: ingest until the injected fault aborts a
        // publish (every later ingest fails on the dead "descriptor").
        let backend = Arc::new(MemBackend::with_fault(kill));
        let crashed = QueryService::open_backend(
            program(), backend.clone() as Arc<dyn rq_store::StorageBackend>, config(memoize),
        ).unwrap();
        let mut acked = 0u64;
        for batch in &batches {
            match crashed.ingest(&batch_text(batch)) {
                Ok(snap) => {
                    prop_assert!(snap.epoch() == acked + 1);
                    acked += 1;
                }
                Err(e) => {
                    prop_assert!(
                        matches!(e, ServiceError::Ingest(_)),
                        "crash must surface as an ingest error, got {e}"
                    );
                    break;
                }
            }
        }
        drop(crashed);

        // Restart over the same backing store.
        backend.clear_fault();
        let recovered = QueryService::open_backend(
            program(), backend.clone() as Arc<dyn rq_store::StorageBackend>, config(memoize),
        ).unwrap();
        let report = recovered.recovery_report().unwrap().clone();
        prop_assert_eq!(report.recovered_epoch, acked,
            "recovery must restore exactly the acknowledged epochs");
        prop_assert!(report.dropped_records <= 1,
            "the scan stops at the first torn frame");

        // The recovered service equals the oracle's prefix …
        let oracle_prefix = &oracle_snaps[acked as usize];
        assert_snapshots_identical(&recovered.snapshot(), oracle_prefix);

        // … answers queries identically (raw ids — byte parity) …
        let prefix_service = QueryService::with_config(
            oracle_prefix.program().clone(), config(memoize),
        );
        prop_assert_eq!(answer(&recovered), answer(&prefix_service));

        // … and keeps serving durably: the next ingest appends again.
        if acked < batches.len() as u64 {
            let resumed = recovered
                .ingest(&batch_text(&batches[acked as usize]))
                .unwrap();
            prop_assert_eq!(resumed.epoch(), acked + 1);
            assert_snapshots_identical(&resumed, &oracle_snaps[acked as usize + 1]);

            // The resumed epoch must itself survive a *second* restart:
            // recovery truncated the torn tail, so the new record sits
            // on verified bytes, not behind a bad frame the next scan
            // would stop at (which would silently drop an acknowledged,
            // fsynced ingest).
            drop(resumed);
            drop(recovered);
            let reopened = QueryService::open_backend(
                program(), backend.clone() as Arc<dyn rq_store::StorageBackend>, config(memoize),
            ).unwrap();
            let second = reopened.recovery_report().unwrap();
            prop_assert_eq!(second.recovered_epoch, acked + 1,
                "an epoch acknowledged after recovery must survive the next restart");
            prop_assert_eq!(second.dropped_records, 0,
                "the first recovery already truncated the unverifiable tail");
            assert_snapshots_identical(&reopened.snapshot(), &oracle_snaps[acked as usize + 1]);
        }
    }
}

/// The clean (never-crashed) write-ahead-log length for `batches`,
/// measured on a throwaway backend.
fn clean_log_len(batches: &[Vec<(u8, u8, u8)>], memoize: bool) -> usize {
    let backend = Arc::new(MemBackend::new());
    let svc = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        config(memoize),
    )
    .unwrap();
    for batch in batches {
        svc.ingest(&batch_text(batch)).unwrap();
    }
    backend.log_len()
}

#[test]
fn truncated_tail_record_is_dropped_cleanly_with_a_counter() {
    let backend = Arc::new(MemBackend::new());
    let svc = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        {
            let mut c = config(true);
            c.durability.checkpoint_interval = 0; // keep every record in the log
            c
        },
    )
    .unwrap();
    svc.ingest("e(n1, n2).").unwrap();
    let two = backend.log_len();
    svc.ingest("e(n2, n3). r1(n0, n5).").unwrap();
    drop(svc);
    // Tear the last record anywhere strictly inside it.
    for cut in two + 1..backend.log_len() {
        let fresh = Arc::new(MemBackend::new());
        fresh.set_raw_log(backend.raw_log());
        fresh.truncate_log(cut);
        let recovered = QueryService::open_backend(program(), fresh, config(true)).unwrap();
        let report = recovered.recovery_report().unwrap();
        assert_eq!(report.recovered_epoch, 1, "cut at {cut}");
        assert_eq!(report.replayed_records, 1);
        assert_eq!(report.dropped_records, 1, "torn tail must be counted");
        assert!(report.dropped_bytes > 0);
    }
    // A cut exactly on the record boundary is a clean (shorter) log.
    let fresh = Arc::new(MemBackend::new());
    fresh.set_raw_log(backend.raw_log());
    fresh.truncate_log(two);
    let recovered = QueryService::open_backend(program(), fresh, config(true)).unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.recovered_epoch, 1);
    assert_eq!(report.dropped_records, 0);
}

#[test]
fn flipped_byte_mid_log_stops_recovery_at_the_last_valid_record() {
    let backend = Arc::new(MemBackend::new());
    let svc = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        {
            let mut c = config(true);
            c.durability.checkpoint_interval = 0;
            c
        },
    )
    .unwrap();
    svc.ingest("e(n1, n2).").unwrap();
    let one = backend.log_len();
    svc.ingest("e(n2, n3).").unwrap();
    let two = backend.log_len();
    svc.ingest("e(n3, n4).").unwrap();
    drop(svc);
    // Flip one byte inside the *middle* record: epoch 1 survives,
    // epochs 2 and 3 are untrusted, and nothing panics.
    for offset in [one, one + 7, two - 1] {
        let fresh = Arc::new(MemBackend::new());
        fresh.set_raw_log(backend.raw_log());
        fresh.corrupt_log_byte(offset);
        let recovered = QueryService::open_backend(program(), fresh, config(true)).unwrap();
        let report = recovered.recovery_report().unwrap();
        assert_eq!(
            report.recovered_epoch, 1,
            "flip at {offset}: recovery must stop at the last valid record"
        );
        assert_eq!(report.dropped_records, 1);
        assert!(!recovered
            .snapshot()
            .db()
            .relation(recovered.snapshot().program().pred_by_name("e").unwrap())
            .is_empty());
    }
}

#[test]
fn corrupt_checkpoint_with_a_truncated_log_refuses_to_serve() {
    let backend = Arc::new(MemBackend::new());
    let svc = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        {
            let mut c = config(true);
            c.durability.checkpoint_interval = 2; // checkpoint at epoch 2, truncating records 1-2
            c
        },
    )
    .unwrap();
    svc.ingest("e(n1, n2).").unwrap();
    svc.ingest("e(n2, n3).").unwrap();
    svc.ingest("e(n3, n4).").unwrap();
    drop(svc);
    assert!(backend.raw_checkpoint().is_some());
    backend.corrupt_checkpoint_byte(10);
    // The checkpoint fails verification and the surviving log starts
    // at epoch 3 — a gap.  Serving would silently lose epochs 1-2, so
    // recovery must refuse (an error, never a panic or silent data
    // loss).
    let Err(err) = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        config(true),
    ) else {
        panic!("a gapped log must not serve");
    };
    assert!(
        matches!(&err, ServiceError::Recovery(m) if m.contains("gap")),
        "{err}"
    );
}

#[test]
fn checkpoint_plus_tail_recovery_counts_skipped_duplicates() {
    let backend = Arc::new(MemBackend::new());
    let svc = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        {
            let mut c = config(true);
            c.durability.checkpoint_interval = 2;
            c
        },
    )
    .unwrap();
    svc.ingest("e(n1, n2).").unwrap(); // epoch 1
    svc.ingest("e(n2, n3). r1(n0, n1).").unwrap(); // epoch 2 → checkpoint + truncate
    svc.ingest("e(n3, n4).").unwrap(); // epoch 3, in the log tail
    drop(svc);
    let recovered = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        config(true),
    )
    .unwrap();
    let report = recovered.recovery_report().unwrap();
    assert_eq!(report.recovered_epoch, 3);
    assert_eq!(report.checkpoint_epoch, Some(2));
    assert_eq!(report.replayed_records, 1);
    assert_eq!(report.skipped_duplicates, 0);
    assert_eq!(report.dropped_records, 0);
    // The recovered state equals a from-scratch oracle fed the same
    // batches — including the fresh `r1` predicate interned by the
    // checkpointed epoch.
    let oracle = QueryService::from_source(RULES).unwrap();
    oracle.ingest("e(n1, n2).").unwrap();
    oracle.ingest("e(n2, n3). r1(n0, n1).").unwrap();
    oracle.ingest("e(n3, n4).").unwrap();
    assert_snapshots_identical(&recovered.snapshot(), &oracle.snapshot());
}

#[test]
fn reopening_under_a_different_rule_set_is_refused() {
    let backend = Arc::new(MemBackend::new());
    let svc = QueryService::open_backend(
        program(),
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        config(true),
    )
    .unwrap();
    svc.ingest("e(n1, n2).").unwrap();
    drop(svc);
    let other = rq_datalog::parse_program("p(X,Y) :- q(X,Y).\nq(a,b).").unwrap();
    let Err(err) = QueryService::open_backend(
        other,
        backend.clone() as Arc<dyn rq_store::StorageBackend>,
        config(true),
    ) else {
        panic!("a foreign rule set must not replay this log");
    };
    assert!(
        matches!(&err, ServiceError::Recovery(m) if m.contains("rule set")),
        "{err}"
    );
}
