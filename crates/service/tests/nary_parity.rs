//! §4 end-to-end acceptance: n-ary queries served through the
//! generalized `QuerySpec` pipeline must agree with the QSQ and
//! magic-sets baselines (two entirely independent top-down/bottom-up
//! evaluators over the *original* n-ary program) and with the
//! seminaive oracle, across the flights workload and random n-ary
//! linear programs.

use rq_baselines::{magic_sets, qsq};
use rq_common::Const;
use rq_datalog::{Program, Query};
use rq_service::{QueryService, QuerySpec, ServiceConfig, ServiceError};
use rq_workloads::flights;
use rq_workloads::randprog::{random_nary_program, NaryConfig};

/// Answer `query_text` through both baselines and asserts they agree;
/// returns the rows.
fn baseline_rows(program: &Program, query_text: &str) -> Vec<Vec<Const>> {
    let mut p = program.clone();
    let query = Query::parse(&mut p, query_text).expect("query parses");
    let q = qsq(&p, &query).expect("qsq accepts the program");
    let m = magic_sets(&p, &query).expect("magic sets accepts the program");
    let mut magic_rows = m.rows;
    magic_rows.sort();
    magic_rows.dedup();
    assert_eq!(q.rows, magic_rows, "qsq != magic for `{query_text}`");
    q.rows
}

/// Serve `query_text` and diff against both baselines.  Queries over
/// constants absent from the data are semantically empty.
fn check_query(service: &QueryService, query_text: &str) {
    let program = service.snapshot().program().clone();
    let expected = baseline_rows(&program, query_text);
    match service.parse_query(query_text) {
        Ok(spec) => {
            let answer = service.query(&spec).expect("service answers");
            assert!(answer.converged, "acyclic data must converge");
            assert_eq!(
                *answer.rows, expected,
                "service != baselines for `{query_text}`"
            );
        }
        Err(ServiceError::UnknownConstant(_)) => {
            assert!(
                expected.is_empty(),
                "`{query_text}`: unknown constant but baselines found rows"
            );
        }
        Err(e) => panic!("`{query_text}`: {e}"),
    }
}

#[test]
fn paper_flights_database_matches_baselines_end_to_end() {
    let workload = flights::paper_example();
    let service = QueryService::new(workload.program.clone());
    // The §4 walkthrough query, every airport/deptime anchor, both
    // fully bound forms, and the all-free form.
    check_query(&service, &workload.query);
    for q in [
        "cnx(ams, 720, D, AT)",
        "cnx(ams, 660, D, AT)",
        "cnx(cdg, 840, D, AT)",
        "cnx(hel, 540, nce, 930)",
        "cnx(hel, 540, nce, 750)",
        "cnx(S, DT, D, AT)",
        "cnx(S, DT, nce, 930)",
    ] {
        check_query(&service, q);
    }
    // The paper's walkthrough has exactly three connections from
    // hel@540.
    let spec = service.parse_query(&workload.query).unwrap();
    assert_eq!(
        service.query(&spec).unwrap().rows.len(),
        workload.expected_answers.unwrap()
    );
}

#[test]
fn generated_flight_networks_match_baselines_through_batches() {
    for (airports, per, seed) in [(4, 2, 7), (6, 3, 11)] {
        let workload = flights::network(airports, per, seed);
        let service = QueryService::with_config(
            workload.program.clone(),
            ServiceConfig {
                threads: 4,
                ..ServiceConfig::default()
            },
        );
        // The serving workload: every (airport, deptime) anchor, as one
        // deduped batch.
        let texts = flights::serve_queries(airports, per);
        let specs: Vec<QuerySpec> = texts
            .iter()
            .map(|t| service.parse_query(t).expect("generated anchors exist"))
            .collect();
        let program = service.snapshot().program().clone();
        for (text, result) in texts.iter().zip(service.query_batch(&specs)) {
            let answer = result.expect("service answers");
            assert_eq!(
                *answer.rows,
                baseline_rows(&program, text),
                "flights(a={airports},f={per},seed={seed}): `{text}`"
            );
        }
        // Plans were shared: one §4 plan per binding pattern, not per
        // query.
        assert_eq!(service.plan_cache().nary_plans(), 1);
    }
}

#[test]
fn random_nary_programs_match_baselines() {
    for seed in 0..8 {
        let np = random_nary_program(&NaryConfig {
            seed,
            ..NaryConfig::default()
        });
        let service = QueryService::with_config(
            np.program.clone(),
            ServiceConfig {
                threads: 2,
                ..ServiceConfig::default()
            },
        );
        for q in &np.queries {
            check_query(&service, q);
        }
    }
}

/// The diagonal property: a repeated-variable query equals the
/// distinct-variable answer filtered on equality and projected — for
/// binary diagonals and their n-ary generalizations alike.
#[test]
fn diagonal_equals_filtered_all_answers() {
    // Binary: tc(X, X) vs tc(X, Y).
    let service = QueryService::from_source(
        "tc(X,Y) :- e(X,Y).\n\
         tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
         e(a,b). e(b,a). e(b,c). e(c,c).",
    )
    .unwrap();
    let all = service
        .query(&service.parse_query("tc(X, Y)").unwrap())
        .unwrap();
    let diag = service
        .query(&service.parse_query("tc(X, X)").unwrap())
        .unwrap();
    let mut filtered: Vec<Vec<Const>> = all
        .rows
        .iter()
        .filter(|r| r[0] == r[1])
        .map(|r| vec![r[0]])
        .collect();
    filtered.sort();
    filtered.dedup();
    assert_eq!(*diag.rows, filtered);
    assert!(!diag.rows.is_empty(), "cycles put members on the diagonal");

    // n-ary: random graded programs, q(A, A, G) vs q(A, B, G).
    for seed in 0..4 {
        let np = random_nary_program(&NaryConfig {
            seed,
            // Allow same-node pairs to exist via two-step paths.
            domain: 6,
            facts_per_base: 20,
            ..NaryConfig::default()
        });
        let service = QueryService::new(np.program.clone());
        for head in &np.derived {
            let all = service
                .query(&service.parse_query(&format!("{head}(A, B, G)")).unwrap())
                .unwrap();
            let diag = service
                .query(&service.parse_query(&format!("{head}(A, A, G)")).unwrap())
                .unwrap();
            let mut filtered: Vec<Vec<Const>> = all
                .rows
                .iter()
                .filter(|r| r[0] == r[1])
                .map(|r| vec![r[0], r[2]])
                .collect();
            filtered.sort();
            filtered.dedup();
            assert_eq!(
                *diag.rows, filtered,
                "seed {seed} {head}: diagonal != filtered all-answers"
            );
        }
    }
}
