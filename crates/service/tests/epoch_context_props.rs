//! Soundness of the epoch-scoped evaluation context:
//!
//! * **memo soundness** — a warm-epoch batch (shared machine memo,
//!   shared virtual-probe memo, shared-SCC all-free routing, parallel
//!   expansion) answers exactly like a cold sequential service that
//!   re-derives everything per query, on random n-ary programs;
//! * **epoch isolation** — publishing a new epoch invalidates every
//!   context entry whose plan reads a dirtied shard; entries may only
//!   carry across the publish when their whole read-set was untouched
//!   (checked with result memoization off and delta repair off, so
//!   neither the result cache's carry-forward nor an in-place repair
//!   can mask a stale context);
//! * **repair soundness** — with delta repair on (the default), a
//!   warm service that lives through random small ingests answers
//!   exactly like a cold service rebuilt from scratch on the grown
//!   program, whether each dirty plan was repaired in place or fell
//!   back cold.

use proptest::prelude::*;
use rq_engine::EvalOptions;
use rq_service::{QueryService, ServiceConfig};
use rq_workloads::randprog::{random_nary_program, NaryConfig};

/// A service that shares nothing between queries: cold per-query
/// re-derivation, single-threaded, no result memoization.
fn cold_config() -> ServiceConfig {
    ServiceConfig {
        threads: 1,
        eval_threads: 1,
        share_epoch_context: false,
        memoize_results: false,
        ..ServiceConfig::default()
    }
}

/// A service with every sharing mechanism on but the result cache off,
/// so answers demonstrably come from evaluation through the context.
fn warm_config() -> ServiceConfig {
    ServiceConfig {
        threads: 4,
        eval_threads: 4,
        share_epoch_context: true,
        memoize_results: false,
        ..ServiceConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Warm-epoch batched answers equal cold sequential answers on
    /// random graded n-ary programs, across every generated binding
    /// pattern (bff, ffb, bfb, bbb, fff), asked twice so the second
    /// round is answered from a fully warmed context.
    #[test]
    fn warm_batch_equals_cold_sequential(seed in 0u64..200) {
        let np = random_nary_program(&NaryConfig { seed, ..NaryConfig::default() });
        let warm = QueryService::with_config(np.program.clone(), warm_config());
        let cold = QueryService::with_config(np.program.clone(), cold_config());
        let specs: Vec<_> = np
            .queries
            .iter()
            .map(|t| warm.parse_query(t).unwrap())
            .collect();
        // Two rounds: the first populates the epoch context, the
        // second is served against a warm one.
        for round in 0..2 {
            let batch = warm.query_batch(&specs);
            for (spec, answer) in specs.iter().zip(batch) {
                let warm_answer = answer.unwrap();
                let cold_answer = cold.query(spec).unwrap();
                prop_assert_eq!(
                    warm_answer.rows.as_ref(),
                    cold_answer.rows.as_ref(),
                    "round {} spec {:?}",
                    round,
                    spec
                );
                prop_assert_eq!(warm_answer.converged, cold_answer.converged);
            }
        }
        // The warmed context actually served repeats.
        let stats = warm.snapshot().context().stats();
        prop_assert!(stats.probe_hits + stats.eval_hits > 0);
    }

    /// Publishing an epoch invalidates every context entry that read a
    /// dirtied shard: answers after an ingest reflect the new facts
    /// even with result memoization off.  Entries are only allowed to
    /// carry into the new snapshot's context when their plan's whole
    /// read-set was untouched by the publish — and whatever carried,
    /// post-publish answers must still match a cold re-derivation.
    #[test]
    fn publish_invalidates_dirty_read_set_context(seed in 0u64..200) {
        let np = random_nary_program(&NaryConfig { seed, ..NaryConfig::default() });
        // Repair off: this property pins the baseline isolation rule
        // (dirty plans contribute *nothing* to the fresh context).
        let warm = QueryService::with_config(
            np.program.clone(),
            ServiceConfig { delta_repair: false, ..warm_config() },
        );
        let specs: Vec<_> = np
            .queries
            .iter()
            .map(|t| warm.parse_query(t).unwrap())
            .collect();
        // Warm the context thoroughly.
        warm.query_batch(&specs);
        let old_snapshot = warm.snapshot();
        // New edges through fresh constants reshape reachability.
        warm.ingest("b0(n0, n1). b0(n1, n2). b1(n0, n2).").unwrap();
        let fresh = warm.snapshot();
        prop_assert_eq!(fresh.epoch(), old_snapshot.epoch() + 1);
        // Only clean-read-set plans may carry: every cached plan whose
        // read-set touches the dirtied b0/b1 must contribute nothing.
        let dirty = fresh.dirty_preds();
        let stats = fresh.context().stats();
        let any_clean_plan = warm
            .plan_cache()
            .cached_nary_plans(fresh.rules_fingerprint())
            .iter()
            .any(|(_, plan)| plan.read_set(fresh.program()).is_disjoint(dirty));
        if !any_clean_plan {
            prop_assert_eq!(stats.probe_entries, 0);
            prop_assert_eq!(stats.eval_carried, 0);
        }
        // Post-publish answers match a cold service over the grown
        // program — a stale probe memo would miss the new facts.
        let cold = QueryService::with_config(fresh.program().clone(), cold_config());
        for spec in &specs {
            let warm_answer = warm.query(spec).unwrap();
            let cold_answer = cold.query(spec).unwrap();
            prop_assert_eq!(warm_answer.rows.as_ref(), cold_answer.rows.as_ref());
        }
    }

    /// Delta-repair equivalence: a warm service (repair on, parallel
    /// work-stealing expansion) that absorbs N random small ingests
    /// answers exactly like a cold service rebuilt from scratch on the
    /// grown program — with and without result memoization, so both
    /// the repaired context and the swept-and-re-derived result cache
    /// are checked against the oracle.
    #[test]
    fn repairing_service_equals_cold_rebuild_after_random_ingests(seed in 0u64..60) {
        let np = random_nary_program(&NaryConfig { seed, ..NaryConfig::default() });
        let warm = QueryService::with_config(np.program.clone(), warm_config());
        let memoizing = QueryService::with_config(
            np.program.clone(),
            ServiceConfig { threads: 4, eval_threads: 4, ..ServiceConfig::default() },
        );
        let specs: Vec<_> = np
            .queries
            .iter()
            .map(|t| warm.parse_query(t).unwrap())
            .collect();
        // Warm both services so every publish finds state to repair.
        warm.query_batch(&specs);
        memoizing.query_batch(&specs);
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..3u32 {
            let facts: String = (0..2)
                .map(|_| {
                    let pred = if next() % 2 == 0 { "b0" } else { "b1" };
                    format!("{pred}(n{}, n{}). ", next() % 6, next() % 6)
                })
                .collect();
            warm.ingest(&facts).unwrap();
            memoizing.ingest(&facts).unwrap();
            let cold =
                QueryService::with_config(warm.snapshot().program().clone(), cold_config());
            for spec in &specs {
                let oracle = cold.query(spec).unwrap();
                let repaired = warm.query(spec).unwrap();
                prop_assert_eq!(
                    repaired.rows.as_ref(),
                    oracle.rows.as_ref(),
                    "round {} context spec {:?}",
                    round,
                    spec
                );
                let cached = memoizing.query(spec).unwrap();
                prop_assert_eq!(
                    cached.rows.as_ref(),
                    oracle.rows.as_ref(),
                    "round {} result-cache spec {:?}",
                    round,
                    spec
                );
            }
            // Re-warm so the next round's publish repairs fresh state.
            warm.query_batch(&specs);
            memoizing.query_batch(&specs);
        }
    }
}

#[test]
fn clean_read_set_machine_memo_survives_disjoint_publish() {
    // Two independent closures: tc reads only e, rc reads only f.  An
    // ingest into e must drop tc's machine memos but carry rc's into
    // the new epoch's context (result memoization is off, so the hits
    // demonstrably come from the carried machine memo, not the result
    // cache's own carry-forward).
    const PROG: &str = "tc(X,Y) :- e(X,Y).\n\
                        tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                        rc(X,Y) :- f(X,Y).\n\
                        rc(X,Z) :- f(X,Y), rc(Y,Z).\n\
                        e(a,b). e(b,c). f(m,n). f(n,o).";
    let service = QueryService::with_config(
        rq_datalog::parse_program(PROG).unwrap(),
        ServiceConfig {
            threads: 1,
            memoize_results: false,
            delta_repair: false,
            ..ServiceConfig::default()
        },
    );
    let rc_q = service.parse_query("rc(m, Y)").unwrap();
    let tc_q = service.parse_query("tc(a, Y)").unwrap();
    assert_eq!(service.query(&rc_q).unwrap().rows.len(), 2);
    assert_eq!(service.query(&tc_q).unwrap().rows.len(), 2);
    let before = service.snapshot().context().stats();
    assert!(before.eval_entries > 0, "queries warmed the machine memo");

    service.ingest("e(c,d).").unwrap();
    let snap = service.snapshot();
    let stats = snap.context().stats();
    assert!(stats.eval_carried > 0, "rc machines must carry: {stats:?}");
    assert!(
        (stats.eval_carried as usize) < before.eval_entries,
        "tc machines read the dirtied e and must be dropped: {stats:?}"
    );

    // The carried memo answers the clean-plan query at the root.
    let hits_before = snap.context().stats().eval_hits;
    let rc_after = service.query(&rc_q).unwrap();
    assert_eq!(rc_after.rows.len(), 2);
    assert!(
        snap.context().stats().eval_hits > hits_before,
        "warm answer must come from the carried machine memo"
    );
    // The dirty plan recomputes and sees the new edge.
    let tc_after = service.query(&tc_q).unwrap();
    assert_eq!(tc_after.rows.len(), 3, "tc must observe e(c,d)");
}

#[test]
fn clean_nary_probe_space_survives_disjoint_publish() {
    // A §4 plan over flight/is_deptime shares one program with a tc
    // chain over e.  Ingesting into e must carry the cnx plan's probe
    // space (and its machine memo) wholesale; the repeat query is then
    // served from warm probes on the new epoch.
    const PROG: &str = "tc(X,Y) :- e(X,Y).\n\
                        tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                        cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
                        cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
                        e(a,b). e(b,c).\n\
                        flight(hel,540,ams,690). flight(ams,720,cdg,810).\n\
                        is_deptime(540). is_deptime(720).";
    let service = QueryService::with_config(
        rq_datalog::parse_program(PROG).unwrap(),
        ServiceConfig {
            threads: 1,
            memoize_results: false,
            delta_repair: false,
            ..ServiceConfig::default()
        },
    );
    let q = service.parse_query("cnx(hel, 540, D, AT)").unwrap();
    let cold = service.query(&q).unwrap();
    assert_eq!(cold.rows.len(), 2);
    let warmed = service.snapshot().context().stats();
    assert!(warmed.probe_entries > 0, "{warmed:?}");

    service.ingest("e(c,d).").unwrap();
    let snap = service.snapshot();
    let stats = snap.context().stats();
    assert_eq!(stats.probe_spaces_carried, 1, "{stats:?}");
    assert!(
        stats.probe_entries >= warmed.probe_entries,
        "carried probe space keeps its memo: {stats:?}"
    );
    let warm = service.query(&q).unwrap();
    assert_eq!(warm.rows.as_ref(), cold.rows.as_ref());
    assert_eq!(warm.epoch, 1);

    // An ingest into flight dirties the plan's read-set: nothing may
    // carry, and the fresh context re-derives with the new leg.
    service
        .ingest("flight(cdg,840,nce,930). is_deptime(840).")
        .unwrap();
    let stats = service.snapshot().context().stats();
    assert_eq!(stats.probe_spaces_carried, 0, "{stats:?}");
    assert_eq!(stats.eval_carried, 0, "{stats:?}");
    assert_eq!(service.query(&q).unwrap().rows.len(), 3);
}

#[test]
fn dirty_chain_memo_is_repaired_in_place() {
    // With delta repair on (the default), an ingest into `e` no longer
    // drops tc's machine memos: they are patched against the delta and
    // adopted into the new epoch's context, so the follow-up query is
    // a memo hit that already sees the new edge.
    const PROG: &str = "tc(X,Y) :- e(X,Y).\n\
                        tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                        e(a,b). e(b,c).";
    let service = QueryService::with_config(
        rq_datalog::parse_program(PROG).unwrap(),
        ServiceConfig {
            threads: 1,
            memoize_results: false,
            ..ServiceConfig::default()
        },
    );
    let q = service.parse_query("tc(a, Y)").unwrap();
    assert_eq!(service.query(&q).unwrap().rows.len(), 2);
    let before = service.snapshot().context().stats();
    assert!(before.eval_entries > 0);

    service.ingest("e(c,d).").unwrap();
    let snap = service.snapshot();
    let stats = snap.context().stats();
    assert!(
        stats.eval_carried as usize >= before.eval_entries,
        "repaired tc memos must be adopted, not dropped: {stats:?}"
    );
    let hits_before = snap.context().stats().eval_hits;
    let after = service.query(&q).unwrap();
    assert_eq!(after.rows.len(), 3, "repaired memo must include e(c,d)");
    assert!(
        snap.context().stats().eval_hits > hits_before,
        "the repaired entry must answer from the memo"
    );
    let report = service.stats_report();
    assert_eq!(report.delta_repairs, 1, "{report:?}");
    assert!(report.delta_repaired_rows >= 1, "{report:?}");
    assert_eq!(report.delta_fallback_cold, 0, "{report:?}");
}

#[test]
fn dirty_nary_probe_space_is_repaired_in_place() {
    // The §4 mirror: an ingest into `flight` forks the previous
    // epoch's probe space, patches the delta's consequences into the
    // fork, repairs the machine memos over it, and adopts the fork —
    // so the dirty plan stays warm across its own ingest.
    const PROG: &str = "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
                        cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
                        flight(hel,540,ams,690). flight(ams,720,cdg,810).\n\
                        is_deptime(540). is_deptime(720).";
    let service = QueryService::with_config(
        rq_datalog::parse_program(PROG).unwrap(),
        ServiceConfig {
            threads: 1,
            memoize_results: false,
            ..ServiceConfig::default()
        },
    );
    let q = service.parse_query("cnx(hel, 540, D, AT)").unwrap();
    assert_eq!(service.query(&q).unwrap().rows.len(), 2);

    service
        .ingest("flight(cdg,840,nce,930). is_deptime(840).")
        .unwrap();
    let stats = service.snapshot().context().stats();
    assert_eq!(
        stats.probe_spaces_carried, 1,
        "the repaired fork must be adopted: {stats:?}"
    );
    assert_eq!(service.query(&q).unwrap().rows.len(), 3);
    let report = service.stats_report();
    assert_eq!(report.delta_repairs, 1, "{report:?}");
    assert_eq!(report.delta_fallback_cold, 0, "{report:?}");
}

#[test]
fn all_free_regular_queries_take_the_scc_path() {
    const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                      e(a,b). e(b,c). e(c,a). e(c,d).";
    let shared = QueryService::with_config(
        rq_datalog::parse_program(TC).unwrap(),
        ServiceConfig {
            threads: 1,
            ..ServiceConfig::default()
        },
    );
    let per_source =
        QueryService::with_config(rq_datalog::parse_program(TC).unwrap(), cold_config());
    let all = shared.parse_query("tc(X, Y)").unwrap();
    let via_scc = shared.query(&all).unwrap();
    let via_loop = per_source.query(&all).unwrap();
    assert_eq!(via_scc.rows.as_ref(), via_loop.rows.as_ref());
    assert!(via_scc.converged);
    assert_eq!(shared.snapshot().context().stats().scc_served, 1);
    assert_eq!(per_source.snapshot().context().stats().scc_served, 0);
    // The diagonal rides the same (cached) all-free entry.
    let diag = shared.parse_query("tc(X, X)").unwrap();
    let diag_rows = shared.query(&diag).unwrap();
    let mut expected: Vec<_> = via_scc
        .rows
        .iter()
        .filter(|r| r[0] == r[1])
        .map(|r| vec![r[0]])
        .collect();
    expected.sort();
    assert_eq!(diag_rows.rows.as_ref(), &expected);
}

#[test]
fn non_regular_all_free_falls_back_to_per_source() {
    // sg's equation keeps a derived occurrence (sg = flat ∪ up·sg·down
    // is not regular), so the all-free form must use the per-source
    // loop and still agree with the cold service.
    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                      up(a,a1). up(b,a1). flat(a1,c1). down(c1,d). flat(a,z).";
    let shared = QueryService::with_config(
        rq_datalog::parse_program(SG).unwrap(),
        ServiceConfig {
            threads: 2,
            ..ServiceConfig::default()
        },
    );
    let cold = QueryService::with_config(rq_datalog::parse_program(SG).unwrap(), cold_config());
    let all = shared.parse_query("sg(X, Y)").unwrap();
    let warm_answer = shared.query(&all).unwrap();
    let cold_answer = cold.query(&all).unwrap();
    assert_eq!(warm_answer.rows.as_ref(), cold_answer.rows.as_ref());
    assert_eq!(shared.snapshot().context().stats().scc_served, 0);
    // The per-source loop records its point traversals in the machine
    // memo; a follow-up point query is a context hit even with the
    // result cache cleared of its entry key (fresh spec object).
    assert!(shared.snapshot().context().stats().eval_entries > 0);
}

#[test]
fn batched_flights_share_probe_work_within_one_epoch() {
    let workload = rq_workloads::flights::network(8, 3, 7);
    let texts = rq_workloads::flights::serve_queries(8, 3);
    let service = QueryService::with_config(workload.program.clone(), warm_config());
    let specs: Vec<_> = texts
        .iter()
        .map(|t| service.parse_query(t).unwrap())
        .collect();
    let first = service.query_batch(&specs);
    let baseline = QueryService::with_config(workload.program.clone(), cold_config());
    for (spec, answer) in specs.iter().zip(&first) {
        assert_eq!(
            answer.as_ref().unwrap().rows.as_ref(),
            baseline.query(spec).unwrap().rows.as_ref()
        );
    }
    let stats = service.snapshot().context().stats();
    assert!(
        stats.probe_hits > 0,
        "overlapping adorned queries must share probes: {stats:?}"
    );
    // Second flight of the same batch: every anchored traversal is
    // already memoized at the root.
    let again = service.query_batch(&specs);
    for (a, b) in first.iter().zip(again) {
        assert_eq!(a.as_ref().unwrap().rows, b.unwrap().rows);
    }
}

#[test]
fn shared_context_respects_eval_options_overrides() {
    // A service with an explicit expand_threads override in its base
    // options keeps that override (the per-batch division only fills
    // the default).
    const TC: &str = "tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b). e(b,c).";
    let service = QueryService::with_config(
        rq_datalog::parse_program(TC).unwrap(),
        ServiceConfig {
            threads: 2,
            eval_threads: 8,
            options: EvalOptions {
                expand_threads: 1,
                ..EvalOptions::default()
            },
            ..ServiceConfig::default()
        },
    );
    let q = service.parse_query("tc(a, Y)").unwrap();
    let out = service.query(&q).unwrap();
    assert_eq!(out.rows.len(), 2);
}
