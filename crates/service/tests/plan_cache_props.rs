//! Property test for the plan cache (satellite of the service work):
//! answering through a **cached** compile for `(program, predicate,
//! adornment)` must be indistinguishable from a **fresh** `lemma1` +
//! `Evaluator` run, across the `rq-workloads` generators (fig7, fig8,
//! randprog) and both adornments.

use proptest::prelude::*;
use rq_common::Const;
use rq_engine::{
    cyclic_iteration_bound, inverse_cyclic_iteration_bound, EdbSource, EvalOptions, Evaluator,
};
use rq_relalg::{lemma1, Lemma1Options};
use rq_service::{QueryService, QuerySpec, ServiceConfig};
use rq_workloads::randprog::{random_program, RandProgConfig, RecursionStyle};
use rq_workloads::{fig7, fig8, Workload};

/// Fresh pipeline (no caches anywhere) for one point query.
fn fresh_rows(workload: &Workload, spec: &QuerySpec) -> Vec<Vec<Const>> {
    let db = rq_datalog::Database::from_program(&workload.program);
    let system = lemma1(&workload.program, &Lemma1Options::default())
        .expect("binary-chain")
        .system;
    let source = EdbSource::new(&db);
    let evaluator = Evaluator::new(&system, &source);
    let constant = spec.bound_values()[0];
    let inverse = spec.free_positions() == vec![0];
    let max_iterations = if inverse {
        inverse_cyclic_iteration_bound(&system, &db, spec.pred, constant)
    } else {
        cyclic_iteration_bound(&system, &db, spec.pred, constant)
    }
    .map(|b| b + 1);
    let options = EvalOptions {
        max_iterations,
        ..EvalOptions::default()
    };
    let outcome = if inverse {
        evaluator.evaluate_inverse(spec.pred, constant, &options)
    } else {
        evaluator.evaluate(spec.pred, constant, &options)
    };
    let mut rows: Vec<Vec<Const>> = outcome.answers.into_iter().map(|c| vec![c]).collect();
    rows.sort_unstable();
    rows
}

/// Ask the service the same query twice — a plan-cache miss, then a
/// hit that also bypasses the result cache check by construction — and
/// require both to equal the fresh run.
fn check_cached_equals_fresh(workload: &Workload, pred_name: &str) {
    let service = QueryService::with_config(
        workload.program.clone(),
        ServiceConfig {
            threads: 1,
            ..ServiceConfig::default()
        },
    );
    let snapshot = service.snapshot();
    let pred = snapshot.program().pred_by_name(pred_name).unwrap();
    let constants: Vec<Const> = (0..snapshot.program().consts.len().min(12))
        .map(Const::from_index)
        .collect();
    for constant in constants {
        for spec in [
            QuerySpec::bound_free(pred, constant),
            QuerySpec::free_bound(pred, constant),
        ] {
            let fresh = fresh_rows(workload, &spec);
            let first = service.query(&spec).unwrap();
            assert!(!first.from_cache);
            assert_eq!(*first.rows, fresh, "{}: first {:?}", workload.name, spec);
            let memoized = service.query(&spec).unwrap();
            assert!(memoized.from_cache, "second ask must memoize");
            assert_eq!(
                *memoized.rows, fresh,
                "{}: memoized {:?}",
                workload.name, spec
            );
        }
    }
    // Everything above compiled the program exactly once.
    assert_eq!(service.plan_cache().programs(), 1, "{}", workload.name);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn fig7_cached_plans_answer_like_fresh_compiles(
        sample in 0usize..3,
        n in 2usize..10,
    ) {
        let workload = [fig7::sample_a, fig7::sample_b, fig7::sample_c][sample](n);
        check_cached_equals_fresh(&workload, "sg");
    }

    #[test]
    fn fig8_cached_plans_answer_like_fresh_compiles(
        m in 1usize..5,
        n in 1usize..5,
    ) {
        check_cached_equals_fresh(&fig8::cyclic(m, n), "sg");
    }

    #[test]
    fn randprog_cached_plans_answer_like_fresh_compiles(
        seed in 0u64..500,
        style_pick in 0usize..3,
        groups in 1usize..3,
        domain in 4usize..10,
        facts in 4usize..16,
    ) {
        let style = [
            RecursionStyle::Regular,
            RecursionStyle::MiddleLinear,
            RecursionStyle::Mixed,
        ][style_pick];
        let rp = random_program(&RandProgConfig {
            seed,
            groups,
            style,
            domain,
            facts_per_base: facts,
            ..RandProgConfig::default()
        });
        let workload = Workload {
            name: format!("randprog(seed={seed})"),
            program: rp.program.clone(),
            query: format!("{}(n0, Y)", rp.derived[0]),
            expected_answers: None,
        };
        for name in &rp.derived {
            check_cached_equals_fresh(&workload, name);
        }
    }
}
