//! Acceptance tests for the service: every answer the concurrent,
//! cached pipeline produces must be **byte-identical** (same sorted
//! constant vector) to what the single-threaded `rq_engine::Evaluator`
//! produces on the same snapshot — across the `rq-workloads` scenarios
//! and under concurrent ingestion.  The seminaive bottom-up oracle
//! cross-checks converged answers through a completely different code
//! path.

use rq_common::Const;
use rq_datalog::seminaive_eval;
use rq_engine::{
    cyclic_iteration_bound, inverse_cyclic_iteration_bound, EdbSource, EvalOptions, Evaluator,
};
use rq_relalg::{lemma1, Lemma1Options};
use rq_service::{
    Adornment, PointQuery, QueryService, ServeQuery, ServiceAnswer, ServiceConfig, ServiceError,
    Snapshot,
};
use rq_workloads::randprog::{seeded, RecursionStyle};
use rq_workloads::{fig7, fig8, graphs, Workload};
use std::sync::Arc;

/// Every constant interned by the program — the query surface.
fn all_constants(snapshot: &Snapshot) -> Vec<Const> {
    (0..snapshot.program().consts.len())
        .map(Const::from_index)
        .collect()
}

/// Fan a batch of point queries through the service's general batch
/// front end.
fn point_batch(
    service: &QueryService,
    queries: &[PointQuery],
) -> Vec<Result<ServiceAnswer, ServiceError>> {
    let wrapped: Vec<ServeQuery> = queries.iter().map(|&q| q.into()).collect();
    service.query_batch(&wrapped)
}

/// A fresh Lemma 1 compile, independent of the service's plan cache.
fn oracle_system(snapshot: &Snapshot) -> rq_relalg::EqSystem {
    lemma1(snapshot.program(), &Lemma1Options::default())
        .expect("workload programs are binary-chain")
        .system
}

/// The single-threaded oracle: a fresh `Evaluator` run on `snapshot`,
/// with the same cyclic guard the service applies.  (`system` is
/// hoisted by callers because rules — and so the system — never change
/// across epochs.)
fn oracle_answers(
    system: &rq_relalg::EqSystem,
    snapshot: &Snapshot,
    query: &PointQuery,
) -> Vec<Const> {
    let source = EdbSource::new(snapshot.db());
    let evaluator = Evaluator::new(system, &source);
    let max_iterations = match query.adornment {
        Adornment::BoundFree => {
            cyclic_iteration_bound(system, snapshot.db(), query.pred, query.constant)
        }
        Adornment::FreeBound => {
            inverse_cyclic_iteration_bound(system, snapshot.db(), query.pred, query.constant)
        }
    }
    .map(|b| b + 1);
    let options = EvalOptions {
        max_iterations,
        ..EvalOptions::default()
    };
    let outcome = match query.adornment {
        Adornment::BoundFree => evaluator.evaluate(query.pred, query.constant, &options),
        Adornment::FreeBound => evaluator.evaluate_inverse(query.pred, query.constant, &options),
    };
    let mut answers: Vec<Const> = outcome.answers.into_iter().collect();
    answers.sort_unstable();
    answers
}

/// The bottom-up oracle (different pipeline entirely).
fn seminaive_answers(snapshot: &Snapshot, query: &PointQuery) -> Vec<Const> {
    let result = seminaive_eval(snapshot.program()).expect("workloads have no builtins");
    let mut answers: Vec<Const> = result
        .tuples(query.pred)
        .into_iter()
        .filter_map(|t| match query.adornment {
            Adornment::BoundFree => (t[0] == query.constant).then_some(t[1]),
            Adornment::FreeBound => (t[1] == query.constant).then_some(t[0]),
        })
        .collect();
    answers.sort_unstable();
    answers.dedup();
    answers
}

/// Run every (constant, adornment) point query of `workload` through a
/// 4-worker batch and diff each answer against both oracles.
fn check_workload(workload: &Workload) {
    let service = QueryService::with_config(
        workload.program.clone(),
        ServiceConfig {
            threads: 4,
            ..ServiceConfig::default()
        },
    );
    let snapshot = service.snapshot();
    let pred = {
        let name = workload.query.split('(').next().unwrap().trim();
        snapshot.program().pred_by_name(name).unwrap()
    };
    let queries: Vec<PointQuery> = all_constants(&snapshot)
        .into_iter()
        .flat_map(|constant| {
            [Adornment::BoundFree, Adornment::FreeBound].map(|adornment| PointQuery {
                pred,
                adornment,
                constant,
            })
        })
        .collect();
    let batch = point_batch(&service, &queries);
    assert_eq!(batch.len(), queries.len());
    let system = oracle_system(&snapshot);
    for (query, result) in queries.iter().zip(&batch) {
        let answer = result.as_ref().unwrap_or_else(|e| {
            panic!("{}: query failed: {e}", workload.name);
        });
        let oracle = oracle_answers(&system, &snapshot, query);
        assert_eq!(
            *answer.answers, oracle,
            "{}: batch answer != single-threaded Evaluator oracle for {:?}",
            workload.name, query
        );
        if answer.converged {
            let bottom_up = seminaive_answers(&snapshot, query);
            assert_eq!(
                *answer.answers, bottom_up,
                "{}: converged answer != seminaive oracle for {:?}",
                workload.name, query
            );
        }
    }
}

#[test]
fn fig7_scenarios_match_oracles() {
    for workload in [fig7::sample_a(12), fig7::sample_b(10), fig7::sample_c(10)] {
        check_workload(&workload);
    }
}

#[test]
fn fig8_cyclic_scenarios_match_oracles() {
    for (m, n) in [(1, 1), (2, 3), (3, 5), (4, 6)] {
        let workload = fig8::cyclic(m, n);
        check_workload(&workload);
        // Sanity: the analytically known answer count holds at the
        // query the workload names.
        let service = QueryService::new(workload.program.clone());
        let q = service.parse_query(&workload.query).unwrap();
        let out = service.query(&q).unwrap();
        assert_eq!(Some(out.answers.len()), workload.expected_answers);
    }
}

#[test]
fn graph_scenarios_match_oracles() {
    for workload in [
        graphs::chain(24),
        graphs::binary_tree(4),
        graphs::grid(4, 4),
        graphs::layered_dag(4, 4, 0.5, 7),
        graphs::sg_tree(3),
    ] {
        check_workload(&workload);
    }
}

#[test]
fn random_programs_match_oracles() {
    for seed in 0..6 {
        for style in [
            RecursionStyle::Regular,
            RecursionStyle::MiddleLinear,
            RecursionStyle::Mixed,
        ] {
            let rp = seeded(seed, style);
            let service = QueryService::with_config(
                rp.program.clone(),
                ServiceConfig {
                    threads: 3,
                    ..ServiceConfig::default()
                },
            );
            let snapshot = service.snapshot();
            let system = oracle_system(&snapshot);
            for name in &rp.derived {
                let pred = snapshot.program().pred_by_name(name).unwrap();
                let queries: Vec<PointQuery> = all_constants(&snapshot)
                    .into_iter()
                    .flat_map(|constant| {
                        [Adornment::BoundFree, Adornment::FreeBound].map(|adornment| PointQuery {
                            pred,
                            adornment,
                            constant,
                        })
                    })
                    .collect();
                for (query, result) in queries.iter().zip(point_batch(&service, &queries)) {
                    let answer = result.unwrap();
                    assert_eq!(
                        *answer.answers,
                        oracle_answers(&system, &snapshot, query),
                        "randprog seed {seed} {name}: {:?}",
                        query
                    );
                }
            }
        }
    }
}

/// The concurrency-correctness test the tentpole asks for: a writer
/// ingests rounds of fresh edges while reader threads answer batches;
/// every answer is then diffed against the single-threaded oracle **on
/// the exact snapshot (epoch) it was computed from**.
#[test]
fn mixed_ingest_and_query_workload_matches_oracle_per_epoch() {
    const ROUNDS: usize = 8;
    let service = Arc::new(QueryService::with_config(
        rq_datalog::parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(n0,n1). e(n1,n2). e(n2,n3).",
        )
        .unwrap(),
        ServiceConfig {
            threads: 2,
            ..ServiceConfig::default()
        },
    ));

    // Recorded (query, answer) pairs from the readers, and every
    // snapshot the writer published (epoch 0 included).
    let mut snapshots: Vec<Arc<Snapshot>> = vec![service.snapshot()];
    let mut recorded: Vec<(PointQuery, rq_service::ServiceAnswer)> = Vec::new();

    std::thread::scope(|scope| {
        let writer = {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let mut published = Vec::new();
                for round in 0..ROUNDS {
                    // Edges connecting new constants into the chain,
                    // plus a back edge to create cycles mid-run.
                    let facts = format!(
                        "e(n{}, m{round}). e(m{round}, n0). e(n3, n{}).",
                        round % 4,
                        (round + 1) % 4,
                    );
                    published.push(service.ingest(&facts).expect("ingest"));
                    std::thread::yield_now();
                }
                published
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|reader| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    for round in 0..ROUNDS {
                        let snapshot = service.snapshot();
                        let pred = snapshot.program().pred_by_name("tc").unwrap();
                        let queries: Vec<PointQuery> = all_constants(&snapshot)
                            .into_iter()
                            .flat_map(|constant| {
                                [Adornment::BoundFree, Adornment::FreeBound].map(|adornment| {
                                    PointQuery {
                                        pred,
                                        adornment,
                                        constant,
                                    }
                                })
                            })
                            .collect();
                        for (query, result) in queries.iter().zip(point_batch(&service, &queries)) {
                            seen.push((*query, result.unwrap()));
                        }
                        if (round + reader) % 2 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    seen
                })
            })
            .collect();
        snapshots.extend(writer.join().expect("writer panicked"));
        for reader in readers {
            recorded.extend(reader.join().expect("reader panicked"));
        }
    });

    assert_eq!(snapshots.len(), ROUNDS + 1);
    assert!(recorded.len() >= ROUNDS * 3, "readers actually ran");
    // Rules never change, so one system serves every epoch.
    let system = oracle_system(&snapshots[0]);
    // Epochs answered may lag the writer but must all exist.
    for (query, answer) in &recorded {
        let snapshot = snapshots
            .iter()
            .find(|s| s.epoch() == answer.epoch)
            .expect("answer from a published epoch");
        assert_eq!(
            *answer.answers,
            oracle_answers(&system, snapshot, query),
            "epoch {} {:?}",
            answer.epoch,
            query
        );
    }
    // The caches actually served: plans compiled once per epoch at most,
    // and the result cache took hits under repetition.
    assert!(service.plan_cache().stats().hits > 0);
    assert!(service.result_cache().stats().hits > 0);
    assert_eq!(service.plan_cache().programs(), 1, "plans survive ingest");
}
