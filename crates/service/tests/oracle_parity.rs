//! Acceptance tests for the service: every answer the concurrent,
//! cached pipeline produces must be **byte-identical** (same sorted
//! row vector) to what the single-threaded `rq_engine::Evaluator`
//! produces on the same snapshot — across the `rq-workloads` scenarios
//! and under concurrent ingestion.  The seminaive bottom-up oracle
//! cross-checks converged answers through a completely different code
//! path.

use rq_common::Const;
use rq_datalog::seminaive_eval;
use rq_engine::{
    cyclic_iteration_bound, inverse_cyclic_iteration_bound, EdbSource, EvalOptions, Evaluator,
};
use rq_relalg::{lemma1, Lemma1Options};
use rq_service::{QueryService, QuerySpec, ServiceAnswer, ServiceConfig, ServiceError, Snapshot};
use rq_workloads::randprog::{seeded, RecursionStyle};
use rq_workloads::{fig7, fig8, graphs, Workload};
use std::sync::Arc;

/// Every constant interned by the program — the query surface.
fn all_constants(snapshot: &Snapshot) -> Vec<Const> {
    (0..snapshot.program().consts.len())
        .map(Const::from_index)
        .collect()
}

/// Both binary point forms for every constant of the snapshot.
fn point_specs(snapshot: &Snapshot, pred: rq_common::Pred) -> Vec<QuerySpec> {
    all_constants(snapshot)
        .into_iter()
        .flat_map(|constant| {
            [
                QuerySpec::bound_free(pred, constant),
                QuerySpec::free_bound(pred, constant),
            ]
        })
        .collect()
}

/// A fresh Lemma 1 compile, independent of the service's plan cache.
fn oracle_system(snapshot: &Snapshot) -> rq_relalg::EqSystem {
    lemma1(snapshot.program(), &Lemma1Options::default())
        .expect("workload programs are binary-chain")
        .system
}

/// The single-threaded oracle: a fresh `Evaluator` run on `snapshot`,
/// with the same cyclic guard the service applies.  (`system` is
/// hoisted by callers because rules — and so the system — never change
/// across epochs.)
fn oracle_rows(
    system: &rq_relalg::EqSystem,
    snapshot: &Snapshot,
    spec: &QuerySpec,
) -> Vec<Vec<Const>> {
    let source = EdbSource::new(snapshot.db());
    let evaluator = Evaluator::new(system, &source);
    let constant = spec.bound_values()[0];
    let inverse = spec.free_positions() == vec![0];
    let max_iterations = if inverse {
        inverse_cyclic_iteration_bound(system, snapshot.db(), spec.pred, constant)
    } else {
        cyclic_iteration_bound(system, snapshot.db(), spec.pred, constant)
    }
    .map(|b| b + 1);
    let options = EvalOptions {
        max_iterations,
        ..EvalOptions::default()
    };
    let outcome = if inverse {
        evaluator.evaluate_inverse(spec.pred, constant, &options)
    } else {
        evaluator.evaluate(spec.pred, constant, &options)
    };
    let mut rows: Vec<Vec<Const>> = outcome.answers.into_iter().map(|c| vec![c]).collect();
    rows.sort_unstable();
    rows
}

/// The bottom-up oracle (different pipeline entirely).
fn seminaive_rows(snapshot: &Snapshot, spec: &QuerySpec) -> Vec<Vec<Const>> {
    let result = seminaive_eval(snapshot.program()).expect("workloads have no builtins");
    let constant = spec.bound_values()[0];
    let inverse = spec.free_positions() == vec![0];
    let mut rows: Vec<Vec<Const>> = result
        .tuples(spec.pred)
        .into_iter()
        .filter_map(|t| {
            if inverse {
                (t[1] == constant).then_some(vec![t[0]])
            } else {
                (t[0] == constant).then_some(vec![t[1]])
            }
        })
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// Run every (constant, adornment) point query of `workload` through a
/// 4-worker batch and diff each answer against both oracles.
fn check_workload(workload: &Workload) {
    let service = QueryService::with_config(
        workload.program.clone(),
        ServiceConfig {
            threads: 4,
            ..ServiceConfig::default()
        },
    );
    let snapshot = service.snapshot();
    let pred = {
        let name = workload.query.split('(').next().unwrap().trim();
        snapshot.program().pred_by_name(name).unwrap()
    };
    let queries = point_specs(&snapshot, pred);
    let batch = service.query_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    let system = oracle_system(&snapshot);
    for (query, result) in queries.iter().zip(&batch) {
        let answer = result.as_ref().unwrap_or_else(|e| {
            panic!("{}: query failed: {e}", workload.name);
        });
        let oracle = oracle_rows(&system, &snapshot, query);
        assert_eq!(
            *answer.rows, oracle,
            "{}: batch answer != single-threaded Evaluator oracle for {:?}",
            workload.name, query
        );
        if answer.converged {
            let bottom_up = seminaive_rows(&snapshot, query);
            assert_eq!(
                *answer.rows, bottom_up,
                "{}: converged answer != seminaive oracle for {:?}",
                workload.name, query
            );
        }
    }
}

#[test]
fn fig7_scenarios_match_oracles() {
    for workload in [fig7::sample_a(12), fig7::sample_b(10), fig7::sample_c(10)] {
        check_workload(&workload);
    }
}

#[test]
fn fig8_cyclic_scenarios_match_oracles() {
    for (m, n) in [(1, 1), (2, 3), (3, 5), (4, 6)] {
        let workload = fig8::cyclic(m, n);
        check_workload(&workload);
        // Sanity: the analytically known answer count holds at the
        // query the workload names.
        let service = QueryService::new(workload.program.clone());
        let q = service.parse_query(&workload.query).unwrap();
        let out = service.query(&q).unwrap();
        assert_eq!(Some(out.rows.len()), workload.expected_answers);
    }
}

#[test]
fn graph_scenarios_match_oracles() {
    for workload in [
        graphs::chain(24),
        graphs::binary_tree(4),
        graphs::grid(4, 4),
        graphs::layered_dag(4, 4, 0.5, 7),
        graphs::sg_tree(3),
    ] {
        check_workload(&workload);
    }
}

#[test]
fn random_programs_match_oracles() {
    for seed in 0..6 {
        for style in [
            RecursionStyle::Regular,
            RecursionStyle::MiddleLinear,
            RecursionStyle::Mixed,
        ] {
            let rp = seeded(seed, style);
            let service = QueryService::with_config(
                rp.program.clone(),
                ServiceConfig {
                    threads: 3,
                    ..ServiceConfig::default()
                },
            );
            let snapshot = service.snapshot();
            let system = oracle_system(&snapshot);
            for name in &rp.derived {
                let pred = snapshot.program().pred_by_name(name).unwrap();
                let queries = point_specs(&snapshot, pred);
                for (query, result) in queries.iter().zip(service.query_batch(&queries)) {
                    let answer = result.unwrap();
                    assert_eq!(
                        *answer.rows,
                        oracle_rows(&system, &snapshot, query),
                        "randprog seed {seed} {name}: {:?}",
                        query
                    );
                }
            }
        }
    }
}

/// Membership queries agree with the point-query answer set, on every
/// (source, target) pair of a cyclic workload — the early-exit fast
/// path must not change any verdict.
#[test]
fn membership_queries_match_point_answers() {
    let workload = fig8::cyclic(2, 3);
    let service = QueryService::new(workload.program.clone());
    let snapshot = service.snapshot();
    let pred = snapshot.program().pred_by_name("sg").unwrap();
    for a in all_constants(&snapshot) {
        let point = service.query(&QuerySpec::bound_free(pred, a)).unwrap();
        for b in all_constants(&snapshot) {
            let bb = service.query(&QuerySpec::bound_bound(pred, a, b)).unwrap();
            assert_eq!(
                bb.holds(),
                point.rows.iter().any(|r| r[0] == b),
                "sg({a:?}, {b:?}) membership disagrees with sg({a:?}, Y)"
            );
        }
    }
}

/// The concurrency-correctness test the tentpole asks for: a writer
/// ingests rounds of fresh edges while reader threads answer batches;
/// every answer is then diffed against the single-threaded oracle **on
/// the exact snapshot (epoch) it was computed from**.
#[test]
fn mixed_ingest_and_query_workload_matches_oracle_per_epoch() {
    const ROUNDS: usize = 8;
    let service = Arc::new(QueryService::with_config(
        rq_datalog::parse_program(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(n0,n1). e(n1,n2). e(n2,n3).",
        )
        .unwrap(),
        ServiceConfig {
            threads: 2,
            ..ServiceConfig::default()
        },
    ));

    // Recorded (query, answer) pairs from the readers, and every
    // snapshot the writer published (epoch 0 included).
    let mut snapshots: Vec<Arc<Snapshot>> = vec![service.snapshot()];
    let mut recorded: Vec<(QuerySpec, ServiceAnswer)> = Vec::new();

    std::thread::scope(|scope| {
        let writer = {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let mut published = Vec::new();
                for round in 0..ROUNDS {
                    // Edges connecting new constants into the chain,
                    // plus a back edge to create cycles mid-run.
                    let facts = format!(
                        "e(n{}, m{round}). e(m{round}, n0). e(n3, n{}).",
                        round % 4,
                        (round + 1) % 4,
                    );
                    published.push(service.ingest(&facts).expect("ingest"));
                    std::thread::yield_now();
                }
                published
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|reader| {
                let service = Arc::clone(&service);
                scope.spawn(move || {
                    let mut seen: Vec<(QuerySpec, ServiceAnswer)> = Vec::new();
                    for round in 0..ROUNDS {
                        let snapshot = service.snapshot();
                        let pred = snapshot.program().pred_by_name("tc").unwrap();
                        let queries = point_specs(&snapshot, pred);
                        for (query, result) in queries.iter().zip(service.query_batch(&queries)) {
                            seen.push((query.clone(), result.unwrap()));
                        }
                        if (round + reader) % 2 == 0 {
                            std::thread::yield_now();
                        }
                    }
                    seen
                })
            })
            .collect();
        snapshots.extend(writer.join().expect("writer panicked"));
        for reader in readers {
            recorded.extend(reader.join().expect("reader panicked"));
        }
    });

    assert_eq!(snapshots.len(), ROUNDS + 1);
    assert!(recorded.len() >= ROUNDS * 3, "readers actually ran");
    // Rules never change, so one system serves every epoch.
    let system = oracle_system(&snapshots[0]);
    // Epochs answered may lag the writer but must all exist.
    for (query, answer) in &recorded {
        let snapshot = snapshots
            .iter()
            .find(|s| s.epoch() == answer.epoch)
            .expect("answer from a published epoch");
        assert_eq!(
            *answer.rows,
            oracle_rows(&system, snapshot, query),
            "epoch {} {:?}",
            answer.epoch,
            query
        );
    }
    // The caches actually served: plans compiled once per epoch at most,
    // and the result cache took hits under repetition.
    assert!(service.plan_cache().stats().hits > 0);
    assert!(service.result_cache().stats().hits > 0);
    assert_eq!(service.plan_cache().programs(), 1, "plans survive ingest");
}

/// Sanity on the error path: a batch mixing good and bad specs reports
/// errors inline without disturbing its neighbors.
#[test]
fn batch_surfaces_errors_inline() {
    let service =
        QueryService::from_source("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b).")
            .unwrap();
    let snapshot = service.snapshot();
    let tc = snapshot.program().pred_by_name("tc").unwrap();
    let a = all_constants(&snapshot)[0];
    // A hand-built spec whose arity disagrees with the predicate
    // surfaces an inline error rather than poisoning the batch.
    let bad = QuerySpec::new(
        tc,
        [
            rq_service::Arg::Bound(a),
            rq_service::Arg::Free(0),
            rq_service::Arg::Free(1),
        ],
    );
    let good = QuerySpec::bound_free(tc, a);
    let batch = service.query_batch(&[good.clone(), bad, good]);
    assert!(batch[0].is_ok());
    assert!(matches!(batch[1], Err(ServiceError::ArityMismatch { .. })));
    assert!(batch[2].is_ok());
}
