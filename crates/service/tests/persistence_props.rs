//! Property tests for the persistent predicate-sharded storage layer:
//! a database grown through k copy-on-write ingests must be
//! **indistinguishable** from a database rebuilt from scratch out of
//! the final program — same relations, same tuples, same query answers
//! — while sharing every untouched shard with its parent epoch
//! (`Arc::ptr_eq`), which is what makes the epochs O(delta).

use proptest::prelude::*;
use rq_common::{FxHashSet, Pred};
use rq_datalog::Database;
use rq_service::{QueryService, ServiceConfig, Snapshot};
use rq_store::{MemBackend, StorageBackend};
use std::sync::Arc;

/// Rules mixing a binary-chain closure over `e` with the §4 n-ary
/// flights program over `flight`/`is_deptime` — two disjoint read
/// footprints under one service.
const MIXED_RULES: &str = "\
tc(X,Y) :- e(X,Y).\n\
tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
e(n0,n1). flight(hel,540,ams,690). flight(ams,720,cdg,810).\n\
is_deptime(540). is_deptime(720).";

const RULES: &str = "tc(X,Y) :- e(X,Y).\n\
                     tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                     e(n0,n1).";

/// One ingested batch: facts over a small universe spread across a few
/// base relations (`e` plus fresh `r<k>` predicates), with plenty of
/// duplicate collisions.
fn batch_text(batch: &[(u8, u8, u8)]) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for &(rel, x, y) in batch {
        let rel = rel % 4;
        if rel == 0 {
            writeln!(text, "e(n{}, n{}).", x % 12, y % 12).unwrap();
        } else {
            writeln!(text, "r{rel}(n{}, n{}).", x % 12, y % 12).unwrap();
        }
    }
    text
}

/// Every `(pred, sorted tuple set)` of a database, for equality checks.
fn db_contents(snapshot: &Snapshot, db: &Database) -> Vec<(Pred, Vec<Vec<rq_common::Const>>)> {
    let mut out = Vec::new();
    for pred in snapshot.program().preds.ids() {
        let mut tuples: Vec<Vec<rq_common::Const>> =
            db.relation(pred).iter().map(|t| t.to_vec()).collect();
        tuples.sort();
        out.push((pred, tuples));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any sequence of ingests, the persistent database equals a
    /// database rebuilt from scratch from the final program's facts.
    #[test]
    fn grown_database_equals_rebuilt_database(
        batches in prop::collection::vec(
            prop::collection::vec((0..255u8, 0..255u8, 0..255u8), 1..8),
            1..6,
        )
    ) {
        let service = QueryService::from_source(RULES).unwrap();
        for batch in &batches {
            service.ingest(&batch_text(batch)).unwrap();
        }
        let snapshot = service.snapshot();
        prop_assert_eq!(snapshot.epoch(), batches.len() as u64);
        let rebuilt = Database::from_program(snapshot.program());
        prop_assert_eq!(
            db_contents(&snapshot, snapshot.db()),
            db_contents(&snapshot, &rebuilt)
        );
        prop_assert_eq!(snapshot.db().total_tuples(), rebuilt.total_tuples());
        // The bottom-up oracle agrees between the two databases, so the
        // persistent EDB is semantically interchangeable with a fresh one.
        let oracle = rq_datalog::seminaive_eval(snapshot.program()).unwrap();
        let tc = snapshot.program().pred_by_name("tc").unwrap();
        let q = service.parse_query("tc(n0, Y)").unwrap();
        let served = service.query(&q).unwrap();
        let mut expected: Vec<Vec<rq_common::Const>> = oracle
            .tuples(tc)
            .into_iter()
            .filter_map(|t| {
                (snapshot.program().consts.display(t[0]) == "n0").then_some(vec![t[1]])
            })
            .collect();
        expected.sort_unstable();
        expected.dedup();
        if served.converged {
            prop_assert_eq!(served.rows.as_ref().clone(), expected);
        }
    }

    /// Result-cache entries keyed on **generalized adornments** (the
    /// §4 n-ary `cnx^bbff` entry and the binary `tc` entry, both served
    /// through the transformed pipeline) survive publishes that dirty
    /// only predicates outside their plan's read-set; when their own
    /// footprint is dirtied, the delta repair keeps them alive with
    /// **refreshed** rows (fresh `Arc`, correct against the bottom-up
    /// oracle) instead of dropping them.
    #[test]
    fn nary_adorned_entries_survive_unrelated_publishes(
        // Each step ingests into the tc side (0) or the cnx side (1).
        steps in prop::collection::vec(0..2u8, 1..8)
    ) {
        let service = QueryService::with_config(
            rq_datalog::parse_program(MIXED_RULES).unwrap(),
            ServiceConfig { threads: 1, ..ServiceConfig::default() },
        );
        let tc_q = service.parse_query("tc(n0, Y)").unwrap();
        let cnx_q = service.parse_query("cnx(hel, 540, D, AT)").unwrap();
        let mut tc_rows = service.query(&tc_q).unwrap().rows;
        let mut cnx_rows = service.query(&cnx_q).unwrap().rows;
        for (i, &step) in steps.iter().enumerate() {
            let touch_cnx = step == 1;
            let snap = if touch_cnx {
                // A new flight leg reachable from cdg keeps answers
                // changing, not just growing the fringe.
                service.ingest(&format!(
                    "flight(cdg, {dt}, x{i}, {at}). is_deptime({dt}).",
                    dt = 840 + i as i64,
                    at = 930 + i as i64,
                )).unwrap()
            } else {
                // Fresh edges only: a duplicate-only ingest dirties
                // nothing and (correctly) evicts nothing.
                service
                    .ingest(&format!("e(n{}, n{}).", i + 1, i + 2))
                    .unwrap()
            };
            prop_assert_eq!(snap.epoch(), i as u64 + 1);
            let tc_after = service.query(&tc_q).unwrap();
            let cnx_after = service.query(&cnx_q).unwrap();
            if touch_cnx {
                // The cnx entry was dirtied: repaired alive, new rows.
                prop_assert!(tc_after.from_cache, "tc entry must survive a flight publish");
                prop_assert!(Arc::ptr_eq(&tc_rows, &tc_after.rows));
                prop_assert!(cnx_after.from_cache, "cnx entry must be repaired alive");
                prop_assert!(
                    !Arc::ptr_eq(&cnx_rows, &cnx_after.rows),
                    "repaired cnx entry must hold refreshed rows"
                );
            } else {
                prop_assert!(cnx_after.from_cache, "cnx entry must survive an e publish");
                prop_assert!(Arc::ptr_eq(&cnx_rows, &cnx_after.rows));
                prop_assert!(tc_after.from_cache, "tc entry must be repaired alive");
                prop_assert!(
                    !Arc::ptr_eq(&tc_rows, &tc_after.rows),
                    "repaired tc entry must hold refreshed rows"
                );
            }
            prop_assert_eq!(tc_after.epoch, snap.epoch());
            prop_assert_eq!(cnx_after.epoch, snap.epoch());
            // Whatever the cache did, answers equal the bottom-up
            // oracle on the current snapshot.
            let oracle = rq_datalog::seminaive_eval(snap.program()).unwrap();
            let tc = snap.program().pred_by_name("tc").unwrap();
            let n0 = snap.program().consts.get(
                &rq_common::ConstValue::Str("n0".into())).unwrap();
            let mut expected: Vec<Vec<rq_common::Const>> = oracle
                .tuples(tc)
                .into_iter()
                .filter(|t| t[0] == n0)
                .map(|t| vec![t[1]])
                .collect();
            expected.sort();
            expected.dedup();
            prop_assert_eq!(tc_after.rows.as_ref().clone(), expected);
            let cnx = snap.program().pred_by_name("cnx").unwrap();
            let mut cnx_expected: Vec<Vec<rq_common::Const>> = oracle
                .tuples(cnx)
                .into_iter()
                .filter(|t| {
                    snap.program().consts.display(t[0]) == "hel"
                        && snap.program().consts.display(t[1]) == "540"
                })
                .map(|t| vec![t[2], t[3]])
                .collect();
            cnx_expected.sort();
            cnx_expected.dedup();
            prop_assert_eq!(cnx_after.rows.as_ref().clone(), cnx_expected);
            tc_rows = tc_after.rows;
            cnx_rows = cnx_after.rows;
        }
    }

    /// The replay oracle: N random ingests into a durable service,
    /// then a clean restart (write-ahead-log replay, no crash), must
    /// equal the never-restarted service exactly — same epoch, same
    /// interner ids, same database contents, same answers — memoizing
    /// and non-memoizing, 4 worker threads.
    #[test]
    fn restarted_service_equals_the_never_restarted_one(
        batches in prop::collection::vec(
            prop::collection::vec((0..255u8, 0..255u8, 0..255u8), 1..8),
            1..6,
        ),
        memoize_bit in 0..2u8,
    ) {
        let config = || ServiceConfig {
            threads: 4,
            memoize_results: memoize_bit == 1,
            ..ServiceConfig::default()
        };
        let parse = || rq_datalog::parse_program(RULES).unwrap();
        // The never-restarted oracle runs in memory; the subject runs
        // durably and is reopened from its backend after the workload.
        let oracle = QueryService::with_config(parse(), config());
        let backend = Arc::new(MemBackend::new());
        {
            let durable = QueryService::open_backend(
                parse(), backend.clone() as Arc<dyn StorageBackend>, config(),
            ).unwrap();
            for batch in &batches {
                let text = batch_text(batch);
                oracle.ingest(&text).unwrap();
                durable.ingest(&text).unwrap();
            }
        }
        let restarted = QueryService::open_backend(
            parse(), backend.clone() as Arc<dyn StorageBackend>, config(),
        ).unwrap();
        let a = restarted.snapshot();
        let b = oracle.snapshot();
        prop_assert_eq!(a.epoch(), b.epoch());
        prop_assert_eq!(a.program().consts.len(), b.program().consts.len());
        for i in 0..a.program().consts.len() {
            let c = rq_common::Const::from_index(i);
            prop_assert_eq!(a.program().consts.value(c), b.program().consts.value(c));
        }
        prop_assert_eq!(db_contents(&a, a.db()), db_contents(&b, b.db()));
        // Identical answers in raw interner ids, the byte-parity seam
        // the wire layer serializes through.
        let q_restarted = restarted.parse_query("tc(n0, Y)").unwrap();
        let q_oracle = oracle.parse_query("tc(n0, Y)").unwrap();
        prop_assert_eq!(
            restarted.query(&q_restarted).unwrap().rows.as_ref().clone(),
            oracle.query(&q_oracle).unwrap().rows.as_ref().clone()
        );
    }

    /// Every publish shares each shard it did not dirty with the parent
    /// epoch, pointer-identically.
    #[test]
    fn publishes_share_every_clean_shard(
        batches in prop::collection::vec(
            prop::collection::vec((0..255u8, 0..255u8, 0..255u8), 1..8),
            1..6,
        )
    ) {
        let service = QueryService::with_config(
            rq_datalog::parse_program(RULES).unwrap(),
            ServiceConfig { threads: 1, ..ServiceConfig::default() },
        );
        let mut parent = service.snapshot();
        for batch in &batches {
            let next = service.ingest(&batch_text(batch)).unwrap();
            let dirty: &FxHashSet<Pred> = next.dirty_preds();
            for pred in parent.program().preds.ids() {
                let before = parent.db().shard(pred).unwrap();
                let after = next.db().shard(pred).unwrap();
                if dirty.contains(&pred) {
                    prop_assert!(
                        !Arc::ptr_eq(before, after),
                        "dirty shard {:?} must detach", pred
                    );
                } else {
                    prop_assert!(
                        Arc::ptr_eq(before, after),
                        "clean shard {:?} must stay shared", pred
                    );
                }
            }
            parent = next;
        }
    }

    /// Publish-time shard compaction is invisible to readers: the
    /// compacted (published) database reads exactly like an
    /// uncompacted twin grown by the same inserts, every dirty shard
    /// ends a publish with no tail excess, and clean shards keep their
    /// structural sharing with the parent epoch.
    #[test]
    fn compacted_shards_read_like_uncompacted_ones(
        batches in prop::collection::vec(
            prop::collection::vec((0..255u8, 0..255u8, 0..255u8), 1..8),
            1..6,
        )
    ) {
        let service = QueryService::with_config(
            rq_datalog::parse_program(RULES).unwrap(),
            ServiceConfig { threads: 1, ..ServiceConfig::default() },
        );
        // The uncompacted twin: the same growth applied to a plain
        // database that never runs compaction.
        let mut twin = Database::from_program(service.snapshot().program());
        for batch in &batches {
            let next = service.ingest(&batch_text(batch)).unwrap();
            for pred in next.program().preds.ids() {
                twin.ensure_pred(pred, next.program().arity(pred));
            }
            for (pred, tuple) in next.program().facts.iter() {
                twin.insert(*pred, tuple);
            }
            for &pred in next.dirty_preds() {
                prop_assert_eq!(
                    next.db().relation(pred).excess_capacity(),
                    0,
                    "dirty shard {:?} must be compacted at publish", pred
                );
            }
        }
        let snapshot = service.snapshot();
        prop_assert_eq!(
            db_contents(&snapshot, snapshot.db()),
            db_contents(&snapshot, &twin)
        );
        // Indexed lookups agree too (compaction must not disturb the
        // index caches).
        for pred in snapshot.program().preds.ids() {
            let rel = snapshot.db().relation(pred);
            if rel.arity() != 2 {
                continue;
            }
            for tuple in twin.relation(pred).iter() {
                let mut compacted = Vec::new();
                rel.lookup(rq_datalog::mask_of([0]), &[tuple[0]], &mut compacted);
                let mut plain = Vec::new();
                twin.relation(pred).lookup(rq_datalog::mask_of([0]), &[tuple[0]], &mut plain);
                prop_assert_eq!(compacted.len(), plain.len());
            }
        }
    }
}
