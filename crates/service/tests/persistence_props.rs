//! Property tests for the persistent predicate-sharded storage layer:
//! a database grown through k copy-on-write ingests must be
//! **indistinguishable** from a database rebuilt from scratch out of
//! the final program — same relations, same tuples, same query answers
//! — while sharing every untouched shard with its parent epoch
//! (`Arc::ptr_eq`), which is what makes the epochs O(delta).

use proptest::prelude::*;
use rq_common::{FxHashSet, Pred};
use rq_datalog::Database;
use rq_service::{QueryService, ServiceConfig, Snapshot};
use std::sync::Arc;

const RULES: &str = "tc(X,Y) :- e(X,Y).\n\
                     tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                     e(n0,n1).";

/// One ingested batch: facts over a small universe spread across a few
/// base relations (`e` plus fresh `r<k>` predicates), with plenty of
/// duplicate collisions.
fn batch_text(batch: &[(u8, u8, u8)]) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    for &(rel, x, y) in batch {
        let rel = rel % 4;
        if rel == 0 {
            writeln!(text, "e(n{}, n{}).", x % 12, y % 12).unwrap();
        } else {
            writeln!(text, "r{rel}(n{}, n{}).", x % 12, y % 12).unwrap();
        }
    }
    text
}

/// Every `(pred, sorted tuple set)` of a database, for equality checks.
fn db_contents(snapshot: &Snapshot, db: &Database) -> Vec<(Pred, Vec<Vec<rq_common::Const>>)> {
    let mut out = Vec::new();
    for pred in snapshot.program().preds.ids() {
        let mut tuples: Vec<Vec<rq_common::Const>> =
            db.relation(pred).iter().map(|t| t.to_vec()).collect();
        tuples.sort();
        out.push((pred, tuples));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any sequence of ingests, the persistent database equals a
    /// database rebuilt from scratch from the final program's facts.
    #[test]
    fn grown_database_equals_rebuilt_database(
        batches in prop::collection::vec(
            prop::collection::vec((0..255u8, 0..255u8, 0..255u8), 1..8),
            1..6,
        )
    ) {
        let service = QueryService::from_source(RULES).unwrap();
        for batch in &batches {
            service.ingest(&batch_text(batch)).unwrap();
        }
        let snapshot = service.snapshot();
        prop_assert_eq!(snapshot.epoch(), batches.len() as u64);
        let rebuilt = Database::from_program(snapshot.program());
        prop_assert_eq!(
            db_contents(&snapshot, snapshot.db()),
            db_contents(&snapshot, &rebuilt)
        );
        prop_assert_eq!(snapshot.db().total_tuples(), rebuilt.total_tuples());
        // The bottom-up oracle agrees between the two databases, so the
        // persistent EDB is semantically interchangeable with a fresh one.
        let oracle = rq_datalog::seminaive_eval(snapshot.program()).unwrap();
        let tc = snapshot.program().pred_by_name("tc").unwrap();
        let q = service.parse_query("tc(n0, Y)").unwrap();
        let served = service.query(&q).unwrap();
        let mut expected: Vec<_> = oracle
            .tuples(tc)
            .into_iter()
            .filter_map(|t| {
                (snapshot.program().consts.display(t[0]) == "n0").then_some(t[1])
            })
            .collect();
        expected.sort_unstable();
        expected.dedup();
        if served.converged {
            prop_assert_eq!(served.answers.as_ref().clone(), expected);
        }
    }

    /// Every publish shares each shard it did not dirty with the parent
    /// epoch, pointer-identically.
    #[test]
    fn publishes_share_every_clean_shard(
        batches in prop::collection::vec(
            prop::collection::vec((0..255u8, 0..255u8, 0..255u8), 1..8),
            1..6,
        )
    ) {
        let service = QueryService::with_config(
            rq_datalog::parse_program(RULES).unwrap(),
            ServiceConfig { threads: 1, ..ServiceConfig::default() },
        );
        let mut parent = service.snapshot();
        for batch in &batches {
            let next = service.ingest(&batch_text(batch)).unwrap();
            let dirty: &FxHashSet<Pred> = next.dirty_preds();
            for pred in parent.program().preds.ids() {
                let before = parent.db().shard(pred).unwrap();
                let after = next.db().shard(pred).unwrap();
                if dirty.contains(&pred) {
                    prop_assert!(
                        !Arc::ptr_eq(before, after),
                        "dirty shard {:?} must detach", pred
                    );
                } else {
                    prop_assert!(
                        Arc::ptr_eq(before, after),
                        "clean shard {:?} must stay shared", pred
                    );
                }
            }
            parent = next;
        }
    }
}
