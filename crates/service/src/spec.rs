//! The generalized query representation: one n-ary predicate with each
//! argument bound to a constant or free, repeated free variables
//! expressing equality constraints (`p(X, X)` is the diagonal).
//!
//! A [`QuerySpec`] is *canonical*: free-variable slots are renumbered
//! by first occurrence, so `tc(a, Y)` and `tc(a, Z)` are the same spec
//! (and the same cache key), while `p(X, X)` and `p(X, Y)` stay
//! distinct.  The spec's [`Adornment`] — the `{b,f}` string of §4 —
//! is derived from it and is the planning key: plans depend only on
//! which positions are bound, never on the bound values.

use rq_common::{Const, Pred};

pub use rq_adorn::Adornment;

/// One argument position of a query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arg {
    /// Bound to a constant.
    Bound(Const),
    /// Free, carrying a canonical variable slot; equal slots at
    /// different positions constrain those positions to be equal.
    Free(u8),
}

/// A canonicalized query: predicate plus per-position arguments.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QuerySpec {
    /// The queried predicate.
    pub pred: Pred,
    args: Vec<Arg>,
}

impl QuerySpec {
    /// Build a spec, renumbering free slots by first occurrence so
    /// equal binding patterns compare (and hash) equal.
    pub fn new(pred: Pred, args: impl IntoIterator<Item = Arg>) -> Self {
        let mut mapping: Vec<u8> = Vec::new();
        let args = args
            .into_iter()
            .map(|a| match a {
                Arg::Bound(c) => Arg::Bound(c),
                Arg::Free(slot) => {
                    let canon = match mapping.iter().position(|&s| s == slot) {
                        Some(i) => i,
                        None => {
                            mapping.push(slot);
                            mapping.len() - 1
                        }
                    };
                    Arg::Free(canon as u8)
                }
            })
            .collect();
        Self { pred, args }
    }

    /// `p(a, Y)` — first argument bound.
    pub fn bound_free(pred: Pred, a: Const) -> Self {
        Self::new(pred, [Arg::Bound(a), Arg::Free(0)])
    }

    /// `p(X, a)` — second argument bound.
    pub fn free_bound(pred: Pred, a: Const) -> Self {
        Self::new(pred, [Arg::Free(0), Arg::Bound(a)])
    }

    /// `p(a, b)` — the binary membership form.
    pub fn bound_bound(pred: Pred, a: Const, b: Const) -> Self {
        Self::new(pred, [Arg::Bound(a), Arg::Bound(b)])
    }

    /// `p(X1, …, Xn)` — nothing bound, all variables distinct.
    pub fn all_free(pred: Pred, arity: usize) -> Self {
        Self::new(pred, (0..arity).map(|i| Arg::Free(i as u8)))
    }

    /// `p(X, X)` — the binary diagonal.
    pub fn diagonal(pred: Pred) -> Self {
        Self::new(pred, [Arg::Free(0), Arg::Free(0)])
    }

    /// The argument vector (canonical form).
    pub fn args(&self) -> &[Arg] {
        &self.args
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The `{b,f}` binding pattern — the plan-cache key component.
    pub fn adornment(&self) -> Adornment {
        Adornment::from_bound(
            self.args.len(),
            self.args
                .iter()
                .enumerate()
                .filter(|(_, a)| matches!(a, Arg::Bound(_)))
                .map(|(i, _)| i),
        )
    }

    /// The bound constants, in ascending position order — the §4
    /// anchor tuple.
    pub fn bound_values(&self) -> Vec<Const> {
        self.args
            .iter()
            .filter_map(|a| match a {
                Arg::Bound(c) => Some(*c),
                Arg::Free(_) => None,
            })
            .collect()
    }

    /// The free argument positions, ascending.
    pub fn free_positions(&self) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, Arg::Free(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether any free slot occurs at more than one position.
    pub fn has_repeats(&self) -> bool {
        let slots: Vec<u8> = self
            .args
            .iter()
            .filter_map(|a| match a {
                Arg::Free(s) => Some(*s),
                Arg::Bound(_) => None,
            })
            .collect();
        slots
            .iter()
            .enumerate()
            .any(|(i, s)| slots[..i].contains(s))
    }

    /// The spec with every free position given a distinct variable —
    /// the "all answers, no equality constraints" base query a
    /// repeated-variable spec filters.
    pub fn with_distinct_frees(&self) -> QuerySpec {
        QuerySpec::new(
            self.pred,
            self.args.iter().enumerate().map(|(i, a)| match a {
                Arg::Bound(c) => Arg::Bound(*c),
                Arg::Free(_) => Arg::Free(i as u8),
            }),
        )
    }

    /// Filter rows *over the free positions in order* (as every
    /// evaluation path produces them) down to those satisfying the
    /// repeated-slot constraints, projecting onto the first occurrence
    /// of each slot.  No-op (modulo sort/dedup) without repeats.
    pub fn restrict_rows(&self, rows: Vec<Vec<Const>>) -> Vec<Vec<Const>> {
        let slots: Vec<u8> = self
            .args
            .iter()
            .filter_map(|a| match a {
                Arg::Free(s) => Some(*s),
                Arg::Bound(_) => None,
            })
            .collect();
        let mut keep: Vec<usize> = Vec::new();
        let mut repeats: Vec<(usize, usize)> = Vec::new();
        for (i, s) in slots.iter().enumerate() {
            match slots[..i].iter().position(|t| t == s) {
                Some(first) => repeats.push((first, i)),
                None => keep.push(i),
            }
        }
        let mut out: Vec<Vec<Const>> = rows
            .into_iter()
            .filter(|row| repeats.iter().all(|&(a, b)| row[a] == row[b]))
            .map(|row| keep.iter().map(|&i| row[i]).collect())
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalization_renumbers_by_first_occurrence() {
        let p = Pred(3);
        let a = QuerySpec::new(p, [Arg::Free(7), Arg::Free(2), Arg::Free(7)]);
        let b = QuerySpec::new(p, [Arg::Free(0), Arg::Free(5), Arg::Free(0)]);
        assert_eq!(a, b);
        assert_eq!(a.args(), &[Arg::Free(0), Arg::Free(1), Arg::Free(0)]);
        // Distinct structure stays distinct.
        assert_ne!(QuerySpec::all_free(p, 2), QuerySpec::diagonal(p));
    }

    #[test]
    fn adornment_and_bound_values() {
        let spec = QuerySpec::new(
            Pred(1),
            [
                Arg::Bound(Const(9)),
                Arg::Free(0),
                Arg::Bound(Const(4)),
                Arg::Free(0),
            ],
        );
        assert_eq!(spec.adornment().to_string(), "bfbf");
        assert_eq!(spec.bound_values(), vec![Const(9), Const(4)]);
        assert_eq!(spec.free_positions(), vec![1, 3]);
        assert!(spec.has_repeats());
        assert!(!spec.with_distinct_frees().has_repeats());
        assert_eq!(spec.with_distinct_frees().adornment(), spec.adornment());
    }

    #[test]
    fn restrict_rows_filters_repeats_and_projects() {
        // p(a, X, b, X): rows over frees are [x, y]; keep x == y,
        // project to one column.
        let spec = QuerySpec::new(
            Pred(0),
            [
                Arg::Bound(Const(1)),
                Arg::Free(0),
                Arg::Bound(Const(2)),
                Arg::Free(0),
            ],
        );
        let rows = vec![
            vec![Const(5), Const(5)],
            vec![Const(5), Const(6)],
            vec![Const(7), Const(7)],
        ];
        assert_eq!(
            spec.restrict_rows(rows),
            vec![vec![Const(5)], vec![Const(7)]]
        );
    }
}
