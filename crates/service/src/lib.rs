//! `rq-service` — a thread-safe query-serving layer over the paper's
//! demand-driven evaluator.
//!
//! The paper's graph-traversal algorithm (§3, Figures 4–5) explores only
//! the fragment of the interpretation graph a query `p(a, Y)` demands.
//! That makes per-query results small and cacheable — the right shape
//! for serving many concurrent point queries.  This crate adds the
//! serving machinery around the engine:
//!
//! * [`SnapshotStore`] — epoch-versioned, immutable, `Arc`-shared
//!   [`Snapshot`]s of the program + database, with copy-on-write fact
//!   ingestion: readers never block writers, writers never invalidate
//!   in-flight readers.
//! * [`PlanCache`] — the `lemma1 → automata` compilation memoized per
//!   `(rules fingerprint, predicate, adornment)`; compiles once per
//!   program instead of once per query, and survives fact ingestion.
//! * [`ResultCache`] — `(epoch, predicate, adornment, constant) →
//!   answers` memoization in the salsa mold: keys embed the revision,
//!   so an epoch bump invalidates by construction.
//! * [`QueryService`] — the front end: single queries, fact ingestion,
//!   and [`QueryService::query_batch`], which fans a batch of point
//!   queries out across worker threads over one shared snapshot.
//!
//! Correctness is anchored by differential tests: every answer the
//! service produces is compared against the single-threaded
//! [`rq_engine::Evaluator`] oracle, including under concurrent
//! ingestion (`tests/oracle_parity.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod results;
pub mod service;
pub mod snapshot;

pub use plan::{rules_fingerprint, Adornment, CacheStats, PlanCache, PlanKey, ProgramPlan};
pub use results::{CachedResult, ResultCache, ResultKey};
pub use service::{
    parse_point_query, PointQuery, QueryService, ServiceAnswer, ServiceConfig, ServiceError,
};
pub use snapshot::{IngestError, Snapshot, SnapshotStore};
