//! `rq-service` — a thread-safe query-serving layer over the paper's
//! demand-driven evaluator.
//!
//! The paper's graph-traversal algorithm (§3, Figures 4–5) explores only
//! the fragment of the interpretation graph a query `p(a, Y)` demands.
//! That makes per-query results small and cacheable — the right shape
//! for serving many concurrent point queries.  This crate adds the
//! serving machinery around the engine:
//!
//! * [`SnapshotStore`] — epoch-versioned, immutable, `Arc`-shared
//!   [`Snapshot`]s of the program + database.  Storage is predicate-
//!   sharded and persistent (`rq_common::pshare`), so publishing an
//!   epoch costs O(delta): untouched shards are pointer-shared with
//!   the parent epoch and each snapshot records exactly which shards
//!   its ingest dirtied.
//! * [`PlanCache`] — the `lemma1 → automata` compilation memoized per
//!   `(rules fingerprint, predicate, adornment)`; compiles once per
//!   program instead of once per query, and survives fact ingestion.
//! * [`ResultCache`] — `(epoch, predicate, query kind) → answers`
//!   memoization in the salsa mold: keys embed the revision, so an
//!   epoch bump invalidates by construction — except that entries
//!   whose plan reads only *clean* predicates are re-keyed and survive
//!   the publish.  The cache is bounded (LRU) with hit/miss/evict
//!   counters.
//! * [`QueryService`] — the front end: single queries ([`ServeQuery`]:
//!   point, all-pairs `p(X,Y)`, and diagonal `p(X,X)` forms), fact
//!   ingestion, and [`QueryService::query_batch`], which fans a batch
//!   out across worker threads over one shared snapshot.
//!
//! Correctness is anchored by differential tests: every answer the
//! service produces is compared against the single-threaded
//! [`rq_engine::Evaluator`] oracle, including under concurrent
//! ingestion (`tests/oracle_parity.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod plan;
pub mod results;
pub mod service;
pub mod snapshot;

pub use plan::{rules_fingerprint, Adornment, CacheStats, PlanCache, PlanKey, ProgramPlan};
pub use results::{CachedResult, QueryKind, ResultCache, ResultKey};
pub use service::{
    parse_point_query, parse_serve_query, PointQuery, QueryService, ServeQuery, ServiceAnswer,
    ServiceConfig, ServiceError,
};
pub use snapshot::{IngestError, Snapshot, SnapshotStore};
