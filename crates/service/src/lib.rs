//! `rq-service` — a thread-safe query-serving layer over the paper's
//! demand-driven evaluator.
//!
//! The paper's graph-traversal algorithm (§3, Figures 4–5) explores only
//! the fragment of the interpretation graph a query `p(a, Y)` demands,
//! and §4 extends it to n-ary linear programs through a
//! binding-propagating transformation.  That makes per-query results
//! small and cacheable — the right shape for serving many concurrent
//! queries.  This crate adds the serving machinery around the engine:
//!
//! * [`QuerySpec`] — the unified query representation: one predicate of
//!   any arity, each argument bound ([`Arg::Bound`]) or free
//!   ([`Arg::Free`]), repeated free variables expressing diagonals.
//!   Every §3 form (`p(a,Y)`, `p(X,a)`, `p(a,b)`, `p(X,Y)`, `p(X,X)`)
//!   and every §4 n-ary form (`cnx(hel, 540, D, AT)`) is one spec; its
//!   derived [`Adornment`] is the planning key.
//! * [`SnapshotStore`] — epoch-versioned, immutable, `Arc`-shared
//!   [`Snapshot`]s of the program + database.  Storage is predicate-
//!   sharded and persistent (`rq_common::pshare`), so publishing an
//!   epoch costs O(delta): untouched shards are pointer-shared with
//!   the parent epoch and each snapshot records exactly which shards
//!   its ingest dirtied.
//! * [`PlanCache`] — compilation memoized per `(rules fingerprint,
//!   predicate, adornment)`: the `lemma1 → automata` pipeline for
//!   binary-chain queries (one [`plan::ProgramPlan`] per program) and
//!   the §4 `adorn → transform → lemma1 → automata` pipeline for
//!   everything else (one `NaryPlan` per key); compiles once per
//!   pattern instead of once per query, and survives fact ingestion.
//! * [`ResultCache`] — `(epoch, spec) → answer rows` memoization in the
//!   salsa mold: keys embed the revision, so an epoch bump invalidates
//!   by construction — except that entries whose plan reads only
//!   *clean* predicates (§4 virtual predicates resolved back to the
//!   real relations they join) are re-keyed and survive the publish.
//!   The cache is bounded by an entry cap and a byte budget (LRU) with
//!   hit/miss/evict/dedup counters.
//! * [`EpochContext`] — the epoch-scoped evaluation context each
//!   [`Snapshot`] owns: the engine's machine-traversal memo, one
//!   shared §4 virtual-probe memo per plan, and the SCC-path counter.
//!   Intra-epoch sharing is sound because the snapshot is immutable;
//!   publishing a new epoch invalidates wholesale by construction.
//! * [`QueryService`] — the front end: parsing, single queries, fact
//!   ingestion, and [`QueryService::query_batch`], which dedups
//!   identical specs and fans the rest out across worker threads over
//!   one shared snapshot, with per-traversal machine-instance
//!   expansion parallelized inside each query.
//!
//! Correctness is anchored by differential tests: every answer the
//! service produces is compared against the single-threaded
//! [`rq_engine::Evaluator`] oracle and the QSQ / magic-sets baselines,
//! including under concurrent ingestion (`tests/oracle_parity.rs`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod context;
pub mod durable;
pub mod plan;
pub mod results;
pub mod service;
pub mod snapshot;
pub mod spec;
pub mod stats;

pub use context::{EpochContext, EpochContextStats};
pub use durable::{DurabilityConfig, DurabilityStats, RecoveryReport};
pub use plan::{rules_fingerprint, CacheStats, PlanCache, PlanKey};
pub use results::{CachedResult, ResultCache, ResultKey, SweepDecision};
pub use service::{parse_serve_query, QueryService, ServiceAnswer, ServiceConfig, ServiceError};
pub use snapshot::{Delta, Durability, IngestError, Snapshot, SnapshotStore};
pub use spec::{Adornment, Arg, QuerySpec};
pub use stats::StatsReport;
