//! Durability: the log/checkpoint payload codecs and recovery state.
//!
//! `rq-store` owns the *framing* (CRC-checked records, atomic
//! checkpoint install, torn-tail scanning); this module owns the
//! *payloads* — what one ingest, and one whole snapshot, look like as
//! bytes — plus the recovery bookkeeping the service reports through
//! `/stats` and `/metrics`.
//!
//! # Log records
//!
//! One record per published epoch, serializing the epoch's [`Delta`]
//! in **insertion order** (`Delta::ordered_rows`).  Order matters for
//! more than fidelity: replaying the rows through the normal ingest
//! path re-interns every constant and predicate at its first
//! occurrence, in the same order the crashed process interned them, so
//! a recovered service assigns *identical* interner ids and therefore
//! answers queries **byte-identically** through the wire stack (answer
//! rows sort by id).  Duplicate rows never intern anything new, so
//! only the delta needs to be logged.
//!
//! # Checkpoints
//!
//! A checkpoint captures one snapshot as a *delta against the program
//! file*: the interner extensions (predicates and constants appended
//! after parse, in id order) and the ingested facts appended to
//! `Program::facts`.  Restoring re-parses the program file, verifies
//! the rules fingerprint and base interner sizes, then replays the
//! extensions — which re-interns them at the same ids, preserving the
//! byte-identical-answers invariant across checkpoint+tail recovery.
//!
//! [`Delta`]: crate::snapshot::Delta

use rq_common::{Const, ConstValue, FxHashMap, FxHashSet, Pred};
use rq_datalog::Program;
use rq_store::{ByteReader, ByteWriter, CodecError, FsyncPolicy, StorageBackend};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use crate::snapshot::Snapshot;

/// How the service persists ingests (see [`crate::ServiceConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Fsync policy for write-ahead-log appends.  [`FsyncPolicy::Always`]
    /// (the default) makes an acknowledged ingest survive power loss;
    /// [`FsyncPolicy::Never`] trades that for throughput (an OS crash
    /// can drop acknowledged tail records, which recovery then treats
    /// as a torn tail).
    pub fsync: FsyncPolicy,
    /// Install a compact checkpoint snapshot (and truncate the log up
    /// to it) every this many ingests.  `0` disables checkpointing —
    /// recovery then replays the whole log from epoch 0.
    pub checkpoint_interval: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            fsync: FsyncPolicy::Always,
            checkpoint_interval: 16,
        }
    }
}

/// What one boot-time recovery found and did, reported through
/// [`crate::QueryService::recovery_report`], `/stats` and `/metrics`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch the service recovered to (0 for a fresh store).
    pub recovered_epoch: u64,
    /// The checkpoint epoch recovery started from, if one was usable.
    pub checkpoint_epoch: Option<u64>,
    /// Log records replayed on top of the starting state.
    pub replayed_records: u64,
    /// Verified log records skipped because their epoch was already
    /// covered by the checkpoint (left behind when a crash landed
    /// between checkpoint install and log truncation — duplication is
    /// safe, loss would not be).
    pub skipped_duplicates: u64,
    /// Torn or corrupt trailing records dropped by the log scan
    /// (`0` or `1`: the scan stops at the first bad frame).
    pub dropped_records: u64,
    /// Bytes from the first unverifiable frame to the end of the log.
    pub dropped_bytes: u64,
    /// Whether a checkpoint blob existed but failed verification and
    /// was ignored (recovery then replays the log from scratch).
    pub checkpoint_dropped: bool,
}

/// Live durability counters for [`crate::stats::StatsReport`]: the
/// write-ahead-log/checkpoint totals plus the boot-time recovery
/// outcome.  `None` in the report means the service is not durable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Write-ahead-log records appended (one per published epoch).
    pub wal_records: u64,
    /// Bytes appended to the write-ahead log, frame headers included.
    pub wal_bytes: u64,
    /// Checkpoint snapshots installed.
    pub checkpoints: u64,
    /// Checkpoint installs that failed (non-fatal: the records stay in
    /// the log and the next ingest retries).
    pub checkpoint_failures: u64,
    /// What boot-time recovery found and did.
    pub recovery: RecoveryReport,
}

/// The sizes of the freshly parsed program, before any ingest —
/// everything beyond these watermarks is checkpointed as an extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BaseProfile {
    pub(crate) preds: usize,
    pub(crate) consts: usize,
    pub(crate) facts: usize,
}

impl BaseProfile {
    pub(crate) fn of(program: &Program) -> Self {
        Self {
            preds: program.preds.len(),
            consts: program.consts.len(),
            facts: program.facts.len(),
        }
    }
}

/// The service's handle on its storage backend.
#[derive(Debug)]
pub(crate) struct DurableStore {
    pub(crate) backend: Arc<dyn StorageBackend>,
    pub(crate) checkpoint_interval: u64,
    pub(crate) base: BaseProfile,
    /// Ingests since the last installed checkpoint (seeded with the
    /// replayed tail length at recovery, so a long tail checkpoints
    /// promptly instead of growing for another full interval).
    pub(crate) since_checkpoint: AtomicU64,
    pub(crate) report: RecoveryReport,
}

/// A decoded log record: the rule-set fingerprint it was written
/// under, and the delta rows in insertion order, resolved to names and
/// values (interner ids are process-local and never persisted as
/// authoritative in records).
#[derive(Debug)]
pub(crate) struct RecordPayload {
    pub(crate) fingerprint: u64,
    pub(crate) rows: Vec<(String, usize, Vec<ConstValue>)>,
}

/// A checkpoint restored onto a freshly parsed program.
#[derive(Debug)]
pub(crate) struct RestoredState {
    pub(crate) program: Program,
    pub(crate) epoch: u64,
    pub(crate) rev_low: u64,
    pub(crate) rev_high: u64,
    pub(crate) low_preds: FxHashSet<Pred>,
}

fn put_value(w: &mut ByteWriter, v: &ConstValue) -> Result<(), String> {
    match v {
        ConstValue::Int(i) => {
            w.put_u8(0);
            w.put_i64(*i);
        }
        ConstValue::Str(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        // The fact parser never produces tuple constants, so an ingest
        // delta cannot contain one.
        ConstValue::Tuple(_) => {
            return Err("tuple constant in ingest delta cannot be persisted".into())
        }
    }
    Ok(())
}

fn get_value(r: &mut ByteReader<'_>) -> Result<ConstValue, CodecError> {
    match r.u8()? {
        0 => Ok(ConstValue::Int(r.i64()?)),
        1 => Ok(ConstValue::Str(r.str()?.to_string())),
        t => Err(CodecError(format!("unknown constant tag {t}"))),
    }
}

/// Encode the built-but-unpublished snapshot's delta as one log-record
/// payload.  Layout: `fingerprint u64; n_preds u32; (name, arity u32)
/// per pred in first-appearance order; n_rows u32; (pred_idx u32,
/// arity u32, tagged values) per row in insertion order`.
pub(crate) fn encode_record(snap: &Snapshot) -> Result<Vec<u8>, String> {
    let program = snap.program();
    let rows = snap.delta().ordered_rows();
    let mut table: Vec<Pred> = Vec::new();
    let mut index: FxHashMap<Pred, u32> = FxHashMap::default();
    for (pred, _) in rows {
        index.entry(*pred).or_insert_with(|| {
            table.push(*pred);
            (table.len() - 1) as u32
        });
    }
    let mut w = ByteWriter::new();
    w.put_u64(snap.rules_fingerprint());
    w.put_u32(table.len() as u32);
    for &p in &table {
        w.put_str(program.pred_name(p));
        w.put_u32(program.arity(p) as u32);
    }
    w.put_u32(rows.len() as u32);
    for (pred, row) in rows {
        w.put_u32(index[pred]);
        w.put_u32(row.len() as u32);
        for &c in row {
            put_value(&mut w, program.consts.value(c))?;
        }
    }
    Ok(w.into_bytes())
}

/// Decode one log-record payload.  The payload already passed the
/// frame CRC, so a failure here means a codec-version mismatch, not
/// bit rot — callers treat it as a hard recovery error.
pub(crate) fn decode_record(payload: &[u8]) -> Result<RecordPayload, CodecError> {
    let mut r = ByteReader::new(payload);
    let fingerprint = r.u64()?;
    let n_preds = r.u32()? as usize;
    let mut table = Vec::with_capacity(n_preds.min(1024));
    for _ in 0..n_preds {
        let name = r.str()?.to_string();
        let arity = r.u32()? as usize;
        table.push((name, arity));
    }
    let n_rows = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n_rows.min(65_536));
    for _ in 0..n_rows {
        let idx = r.u32()? as usize;
        let (name, arity) = table
            .get(idx)
            .ok_or_else(|| CodecError(format!("row references predicate slot {idx}")))?;
        let len = r.u32()? as usize;
        if len != *arity {
            return Err(CodecError(format!(
                "row for `{name}` carries {len} values, arity is {arity}"
            )));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(get_value(&mut r)?);
        }
        rows.push((name.clone(), *arity, values));
    }
    if !r.is_exhausted() {
        return Err(CodecError(format!(
            "{} trailing bytes after the last row",
            r.remaining()
        )));
    }
    Ok(RecordPayload { fingerprint, rows })
}

/// Checkpoint constants may be tuples (interned by §4 transforms),
/// whose components reference *earlier* constant ids — safe because
/// extensions are encoded and restored in id order.
fn put_ckpt_value(w: &mut ByteWriter, v: &ConstValue) {
    match v {
        ConstValue::Int(i) => {
            w.put_u8(0);
            w.put_i64(*i);
        }
        ConstValue::Str(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        ConstValue::Tuple(parts) => {
            w.put_u8(2);
            w.put_u32(parts.len() as u32);
            for c in parts {
                w.put_u32(c.0);
            }
        }
    }
}

fn get_ckpt_value(r: &mut ByteReader<'_>, known_consts: usize) -> Result<ConstValue, CodecError> {
    match r.u8()? {
        0 => Ok(ConstValue::Int(r.i64()?)),
        1 => Ok(ConstValue::Str(r.str()?.to_string())),
        2 => {
            let n = r.u32()? as usize;
            let mut parts = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let id = r.u32()? as usize;
                if id >= known_consts {
                    return Err(CodecError(format!(
                        "tuple component references constant {id}, only {known_consts} known"
                    )));
                }
                parts.push(Const::from_index(id));
            }
            Ok(ConstValue::Tuple(parts))
        }
        t => Err(CodecError(format!("unknown checkpoint constant tag {t}"))),
    }
}

/// Encode one snapshot as a checkpoint payload: fingerprint, epoch and
/// durability revisions, the base-profile watermarks, the
/// low-durability predicate set, then the interner/fact extensions
/// beyond the base program in id/insertion order.
pub(crate) fn encode_checkpoint(snap: &Snapshot, base: &BaseProfile) -> Vec<u8> {
    let program = snap.program();
    let mut w = ByteWriter::new();
    w.put_u64(snap.rules_fingerprint());
    w.put_u64(snap.epoch());
    w.put_u64(snap.rev_low());
    w.put_u64(snap.rev_high());
    w.put_u64(base.preds as u64);
    w.put_u64(base.consts as u64);
    w.put_u64(base.facts as u64);
    let mut low: Vec<u32> = snap.low_preds().iter().map(|p| p.0).collect();
    low.sort_unstable();
    w.put_u32(low.len() as u32);
    for id in low {
        w.put_u32(id);
    }
    w.put_u32((program.preds.len() - base.preds) as u32);
    for i in base.preds..program.preds.len() {
        let p = Pred::from_index(i);
        w.put_str(program.pred_name(p));
        w.put_u32(program.arity(p) as u32);
    }
    w.put_u32((program.consts.len() - base.consts) as u32);
    for i in base.consts..program.consts.len() {
        put_ckpt_value(&mut w, program.consts.value(Const::from_index(i)));
    }
    w.put_u32((program.facts.len() - base.facts) as u32);
    for i in base.facts..program.facts.len() {
        let (pred, row) = program.facts.get(i).expect("fact index in range");
        w.put_u32(pred.0);
        w.put_u32(row.len() as u32);
        for c in row {
            w.put_u32(c.0);
        }
    }
    w.into_bytes()
}

/// Restore a checkpoint payload onto a freshly parsed `program`.
///
/// Hard errors (the caller refuses to serve) when the checkpoint was
/// written under a different rule set or base program — recovering
/// onto changed rules would silently answer from stale derivations.
/// Structural violations (out-of-range ids, non-sequential interns)
/// mean the payload does not extend *this* program and are errors too.
pub(crate) fn restore_checkpoint(
    mut program: Program,
    payload: &[u8],
) -> Result<RestoredState, String> {
    let mut r = ByteReader::new(payload);
    let dec = |e: CodecError| e.to_string();
    let fingerprint = r.u64().map_err(dec)?;
    let expected = crate::plan::rules_fingerprint(&program);
    if fingerprint != expected {
        return Err(format!(
            "checkpoint was written under a different rule set \
             (fingerprint {fingerprint:#018x}, program has {expected:#018x}); refusing to recover"
        ));
    }
    let epoch = r.u64().map_err(dec)?;
    let rev_low = r.u64().map_err(dec)?;
    let rev_high = r.u64().map_err(dec)?;
    let base_preds = r.u64().map_err(dec)? as usize;
    let base_consts = r.u64().map_err(dec)? as usize;
    let base_facts = r.u64().map_err(dec)? as usize;
    if base_preds != program.preds.len()
        || base_consts != program.consts.len()
        || base_facts != program.facts.len()
    {
        return Err(format!(
            "the program file changed since the checkpoint \
             (base sizes {base_preds}/{base_consts}/{base_facts} preds/consts/facts, \
             program has {}/{}/{}); refusing to recover",
            program.preds.len(),
            program.consts.len(),
            program.facts.len()
        ));
    }
    let n_low = r.u32().map_err(dec)? as usize;
    let mut low_raw = Vec::with_capacity(n_low.min(1024));
    for _ in 0..n_low {
        low_raw.push(r.u32().map_err(dec)?);
    }
    let n_ext_preds = r.u32().map_err(dec)? as usize;
    for i in 0..n_ext_preds {
        let name = r.str().map_err(dec)?.to_string();
        let arity = r.u32().map_err(dec)? as usize;
        let p = program.pred(&name, arity);
        if p.index() != base_preds + i {
            return Err(format!(
                "checkpoint predicate `{name}` does not extend the program's \
                 predicate table (landed at id {}, expected {})",
                p.index(),
                base_preds + i
            ));
        }
    }
    let mut low_preds = FxHashSet::default();
    for id in low_raw {
        if id as usize >= program.preds.len() {
            return Err(format!(
                "checkpoint low-durability set references predicate {id}, \
                 only {} known",
                program.preds.len()
            ));
        }
        low_preds.insert(Pred(id));
    }
    let n_ext_consts = r.u32().map_err(dec)? as usize;
    for i in 0..n_ext_consts {
        let known = program.consts.len();
        let v = get_ckpt_value(&mut r, known).map_err(dec)?;
        let c = program.consts.intern(v);
        if c.index() != base_consts + i {
            return Err(format!(
                "checkpoint constant does not extend the program's interner \
                 (landed at id {}, expected {})",
                c.index(),
                base_consts + i
            ));
        }
    }
    let n_ext_facts = r.u32().map_err(dec)? as usize;
    for _ in 0..n_ext_facts {
        let praw = r.u32().map_err(dec)?;
        if praw as usize >= program.preds.len() {
            return Err(format!(
                "checkpoint fact references predicate {praw}, only {} known",
                program.preds.len()
            ));
        }
        let pred = Pred(praw);
        let len = r.u32().map_err(dec)? as usize;
        if len != program.arity(pred) {
            return Err(format!(
                "checkpoint fact for `{}` carries {len} values, arity is {}",
                program.pred_name(pred),
                program.arity(pred)
            ));
        }
        let mut row = Vec::with_capacity(len);
        for _ in 0..len {
            let craw = r.u32().map_err(dec)?;
            if craw as usize >= program.consts.len() {
                return Err(format!(
                    "checkpoint fact references constant {craw}, only {} known",
                    program.consts.len()
                ));
            }
            row.push(Const(craw));
        }
        program.add_fact(pred, row);
    }
    if !r.is_exhausted() {
        return Err(format!(
            "{} trailing bytes after the checkpoint payload",
            r.remaining()
        ));
    }
    Ok(RestoredState {
        program,
        epoch,
        rev_low,
        rev_high,
        low_preds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotStore;
    use rq_datalog::parse_program;

    const SOURCE: &str = "tc(X,Y) :- e(X,Y).\n\
                          tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                          e(a,b). e(b,c).";

    #[test]
    fn record_round_trips_the_delta_in_order() {
        let program = parse_program(SOURCE).unwrap();
        let store = SnapshotStore::new(program);
        let snap = store.ingest("e(c,d). f(x). e(a,b).").unwrap();
        let payload = encode_record(&snap).unwrap();
        let decoded = decode_record(&payload).unwrap();
        assert_eq!(decoded.fingerprint, snap.rules_fingerprint());
        // `e(a,b)` is a duplicate: not part of the delta.
        assert_eq!(
            decoded.rows,
            vec![
                (
                    "e".to_string(),
                    2,
                    vec![ConstValue::Str("c".into()), ConstValue::Str("d".into())]
                ),
                ("f".to_string(), 1, vec![ConstValue::Str("x".into())]),
            ]
        );
    }

    #[test]
    fn truncated_record_payload_is_an_error_not_a_panic() {
        let program = parse_program(SOURCE).unwrap();
        let store = SnapshotStore::new(program);
        let snap = store.ingest("e(c,d).").unwrap();
        let payload = encode_record(&snap).unwrap();
        for cut in 0..payload.len() {
            assert!(decode_record(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn checkpoint_round_trips_interners_facts_and_revisions() {
        let program = parse_program(SOURCE).unwrap();
        let base = BaseProfile::of(&program);
        let store = SnapshotStore::new(program);
        store.ingest("e(c,d). g(x,y,z).").unwrap();
        let snap = store.ingest("e(d,a).").unwrap();
        let payload = encode_checkpoint(&snap, &base);
        let restored = restore_checkpoint(parse_program(SOURCE).unwrap(), &payload).unwrap();
        assert_eq!(restored.epoch, 2);
        assert_eq!(restored.rev_low, snap.rev_low());
        assert_eq!(restored.rev_high, snap.rev_high());
        assert_eq!(restored.low_preds, *snap.low_preds());
        let orig = snap.program();
        assert_eq!(restored.program.preds.len(), orig.preds.len());
        assert_eq!(restored.program.consts.len(), orig.consts.len());
        assert_eq!(restored.program.facts.len(), orig.facts.len());
        // Identical ids, not just identical contents.
        for i in 0..orig.consts.len() {
            let c = Const::from_index(i);
            assert_eq!(restored.program.consts.value(c), orig.consts.value(c));
        }
        for (a, b) in restored.program.facts.iter().zip(orig.facts.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn checkpoint_under_a_different_rule_set_is_refused() {
        let program = parse_program(SOURCE).unwrap();
        let base = BaseProfile::of(&program);
        let store = SnapshotStore::new(program);
        let snap = store.ingest("e(c,d).").unwrap();
        let payload = encode_checkpoint(&snap, &base);
        let other = parse_program("p(X,Y) :- q(X,Y).\nq(a,b).").unwrap();
        let err = restore_checkpoint(other, &payload).unwrap_err();
        assert!(err.contains("different rule set"), "{err}");
    }

    #[test]
    fn corrupt_checkpoint_payload_is_an_error_not_a_panic() {
        let program = parse_program(SOURCE).unwrap();
        let base = BaseProfile::of(&program);
        let store = SnapshotStore::new(program);
        let snap = store.ingest("e(c,d).").unwrap();
        let payload = encode_checkpoint(&snap, &base);
        for cut in 0..payload.len() {
            // Every truncation must fail loudly, never panic or
            // silently succeed with partial state.
            assert!(
                restore_checkpoint(parse_program(SOURCE).unwrap(), &payload[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }
}
