//! The epoch-scoped evaluation context: everything one snapshot's
//! queries may share with each other, and nothing a later epoch may
//! ever see.
//!
//! The paper's automaton/equation formulation makes evaluation
//! *shareable*: per-source runs over one equation system traverse
//! overlapping state, and §4's virtual-relation probes depend only on
//! the database version, never on which query demanded them.  A
//! snapshot epoch is exactly the unit over which that sharing is sound
//! — the database is immutable for the epoch's lifetime — so each
//! [`crate::Snapshot`] owns one [`EpochContext`]:
//!
//! * the engine's [`EvalContext`] — completed machine traversals,
//!   reused at the root and at machine-instance expansion time;
//! * one [`ProbeSpace`] per §4 plan — the tuple interner and
//!   virtual-probe memo a batch of adorned queries shares, so each
//!   probe joins the base relations once per epoch instead of once per
//!   query;
//! * the SCC-path counter — how many all-free queries the epoch served
//!   through the shared [`rq_engine::all_pairs_scc`] condensation
//!   instead of the per-source loop.
//!
//! Invalidation is wholesale and free: publishing a new epoch creates
//! a new snapshot, which creates a new (empty) context; the old one
//! dies with the last reader of the old snapshot.  No entry of an old
//! epoch can leak forward because nothing holds a context across
//! snapshots.

use crate::spec::Adornment;
use rq_adorn::ProbeSpace;
use rq_common::{FxHashMap, Pred};
use rq_datalog::Program;
use rq_engine::EvalContext;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Aggregated statistics of one [`EpochContext`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochContextStats {
    /// Engine machine-memo lookups answered from the context.
    pub eval_hits: u64,
    /// Engine machine-memo lookups that found nothing.
    pub eval_misses: u64,
    /// Memoized machine-traversal answer sets.
    pub eval_entries: usize,
    /// §4 virtual-relation probes answered from a shared memo.
    pub probe_hits: u64,
    /// §4 virtual-relation probes that ran their defining join.
    pub probe_misses: u64,
    /// Memoized virtual-relation probe results across all plans.
    pub probe_entries: usize,
    /// All-free queries served through the shared-SCC path.
    pub scc_served: u64,
}

/// The sharing state of one snapshot epoch.  See the module docs.
pub struct EpochContext {
    eval: EvalContext,
    probes: RwLock<FxHashMap<(Pred, Adornment), Arc<ProbeSpace>>>,
    scc_served: AtomicU64,
}

impl EpochContext {
    /// Fresh, empty context.
    pub fn new() -> Self {
        Self {
            eval: EvalContext::new(),
            probes: RwLock::new(FxHashMap::default()),
            scc_served: AtomicU64::new(0),
        }
    }

    /// The engine-level machine-traversal memo.
    pub fn eval(&self) -> &EvalContext {
        &self.eval
    }

    /// The shared [`ProbeSpace`] for one §4 plan, created on first use.
    /// Keyed by `(pred, adornment)` — the same key as the plan cache,
    /// so every query compiled to one [`rq_adorn::NaryPlan`] shares one
    /// space.
    pub fn probe_space(
        &self,
        pred: Pred,
        adornment: Adornment,
        program: &Program,
    ) -> Arc<ProbeSpace> {
        if let Some(space) = self
            .probes
            .read()
            .expect("probe space map poisoned")
            .get(&(pred, adornment))
        {
            return Arc::clone(space);
        }
        let mut map = self.probes.write().expect("probe space map poisoned");
        Arc::clone(
            map.entry((pred, adornment))
                .or_insert_with(|| Arc::new(ProbeSpace::new(program))),
        )
    }

    /// Record one all-free query served through the shared-SCC path.
    pub fn note_scc_served(&self) {
        self.scc_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregated hit/miss/entry counts across the engine memo and all
    /// probe spaces.
    pub fn stats(&self) -> EpochContextStats {
        let eval = self.eval.stats();
        let mut stats = EpochContextStats {
            eval_hits: eval.hits,
            eval_misses: eval.misses,
            eval_entries: eval.entries,
            scc_served: self.scc_served.load(Ordering::Relaxed),
            ..EpochContextStats::default()
        };
        for space in self
            .probes
            .read()
            .expect("probe space map poisoned")
            .values()
        {
            let p = space.stats();
            stats.probe_hits += p.hits;
            stats.probe_misses += p.misses;
            stats.probe_entries += p.entries;
        }
        stats
    }
}

impl Default for EpochContext {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EpochContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochContext")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    #[test]
    fn probe_spaces_are_per_plan_and_created_once() {
        let program = parse_program("e(a,b).").unwrap();
        let ctx = EpochContext::new();
        let bf = Adornment::from_bound(2, [0]);
        let fb = Adornment::from_bound(2, [1]);
        let p = Pred(0);
        let s1 = ctx.probe_space(p, bf, &program);
        let s2 = ctx.probe_space(p, bf, &program);
        assert!(Arc::ptr_eq(&s1, &s2), "one space per (pred, adornment)");
        let s3 = ctx.probe_space(p, fb, &program);
        assert!(
            !Arc::ptr_eq(&s1, &s3),
            "different adornment, different space"
        );
    }

    #[test]
    fn stats_aggregate_scc_counter() {
        let ctx = EpochContext::new();
        ctx.note_scc_served();
        ctx.note_scc_served();
        assert_eq!(ctx.stats().scc_served, 2);
        assert_eq!(ctx.stats().eval_entries, 0);
    }
}
