//! The epoch-scoped evaluation context: everything one snapshot's
//! queries may share with each other, and nothing a later epoch may
//! ever see.
//!
//! The paper's automaton/equation formulation makes evaluation
//! *shareable*: per-source runs over one equation system traverse
//! overlapping state, and §4's virtual-relation probes depend only on
//! the database version, never on which query demanded them.  A
//! snapshot epoch is exactly the unit over which that sharing is sound
//! — the database is immutable for the epoch's lifetime — so each
//! [`crate::Snapshot`] owns one [`EpochContext`]:
//!
//! * the engine's [`EvalContext`] — completed machine traversals,
//!   reused at the root and at machine-instance expansion time;
//! * one [`ProbeSpace`] per §4 plan — the tuple interner and
//!   virtual-probe memo a batch of adorned queries shares, so each
//!   probe joins the base relations once per epoch instead of once per
//!   query;
//! * the SCC-path counter — how many all-free queries the epoch served
//!   through the shared [`rq_engine::all_pairs_scc`] condensation
//!   instead of the per-source loop.
//!
//! Invalidation is wholesale by default: publishing a new epoch
//! creates a new snapshot, which creates a new (empty) context; the
//! old one dies with the last reader of the old snapshot.  The one
//! deliberate exception is [`EpochContext::carry_from`]: the service's
//! ingest path moves entries of **clean-read-set plans** — plans that
//! read none of the shards the publish dirtied — into the new context,
//! mirroring the result cache's `carry_forward`.  That keeps long-
//! lived clients at warm-epoch throughput across unrelated ingests
//! while preserving the invariant that no entry can outlive the data
//! it was computed from (a carried entry's entire read-set is
//! pointer-identical across the two epochs).

use crate::spec::Adornment;
use rq_adorn::ProbeSpace;
use rq_common::{FxHashMap, Pred};
use rq_datalog::Program;
use rq_engine::EvalContext;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Aggregated statistics of one [`EpochContext`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EpochContextStats {
    /// Engine machine-memo lookups answered from the context.
    pub eval_hits: u64,
    /// Engine machine-memo lookups that found nothing.
    pub eval_misses: u64,
    /// Memoized machine-traversal answer sets.
    pub eval_entries: usize,
    /// §4 virtual-relation probes answered from a shared memo.
    pub probe_hits: u64,
    /// §4 virtual-relation probes that ran their defining join.
    pub probe_misses: u64,
    /// Memoized virtual-relation probe results across all plans.
    pub probe_entries: usize,
    /// All-free queries served through the shared-SCC path.
    pub scc_served: u64,
    /// Machine-memo entries inherited from the previous epoch's context
    /// (plans whose read-set the publish left clean).
    pub eval_carried: u64,
    /// §4 probe spaces inherited from the previous epoch's context.
    /// A carried space keeps its cumulative hit/miss counters — its
    /// memo (and the tuple interner the machine memo's answers are
    /// encoded in) survives the publish as one unit.
    pub probe_spaces_carried: u64,
}

/// The sharing state of one snapshot epoch.  See the module docs.
pub struct EpochContext {
    eval: EvalContext,
    probes: RwLock<FxHashMap<(Pred, Adornment), Arc<ProbeSpace>>>,
    scc_served: AtomicU64,
    eval_carried: AtomicU64,
    probe_spaces_carried: AtomicU64,
}

impl EpochContext {
    /// Fresh, empty context.
    pub fn new() -> Self {
        Self {
            eval: EvalContext::new(),
            probes: RwLock::new(FxHashMap::default()),
            scc_served: AtomicU64::new(0),
            eval_carried: AtomicU64::new(0),
            probe_spaces_carried: AtomicU64::new(0),
        }
    }

    /// Inherit from the previous epoch's context everything the caller
    /// vouches survives the publish:
    ///
    /// * `chain_machines` — the §3 chain plan's id plus the machine
    ///   indices whose predicate's read-set is disjoint from the
    ///   publish's dirty shards: those machines' memo entries carry
    ///   (their answers are real program constants, whose interned ids
    ///   are stable across epochs);
    /// * `nary_plans` — clean-read-set §4 plans, as `((pred,
    ///   adornment), plan id)` pairs.  A §4 plan's probe space and its
    ///   machine-memo entries travel **as a unit**, because the
    ///   memoized answers are encoded in that probe space's tuple
    ///   interner.  Probe spaces are therefore carried *first*, and a
    ///   plan's memo entries are only carried when its previous-epoch
    ///   probe space actually became this epoch's space — if a racing
    ///   query already created a fresh space (fresh interner) on this
    ///   epoch, the old entries are discarded rather than paired with
    ///   an interner that numbers tuples differently.
    ///
    /// Everything else starts cold, exactly as before.  The carried
    /// counts land in [`EpochContextStats::eval_carried`] /
    /// [`EpochContextStats::probe_spaces_carried`].
    pub fn carry_from(
        &self,
        prev: &EpochContext,
        chain_machines: Option<&(u64, rq_common::FxHashSet<u32>)>,
        nary_plans: &[((Pred, Adornment), u64)],
    ) {
        // Phase 1: probe spaces, collecting the plan ids whose old
        // space (and so whose tuple interner) survives into this epoch.
        let mut keep_nary: rq_common::FxHashSet<u64> = rq_common::FxHashSet::default();
        if !nary_plans.is_empty() {
            let survivors: Vec<((Pred, Adornment), u64, Arc<ProbeSpace>)> = {
                let prev_map = prev.probes.read().expect("probe space map poisoned");
                nary_plans
                    .iter()
                    .filter_map(|&(key, plan)| {
                        prev_map
                            .get(&key)
                            .map(|space| (key, plan, Arc::clone(space)))
                    })
                    .collect()
            };
            let mut map = self.probes.write().expect("probe space map poisoned");
            let mut carried_spaces = 0;
            for (key, plan, space) in survivors {
                match map.entry(key) {
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(space);
                        carried_spaces += 1;
                        keep_nary.insert(plan);
                    }
                    std::collections::hash_map::Entry::Occupied(existing) => {
                        if Arc::ptr_eq(existing.get(), &space) {
                            // Already carried (idempotent re-run): the
                            // interner matches, entries may carry too.
                            keep_nary.insert(plan);
                        }
                        // Otherwise a racing query created a fresh
                        // space: keep it (its interner may already
                        // anchor new memo entries) and let this plan's
                        // old entries die with the old epoch.
                    }
                }
            }
            self.probe_spaces_carried
                .fetch_add(carried_spaces, Ordering::Relaxed);
        }
        // Phase 2: machine-memo entries, gated on phase 1 for §4 plans.
        let carried = self.eval.carry_from(&prev.eval, |plan, machine| {
            keep_nary.contains(&plan)
                || chain_machines
                    .is_some_and(|(id, machines)| *id == plan && machines.contains(&machine))
        }) as u64;
        self.eval_carried.fetch_add(carried, Ordering::Relaxed);
    }

    /// The engine-level machine-traversal memo.
    pub fn eval(&self) -> &EvalContext {
        &self.eval
    }

    /// The shared [`ProbeSpace`] for one §4 plan, created on first use.
    /// Keyed by `(pred, adornment)` — the same key as the plan cache,
    /// so every query compiled to one [`rq_adorn::NaryPlan`] shares one
    /// space.
    pub fn probe_space(
        &self,
        pred: Pred,
        adornment: Adornment,
        program: &Program,
    ) -> Arc<ProbeSpace> {
        if let Some(space) = self
            .probes
            .read()
            .expect("probe space map poisoned")
            .get(&(pred, adornment))
        {
            return Arc::clone(space);
        }
        let mut map = self.probes.write().expect("probe space map poisoned");
        Arc::clone(
            map.entry((pred, adornment))
                .or_insert_with(|| Arc::new(ProbeSpace::new(program))),
        )
    }

    /// The shared [`ProbeSpace`] for one §4 plan **if it already
    /// exists**, without creating one.  The delta-repair path forks the
    /// *previous* epoch's space; a `None` here means there is nothing
    /// to repair.
    pub fn peek_probe_space(&self, pred: Pred, adornment: Adornment) -> Option<Arc<ProbeSpace>> {
        self.probes
            .read()
            .expect("probe space map poisoned")
            .get(&(pred, adornment))
            .cloned()
    }

    /// Install a repaired probe space for one §4 plan, vacant-only:
    /// returns `false` (discarding `space`) when a racing query already
    /// created a fresh space for the key — the racer's interner may
    /// anchor new memo entries, so last-write-wins would corrupt them.
    /// A successful adopt counts toward
    /// [`EpochContextStats::probe_spaces_carried`] (the space *did*
    /// travel from the previous epoch, repaired en route).
    pub fn adopt_probe_space(
        &self,
        pred: Pred,
        adornment: Adornment,
        space: Arc<ProbeSpace>,
    ) -> bool {
        let mut map = self.probes.write().expect("probe space map poisoned");
        match map.entry((pred, adornment)) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(space);
                drop(map);
                self.probe_spaces_carried.fetch_add(1, Ordering::Relaxed);
                true
            }
            std::collections::hash_map::Entry::Occupied(_) => false,
        }
    }

    /// Copy every machine-memo entry of plan `plan` from `src` (the
    /// delta-repair scratch context) into this epoch's memo, counting
    /// the copies toward [`EpochContextStats::eval_carried`].  Returns
    /// how many entries were adopted.
    ///
    /// Repair runs against a detached scratch so racing queries on the
    /// already-published snapshot never observe a half-patched memo;
    /// entries land here only once they are complete on the new
    /// database.
    pub fn adopt_eval_entries(&self, src: &EvalContext, plan: u64) -> u64 {
        let adopted = self.eval.carry_from(src, |p, _| p == plan) as u64;
        self.eval_carried.fetch_add(adopted, Ordering::Relaxed);
        adopted
    }

    /// Record one all-free query served through the shared-SCC path.
    pub fn note_scc_served(&self) {
        self.scc_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregated hit/miss/entry counts across the engine memo and all
    /// probe spaces.
    pub fn stats(&self) -> EpochContextStats {
        let eval = self.eval.stats();
        let mut stats = EpochContextStats {
            eval_hits: eval.hits,
            eval_misses: eval.misses,
            eval_entries: eval.entries,
            scc_served: self.scc_served.load(Ordering::Relaxed),
            eval_carried: self.eval_carried.load(Ordering::Relaxed),
            probe_spaces_carried: self.probe_spaces_carried.load(Ordering::Relaxed),
            ..EpochContextStats::default()
        };
        // Aggregate the probe spaces with the saturating
        // `ProbeStats::merge`, outside any write lock (the map is only
        // read-locked; each space reads its own atomics).
        let mut probes = rq_adorn::ProbeStats::default();
        for space in self
            .probes
            .read()
            .expect("probe space map poisoned")
            .values()
        {
            probes.merge(&space.stats());
        }
        stats.probe_hits = probes.hits;
        stats.probe_misses = probes.misses;
        stats.probe_entries = probes.entries;
        stats
    }
}

impl Default for EpochContext {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for EpochContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochContext")
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_datalog::parse_program;

    #[test]
    fn probe_spaces_are_per_plan_and_created_once() {
        let program = parse_program("e(a,b).").unwrap();
        let ctx = EpochContext::new();
        let bf = Adornment::from_bound(2, [0]);
        let fb = Adornment::from_bound(2, [1]);
        let p = Pred(0);
        let s1 = ctx.probe_space(p, bf, &program);
        let s2 = ctx.probe_space(p, bf, &program);
        assert!(Arc::ptr_eq(&s1, &s2), "one space per (pred, adornment)");
        let s3 = ctx.probe_space(p, fb, &program);
        assert!(
            !Arc::ptr_eq(&s1, &s3),
            "different adornment, different space"
        );
    }

    #[test]
    fn carry_pairs_probe_space_with_its_plan_or_drops_both() {
        let program = parse_program("e(a,b).").unwrap();
        let key = (Pred(0), Adornment::from_bound(2, [0]));
        let plan_id = 77u64;

        // Vacant destination: the old space carries, same Arc.
        let prev = EpochContext::new();
        let old_space = prev.probe_space(key.0, key.1, &program);
        let fresh = EpochContext::new();
        fresh.carry_from(&prev, None, &[(key, plan_id)]);
        assert_eq!(fresh.stats().probe_spaces_carried, 1);
        assert!(Arc::ptr_eq(
            &old_space,
            &fresh.probe_space(key.0, key.1, &program)
        ));
        // Idempotent re-run: the already-carried space still counts as
        // paired (same interner), but is not carried twice.
        fresh.carry_from(&prev, None, &[(key, plan_id)]);
        assert_eq!(fresh.stats().probe_spaces_carried, 1);

        // A racing query created a fresh space first: the old space —
        // and with it the plan's memo entries, whose answers are
        // encoded in the old space's interner — must NOT carry.
        let racing = EpochContext::new();
        let racing_space = racing.probe_space(key.0, key.1, &program);
        racing.carry_from(&prev, None, &[(key, plan_id)]);
        assert_eq!(racing.stats().probe_spaces_carried, 0);
        assert!(Arc::ptr_eq(
            &racing_space,
            &racing.probe_space(key.0, key.1, &program)
        ));

        // A plan whose previous epoch never built a space carries
        // nothing and counts nothing.
        let empty_prev = EpochContext::new();
        let target = EpochContext::new();
        target.carry_from(&empty_prev, None, &[(key, plan_id)]);
        assert_eq!(target.stats().probe_spaces_carried, 0);
        assert_eq!(target.stats().eval_carried, 0);
    }

    #[test]
    fn stats_aggregate_scc_counter() {
        let ctx = EpochContext::new();
        ctx.note_scc_served();
        ctx.note_scc_served();
        assert_eq!(ctx.stats().scc_served, 2);
        assert_eq!(ctx.stats().eval_entries, 0);
    }
}
