//! Epoch-versioned, immutable database snapshots with O(delta) publishes.
//!
//! The store keeps the current [`Snapshot`] behind an `Arc`: readers
//! grab the pointer and traverse it for as long as they like without
//! ever blocking a writer.  Ingestion is copy-on-write over the
//! predicate-sharded persistent storage (`rq_datalog::Database` holds
//! one `Arc`-shared shard per predicate): a writer validates the new
//! facts *first*, then clones the program and database — refcount
//! bumps, not deep copies — applies the delta (which detaches only the
//! shards it touches), and atomically publishes the result as the next
//! epoch.  Untouched shards are [`std::sync::Arc::ptr_eq`]-identical
//! across epochs, so publishing one fact into one relation costs
//! O(delta), no matter how large the rest of the database is.
//!
//! Each snapshot records which predicates its publish **dirtied**; the
//! service layer uses that to keep result-cache entries alive when the
//! predicates their plan reads were untouched.  Old snapshots stay
//! alive until their last reader drops them, so long-running batch
//! queries are never invalidated mid-flight; they simply answer against
//! the epoch they started on.

use crate::context::EpochContext;
use rq_common::{Const, ConstValue, FxHashMap, FxHashSet, Pred};
use rq_datalog::{parse_program, Database, Program};
use std::sync::{Arc, Mutex, RwLock};

/// Salsa-style durability tier of one base predicate.
///
/// Predicates start [`Durability::High`] — assumed stable across
/// publishes — and are demoted to [`Durability::Low`] the first time an
/// ingest dirties them.  The service's cache sweep uses the tiers as a
/// fast path: when a publish touched only low-durability predicates
/// (the high revision did not move), any plan whose read-set is
/// entirely high-durability carries without walking the dirty set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Durability {
    /// The predicate has been dirtied by some ingest; future publishes
    /// are expected to touch it again.
    Low,
    /// The predicate has never been dirtied since service start.
    High,
}

/// The typed delta of one publish: per-predicate tuples this epoch
/// **added** relative to its parent (ingests are monotone — facts are
/// only ever added — so additions are the whole delta).
///
/// Duplicate facts never reach the delta: `apply_validated` skips
/// them before the database insert, so a recorded row is guaranteed to
/// be new in this epoch.  Constants are interned in this epoch's
/// program (ids are stable across epochs).
#[derive(Clone, Debug, Default)]
pub struct Delta {
    added: FxHashMap<Pred, Vec<Vec<Const>>>,
    /// The same rows in **original insertion order** across predicates.
    /// The write-ahead log serializes this list: replaying it re-interns
    /// every new constant and predicate at exactly the position the
    /// original ingest did, which is what makes recovered services
    /// answer byte-identically (answer rows sort by interned id).
    ordered: Vec<(Pred, Vec<Const>)>,
}

impl Delta {
    /// Record one genuinely-new row (both the per-predicate group and
    /// the cross-predicate insertion order).
    fn push(&mut self, pred: Pred, row: Vec<Const>) {
        self.added.entry(pred).or_default().push(row.clone());
        self.ordered.push((pred, row));
    }

    /// Whether the publish added nothing (duplicate-only ingest).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty()
    }

    /// Every `(predicate, added tuples)` group of the publish.
    pub fn added(&self) -> &FxHashMap<Pred, Vec<Vec<Const>>> {
        &self.added
    }

    /// The tuples added to one predicate, if any.
    pub fn rows(&self, pred: Pred) -> Option<&[Vec<Const>]> {
        self.added.get(&pred).map(Vec::as_slice)
    }

    /// Every added row in original insertion order — the write-ahead
    /// log's view of the publish.
    pub fn ordered_rows(&self) -> &[(Pred, Vec<Const>)] {
        &self.ordered
    }

    /// Total tuples added across all predicates.
    pub fn total_rows(&self) -> usize {
        self.ordered.len()
    }
}

/// One immutable version of the served database.
#[derive(Debug)]
pub struct Snapshot {
    epoch: u64,
    rules_fingerprint: u64,
    program: Program,
    db: Database,
    /// Predicates whose shard this epoch replaced (relative to its
    /// parent).  Epoch 0 reports every predicate dirty.
    dirty: FxHashSet<Pred>,
    /// The tuples this publish added, per predicate — what the delta
    /// repair path propagates through warm memos.  Empty at epoch 0
    /// (the initial load is the baseline, not a delta).
    delta: Delta,
    /// Predicates ever demoted to [`Durability::Low`] by an ingest.
    low_preds: FxHashSet<Pred>,
    /// Revision stamp bumped by every publish that dirtied anything.
    rev_low: u64,
    /// Revision stamp bumped only by publishes that dirtied a
    /// previously high-durability predicate.
    rev_high: u64,
    /// The epoch's evaluation context: traversal/probe memos shared by
    /// every query of this epoch, invalidated wholesale by the next
    /// publish (each snapshot owns a fresh context).
    context: EpochContext,
    /// How many shards this publish built a compact store (columnar
    /// buffers + CSR adjacency) for.  Clean shards carry their store
    /// from the parent epoch and cost nothing here.
    csr_builds: usize,
    /// Wall time the publish spent building those stores.
    csr_build_time: std::time::Duration,
}

/// Durability bookkeeping one publish hands to [`Snapshot::new`]: the
/// typed delta plus the demotion set and revision stamps.
struct PublishMeta {
    delta: Delta,
    low_preds: FxHashSet<Pred>,
    rev_low: u64,
    rev_high: u64,
}

impl PublishMeta {
    /// Epoch 0: the initial load is the baseline, not a delta, and every
    /// predicate starts high-durability.
    fn baseline() -> Self {
        Self {
            delta: Delta::default(),
            low_preds: FxHashSet::default(),
            rev_low: 0,
            rev_high: 0,
        }
    }
}

impl Snapshot {
    fn new(
        epoch: u64,
        program: Program,
        db: Database,
        dirty: FxHashSet<Pred>,
        meta: PublishMeta,
    ) -> Self {
        db.prewarm_binary_indexes();
        // Compact stores are the publish-time counterpart of the index
        // prewarm: dirty shards dropped theirs on mutation and rebuild
        // here; clean shards still hold the parent epoch's store via the
        // copy-on-write clone, so the cost is O(dirty data).
        let build_start = std::time::Instant::now();
        let csr_builds = db.build_compact_stores();
        let csr_build_time = build_start.elapsed();
        let rules_fingerprint = crate::plan::rules_fingerprint(&program);
        Self {
            epoch,
            rules_fingerprint,
            program,
            db,
            dirty,
            delta: meta.delta,
            low_preds: meta.low_preds,
            rev_low: meta.rev_low,
            rev_high: meta.rev_high,
            context: EpochContext::new(),
            csr_builds,
            csr_build_time,
        }
    }

    /// The snapshot's version number; epoch `n + 1` supersedes `n`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Hash of the rules and their predicate-id binding (not the facts),
    /// computed once at publication — the plan-cache key component.
    pub fn rules_fingerprint(&self) -> u64 {
        self.rules_fingerprint
    }

    /// The program (rules + interners) of this version.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The extensional database of this version.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Predicates whose shard changed between the parent epoch and this
    /// one — the unit of per-predicate cache invalidation.  A result
    /// whose plan reads none of these survives the publish.
    pub fn dirty_preds(&self) -> &FxHashSet<Pred> {
        &self.dirty
    }

    /// The tuples this publish added, per predicate.  Empty at epoch 0
    /// and after duplicate-only ingests.
    pub fn delta(&self) -> &Delta {
        &self.delta
    }

    /// Predicates ever demoted to [`Durability::Low`] since service
    /// start (a superset of [`Snapshot::dirty_preds`] on every epoch
    /// after 0).
    pub fn low_preds(&self) -> &FxHashSet<Pred> {
        &self.low_preds
    }

    /// Revision stamp of the low-durability tier: bumped by every
    /// publish that dirtied anything.
    pub fn rev_low(&self) -> u64 {
        self.rev_low
    }

    /// Revision stamp of the high-durability tier: bumped only when a
    /// publish dirties a predicate that was still [`Durability::High`].
    /// A plan reading only high-durability predicates is untouched by
    /// any publish that left this stamp alone.
    pub fn rev_high(&self) -> u64 {
        self.rev_high
    }

    /// The durability tier of `pred` as of this epoch.
    pub fn durability(&self, pred: Pred) -> Durability {
        if self.low_preds.contains(&pred) {
            Durability::Low
        } else {
            Durability::High
        }
    }

    /// The epoch's evaluation context (see [`EpochContext`]): memos
    /// every query of this epoch may share, dead with the snapshot.
    pub fn context(&self) -> &EpochContext {
        &self.context
    }

    /// How many compact stores this publish built (dirty shards only).
    pub fn csr_builds(&self) -> usize {
        self.csr_builds
    }

    /// Wall time this publish spent building compact stores.
    pub fn csr_build_time(&self) -> std::time::Duration {
        self.csr_build_time
    }
}

/// Errors from [`SnapshotStore::ingest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The fact text did not parse.
    Parse(String),
    /// The text contained rules; the rule set is fixed at service start.
    RulesNotAllowed,
    /// A fact targets a derived predicate.
    DerivedPredicate(String),
    /// A fact uses an existing predicate at a different arity.
    ArityMismatch {
        /// The predicate name.
        pred: String,
        /// Arity already registered.
        expected: usize,
        /// Arity in the ingested fact.
        got: usize,
    },
    /// The durability hook (write-ahead log append) failed, so the
    /// publish was aborted: the epoch was **not** bumped and no reader
    /// ever saw the batch.
    Durability(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Parse(e) => write!(f, "cannot parse facts: {e}"),
            IngestError::RulesNotAllowed => {
                write!(
                    f,
                    "ingest accepts facts only; rules are fixed at service start"
                )
            }
            IngestError::DerivedPredicate(p) => {
                write!(f, "cannot ingest facts for derived predicate `{p}`")
            }
            IngestError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "fact for `{pred}` has arity {got}, but `{pred}` has arity {expected}"
            ),
            IngestError::Durability(e) => {
                write!(f, "cannot persist ingest (publish aborted): {e}")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// The store: the current snapshot plus a writer lock.
///
/// Readers call [`SnapshotStore::snapshot`] (a lock-free-in-spirit
/// `Arc` clone under a read lock held for nanoseconds).  Writers
/// serialize on a separate mutex so two concurrent ingests cannot both
/// base their copy on the same parent and lose one of the updates.
#[derive(Debug)]
pub struct SnapshotStore {
    current: RwLock<Arc<Snapshot>>,
    writer: Mutex<()>,
}

impl SnapshotStore {
    /// Open a store at epoch 0 with the program's facts as the EDB.
    pub fn new(program: Program) -> Self {
        Self::with_meta(program, 0, PublishMeta::baseline())
    }

    /// Open a store whose first snapshot is a **recovered** epoch: the
    /// program already carries every fact up to `epoch` (checkpoint
    /// restore re-extends the interners and fact list), and the
    /// durability bookkeeping resumes where the crashed service left
    /// off.  Like epoch 0, every predicate reports dirty — there is no
    /// parent epoch to be clean against.
    pub fn with_restored(
        program: Program,
        epoch: u64,
        rev_low: u64,
        rev_high: u64,
        low_preds: FxHashSet<Pred>,
    ) -> Self {
        Self::with_meta(
            program,
            epoch,
            PublishMeta {
                delta: Delta::default(),
                low_preds,
                rev_low,
                rev_high,
            },
        )
    }

    fn with_meta(program: Program, epoch: u64, meta: PublishMeta) -> Self {
        let mut db = Database::from_program(&program);
        let dirty: FxHashSet<Pred> = program.preds.ids().collect();
        // The first snapshot owns every shard uniquely: trim the
        // tail-chunk over-allocation the initial load left behind.
        db.compact_shards(dirty.iter().copied());
        Self {
            current: RwLock::new(Arc::new(Snapshot::new(epoch, program, db, dirty, meta))),
            writer: Mutex::new(()),
        }
    }

    /// The current snapshot.  Cheap; never blocks on writers for longer
    /// than the pointer swap.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.current.read().expect("snapshot lock poisoned").clone()
    }

    /// Copy-on-write ingestion: parse `facts_text` (fact clauses only,
    /// e.g. `e(a,b). e(b,c).`), apply them to a persistent clone of the
    /// current version, and publish the clone as the next epoch.
    /// Returns the new snapshot.  Concurrent readers keep whatever
    /// snapshot they already hold.
    ///
    /// Validation runs **before** anything is cloned: a batch that
    /// fails to parse, smuggles rules, or conflicts with the schema is
    /// rejected without paying any copy at all.
    pub fn ingest(&self, facts_text: &str) -> Result<Arc<Snapshot>, IngestError> {
        self.ingest_with(facts_text, |_| Ok(()))
    }

    /// [`SnapshotStore::ingest`] with a durability hook: `pre_publish`
    /// runs on the fully-built next snapshot **before** the pointer
    /// swap makes it visible.  The write-ahead log appends here — if
    /// the append fails the publish is aborted, the epoch does not
    /// move, and no reader ever observed the batch (no acknowledged
    /// epoch can be missing from the log).
    pub fn ingest_with(
        &self,
        facts_text: &str,
        pre_publish: impl FnOnce(&Snapshot) -> Result<(), IngestError>,
    ) -> Result<Arc<Snapshot>, IngestError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();
        let parsed = {
            let _validate = rq_common::obs::span("ingest.validate");
            validate_facts(&base.program, facts_text)?
        };
        let (program, mut db, dirty, delta) = {
            let _apply = rq_common::obs::span("ingest.apply");
            // Persistent clones: per-shard/per-chunk refcount bumps.
            let mut program = base.program.clone();
            let mut db = base.db.clone();
            let (dirty, delta) = apply_validated(&mut program, &mut db, &parsed);
            (program, db, dirty, delta)
        };
        {
            let _compact = rq_common::obs::span("ingest.compact");
            // Publish-time compaction (first slice of background shard
            // compaction): the dirty shards just detached copy-on-write,
            // so their tail chunks — carrying the capacity the detach
            // over-allocated, now fully shadowed by the live prefix —
            // are uniquely owned and shrink in place.  Clean shards stay
            // pointer-shared with the parent epoch and are never
            // touched.
            db.compact_shards(dirty.iter().copied());
        }
        self.publish(&base, program, db, dirty, delta, pre_publish)
    }

    /// Re-apply one recovered write-ahead-log record: the rows of a
    /// crashed service's publish, in original insertion order, as
    /// `(pred name, arity, constant values)`.  Interning value-by-value
    /// in that order reproduces the original interner ids exactly, so
    /// the replayed epoch is structurally identical to the lost one —
    /// same ids, same fact order, same durability stamps.  Rows are
    /// values (not ids) precisely so this holds on a fresh process.
    ///
    /// Publishes `current epoch + 1`; the caller aligns record epochs.
    pub fn replay_rows(
        &self,
        rows: &[(String, usize, Vec<ConstValue>)],
    ) -> Result<Arc<Snapshot>, IngestError> {
        let _writer = self.writer.lock().expect("writer lock poisoned");
        let base = self.snapshot();
        let mut program = base.program.clone();
        let mut db = base.db.clone();
        let mut dirty = FxHashSet::default();
        let mut delta = Delta::default();
        for (name, arity, values) in rows {
            // The same schema checks `validate_facts` ran on the
            // original batch — a log that fails them is corrupt.
            if let Some(existing) = program.pred_by_name(name) {
                if program.is_derived(existing) {
                    return Err(IngestError::DerivedPredicate(name.clone()));
                }
                if program.arity(existing) != *arity {
                    return Err(IngestError::ArityMismatch {
                        pred: name.clone(),
                        expected: program.arity(existing),
                        got: *arity,
                    });
                }
            }
            let fresh_pred = program.pred_by_name(name).is_none();
            let target = program.pred(name, *arity);
            let mapped: Vec<Const> = values
                .iter()
                .map(|v| program.consts.intern(v.clone()))
                .collect();
            if fresh_pred {
                db.ensure_pred(target, *arity);
                dirty.insert(target);
            }
            if !db.contains(target, &mapped) {
                db.insert(target, &mapped);
                delta.push(target, mapped.clone());
                program.add_fact(target, mapped);
                dirty.insert(target);
            }
        }
        db.compact_shards(dirty.iter().copied());
        self.publish(&base, program, db, dirty, delta, |_| Ok(()))
    }

    /// The shared publish tail: durability bookkeeping, snapshot
    /// construction, the pre-publish hook, and the pointer swap.
    fn publish(
        &self,
        base: &Snapshot,
        program: Program,
        db: Database,
        dirty: FxHashSet<Pred>,
        delta: Delta,
        pre_publish: impl FnOnce(&Snapshot) -> Result<(), IngestError>,
    ) -> Result<Arc<Snapshot>, IngestError> {
        // Durability bookkeeping: a dirtied predicate is demoted to the
        // low tier permanently; the high revision moves only when this
        // publish is the demoting one.
        let demoted = dirty.iter().any(|p| !base.low_preds.contains(p));
        let mut low_preds = base.low_preds.clone();
        low_preds.extend(dirty.iter().copied());
        let meta = PublishMeta {
            delta,
            low_preds,
            rev_low: base.rev_low + u64::from(!dirty.is_empty()),
            rev_high: base.rev_high + u64::from(demoted && !dirty.is_empty()),
        };
        let next = Arc::new(Snapshot::new(base.epoch + 1, program, db, dirty, meta));
        pre_publish(&next)?;
        *self.current.write().expect("snapshot lock poisoned") = Arc::clone(&next);
        Ok(next)
    }
}

/// Parse `text` with the ordinary Datalog parser and check every fact
/// against `program`'s schema, **without mutating or cloning anything**.
/// Returns the parsed batch for [`apply_validated`].
fn validate_facts(program: &Program, text: &str) -> Result<Program, IngestError> {
    let parsed = parse_program(text).map_err(|e| IngestError::Parse(e.to_string()))?;
    if !parsed.rules.is_empty() {
        return Err(IngestError::RulesNotAllowed);
    }
    for (pred, _) in &parsed.facts {
        let name = parsed.pred_name(*pred);
        let arity = parsed.arity(*pred);
        if let Some(existing) = program.pred_by_name(name) {
            if program.is_derived(existing) {
                return Err(IngestError::DerivedPredicate(name.to_string()));
            }
            if program.arity(existing) != arity {
                return Err(IngestError::ArityMismatch {
                    pred: name.to_string(),
                    expected: program.arity(existing),
                    got: arity,
                });
            }
        }
    }
    Ok(parsed)
}

/// Merge a validated fact batch into `program`/`db`, translating
/// interned ids across programs.  Returns the set of predicates whose
/// shard was actually touched plus the typed [`Delta`] of genuinely new
/// tuples: duplicate facts are skipped *before* reaching the database
/// so they cannot detach an otherwise-clean shard from its parent
/// epoch — and never reach the delta either.
fn apply_validated(
    program: &mut Program,
    db: &mut Database,
    parsed: &Program,
) -> (FxHashSet<Pred>, Delta) {
    let mut dirty = FxHashSet::default();
    let mut delta = Delta::default();
    for (pred, tuple) in &parsed.facts {
        let name = parsed.pred_name(*pred);
        let arity = parsed.arity(*pred);
        let fresh_pred = program.pred_by_name(name).is_none();
        let target = program.pred(name, arity);
        let mapped: Vec<_> = tuple
            .iter()
            .map(|&c| program.consts.intern(parsed.consts.value(c).clone()))
            .collect();
        if fresh_pred {
            db.ensure_pred(target, arity);
            dirty.insert(target);
        }
        if !db.contains(target, &mapped) {
            db.insert(target, &mapped);
            delta.push(target, mapped.clone());
            program.add_fact(target, mapped);
            dirty.insert(target);
        }
    }
    (dirty, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::ConstValue;
    use std::sync::Arc;

    const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                      e(a,b). e(b,c).";

    fn store() -> SnapshotStore {
        SnapshotStore::new(parse_program(TC).unwrap())
    }

    #[test]
    fn ingest_bumps_epoch_and_preserves_old_snapshots() {
        let store = store();
        let before = store.snapshot();
        assert_eq!(before.epoch(), 0);
        let after = store.ingest("e(c,d).").unwrap();
        assert_eq!(after.epoch(), 1);
        // The old snapshot is untouched.
        let e = before.program().pred_by_name("e").unwrap();
        assert_eq!(before.db().relation(e).len(), 2);
        assert_eq!(after.db().relation(e).len(), 3);
        assert_eq!(store.snapshot().epoch(), 1);
    }

    #[test]
    fn ingest_shares_untouched_shards_with_the_parent_epoch() {
        let store = SnapshotStore::new(
            parse_program(
                "tc(X,Y) :- e(X,Y).\n\
                 tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                 e(a,b). f(a,b). g(a,b). h(a,b).",
            )
            .unwrap(),
        );
        let before = store.snapshot();
        let after = store.ingest("e(b,c).").unwrap();
        let pred = |n: &str| before.program().pred_by_name(n).unwrap();
        // The dirty shard was replaced...
        assert!(!Arc::ptr_eq(
            before.db().shard(pred("e")).unwrap(),
            after.db().shard(pred("e")).unwrap()
        ));
        // ...every other shard is pointer-identical across the epochs.
        for name in ["f", "g", "h", "tc"] {
            assert!(
                Arc::ptr_eq(
                    before.db().shard(pred(name)).unwrap(),
                    after.db().shard(pred(name)).unwrap()
                ),
                "shard `{name}` must be shared across epochs"
            );
        }
        assert_eq!(
            after.dirty_preds().iter().copied().collect::<Vec<_>>(),
            vec![pred("e")]
        );
    }

    #[test]
    fn duplicate_only_ingest_leaves_every_shard_shared() {
        let store = store();
        let before = store.snapshot();
        let after = store.ingest("e(a,b).").unwrap();
        let e = before.program().pred_by_name("e").unwrap();
        // The fact already existed: even the target shard stays shared
        // and nothing is marked dirty.
        assert!(Arc::ptr_eq(
            before.db().shard(e).unwrap(),
            after.db().shard(e).unwrap()
        ));
        assert!(after.dirty_preds().is_empty());
        assert_eq!(after.epoch(), 1);
    }

    #[test]
    fn warm_indexes_survive_epoch_publication() {
        let store = store();
        let before = store.snapshot();
        let e = before.program().pred_by_name("e").unwrap();
        // Publication prewarms both binary indexes.
        assert!(before.db().relation(e).has_index(rq_datalog::mask_of([0])));
        let after = store.ingest("e(c,d). x(p,q).").unwrap();
        // The dirty shard detached but kept its warm indexes (persistent
        // index maps travel with the clone).
        assert!(after.db().relation(e).has_index(rq_datalog::mask_of([0])));
        assert!(after.db().relation(e).has_index(rq_datalog::mask_of([1])));
        let mut out = Vec::new();
        let c = after
            .program()
            .consts
            .get(&ConstValue::Str("c".into()))
            .unwrap();
        after
            .db()
            .relation(e)
            .lookup(rq_datalog::mask_of([0]), &[c], &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn compact_stores_survive_epoch_publication_on_clean_shards() {
        let store = SnapshotStore::new(
            parse_program(
                "tc(X,Y) :- e(X,Y).\n\
                 tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                 e(a,b). f(a,b).",
            )
            .unwrap(),
        );
        let before = store.snapshot();
        let pred = |n: &str| before.program().pred_by_name(n).unwrap();
        // Epoch 0 builds stores for every shard — both base relations
        // plus the (empty) derived `tc` shard.
        assert_eq!(before.csr_builds(), 3);
        assert!(before.db().relation(pred("e")).has_compact());
        let after = store.ingest("e(b,c).").unwrap();
        // Only the dirty shard rebuilt; `f` kept its store through the
        // copy-on-write clone.
        assert_eq!(after.csr_builds(), 1);
        assert!(after.db().relation(pred("e")).has_compact());
        assert!(after.db().relation(pred("f")).has_compact());
        // The rebuilt store answers over the post-ingest extension.
        let b = after
            .program()
            .consts
            .get(&ConstValue::Str("b".into()))
            .unwrap();
        let succ = after
            .db()
            .relation(pred("e"))
            .compact_store()
            .unwrap()
            .successors(b)
            .map(<[_]>::to_vec)
            .unwrap_or_default();
        assert_eq!(succ.len(), 1, "e(b,c) is visible through the new CSR");
    }

    #[test]
    fn interned_ids_are_stable_across_epochs() {
        let store = store();
        let before = store.snapshot();
        let after = store.ingest("e(d,a). e(a,z9).").unwrap();
        let a_before = before.program().consts.get(&ConstValue::Str("a".into()));
        let a_after = after.program().consts.get(&ConstValue::Str("a".into()));
        assert_eq!(a_before, a_after);
        assert!(after
            .program()
            .consts
            .get(&ConstValue::Str("z9".into()))
            .is_some());
        assert_eq!(
            before.program().pred_by_name("e"),
            after.program().pred_by_name("e")
        );
    }

    #[test]
    fn ingest_new_predicate_and_integers() {
        let store = store();
        let snap = store.ingest("weight(a, 10). weight(b, 20).").unwrap();
        let w = snap.program().pred_by_name("weight").unwrap();
        assert_eq!(snap.db().relation(w).len(), 2);
        assert!(snap.program().consts.get(&ConstValue::Int(10)).is_some());
        assert!(snap.dirty_preds().contains(&w));
    }

    #[test]
    fn ingest_rejects_rules_derived_heads_and_arity_conflicts() {
        let store = store();
        assert_eq!(
            store.ingest("p(X,Y) :- e(X,Y).").err(),
            Some(IngestError::RulesNotAllowed)
        );
        assert_eq!(
            store.ingest("tc(a,b).").err(),
            Some(IngestError::DerivedPredicate("tc".into()))
        );
        assert!(matches!(
            store.ingest("e(a,b,c)."),
            Err(IngestError::ArityMismatch { .. })
        ));
        assert!(matches!(store.ingest("e(a,"), Err(IngestError::Parse(_))));
        // Failed ingests publish nothing.
        assert_eq!(store.snapshot().epoch(), 0);
    }

    #[test]
    fn rejected_batches_are_atomic_even_mid_batch() {
        // The bad clause arrives after a good one; validation runs over
        // the whole batch before anything is applied, so the good fact
        // must not leak into a published epoch.
        let store = store();
        assert!(store.ingest("e(y1,y2). tc(a,b).").is_err());
        assert_eq!(store.snapshot().epoch(), 0);
        assert!(store
            .snapshot()
            .program()
            .consts
            .get(&ConstValue::Str("y1".into()))
            .is_none());
    }

    #[test]
    fn delta_records_only_genuinely_new_tuples() {
        let store = store();
        assert!(store.snapshot().delta().is_empty(), "epoch 0 is baseline");
        // One duplicate, one new fact: only the new row reaches the delta.
        let snap = store.ingest("e(a,b). e(c,d).").unwrap();
        let e = snap.program().pred_by_name("e").unwrap();
        let rows = snap.delta().rows(e).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(snap.delta().total_rows(), 1);
        let c = snap.program().consts.get(&ConstValue::Str("c".into()));
        assert_eq!(rows[0][0], c.unwrap());
        // Duplicate-only ingest: empty delta.
        let snap = store.ingest("e(a,b).").unwrap();
        assert!(snap.delta().is_empty());
        assert!(snap.delta().rows(e).is_none());
    }

    #[test]
    fn durability_demotes_on_first_dirty_and_stamps_revisions() {
        let store = SnapshotStore::new(
            parse_program(
                "tc(X,Y) :- e(X,Y).\n\
                 tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                 e(a,b). f(a,b).",
            )
            .unwrap(),
        );
        let base = store.snapshot();
        let e = base.program().pred_by_name("e").unwrap();
        let f = base.program().pred_by_name("f").unwrap();
        // Epoch 0: everything is dirty but nothing is demoted yet.
        assert_eq!(base.durability(e), Durability::High);
        assert_eq!((base.rev_low(), base.rev_high()), (0, 0));
        // First ingest into e: demotion moves both revisions.
        let snap = store.ingest("e(b,c).").unwrap();
        assert_eq!(snap.durability(e), Durability::Low);
        assert_eq!(snap.durability(f), Durability::High);
        assert_eq!((snap.rev_low(), snap.rev_high()), (1, 1));
        // Second ingest into the already-low e: only rev_low moves.
        let snap = store.ingest("e(c,d).").unwrap();
        assert_eq!((snap.rev_low(), snap.rev_high()), (2, 1));
        assert!(snap.low_preds().contains(&e));
        assert!(!snap.low_preds().contains(&f));
        // Duplicate-only ingest: neither revision moves.
        let snap = store.ingest("e(c,d).").unwrap();
        assert_eq!((snap.rev_low(), snap.rev_high()), (2, 1));
        // Dirtying the still-high f moves rev_high again.
        let snap = store.ingest("f(b,c).").unwrap();
        assert_eq!((snap.rev_low(), snap.rev_high()), (3, 2));
        assert_eq!(snap.durability(f), Durability::Low);
    }

    #[test]
    fn rules_fingerprint_survives_fact_ingest() {
        let store = store();
        let before = store.snapshot();
        let after = store.ingest("e(c,d). extra(a,b).").unwrap();
        assert_eq!(before.rules_fingerprint(), after.rules_fingerprint());
    }
}
