//! The query service: snapshots + plan cache + result cache + a
//! parallel batch front end.

use crate::plan::{Adornment, PlanCache, ProgramPlan};
use crate::results::{CachedResult, QueryKind, ResultCache, ResultKey};
use crate::snapshot::{IngestError, Snapshot, SnapshotStore};
use rq_common::{Const, ConstValue, FxHashMap, Pred};
use rq_datalog::Program;
use rq_engine::{
    candidate_sources, cyclic_iteration_bound, inverse_cyclic_iteration_bound, EdbSource,
    EvalOptions, Evaluator,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Service-level settings.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads for [`QueryService::query_batch`].  `1` means the
    /// batch runs inline on the caller's thread.
    pub threads: usize,
    /// Base evaluation options applied to every query.
    pub options: EvalOptions,
    /// When `options.max_iterations` is `None`, bound each traversal by
    /// the Marchetti-Spaccamela `m·n` bound (§3, Figure 8) so cyclic
    /// data cannot hang the service.  The bound is sufficient, so
    /// guarded runs still report `converged`.
    pub cyclic_guard: bool,
    /// Safety valve for equations where no `m·n` bound is computable
    /// (non-linear shapes — e.g. surviving mutual recursion): when the
    /// cyclic guard is requested but yields no bound and no explicit
    /// `node_budget` is set, cap the traversal at this many graph
    /// nodes.  A capped run honestly reports `converged = false`.
    /// `None` disables the valve (a divergent query then hangs its
    /// worker).
    pub fallback_node_budget: Option<u64>,
    /// Memoize answers in the result cache.  Off is useful for
    /// benchmarking raw traversal throughput.
    pub memoize_results: bool,
    /// Entry cap for the result cache (`None` = unbounded).  Overflow
    /// evicts least-recently-used entries; see
    /// [`crate::ResultCache::stats`] for the eviction counter.
    pub result_cache_capacity: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            options: EvalOptions::default(),
            cyclic_guard: true,
            fallback_node_budget: Some(2_000_000),
            memoize_results: true,
            result_cache_capacity: Some(1 << 16),
        }
    }
}

/// One point query: exactly one bound argument of a derived binary
/// predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PointQuery {
    /// The queried (derived) predicate.
    pub pred: Pred,
    /// Which argument is bound.
    pub adornment: Adornment,
    /// The bound constant.
    pub constant: Const,
}

/// Any query shape the service answers (§3's query forms over a derived
/// binary predicate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServeQuery {
    /// `p(a, Y)` / `p(X, a)` — one bound argument.
    Point(PointQuery),
    /// `p(X, Y)` — every pair, computed per candidate source.
    AllPairs {
        /// The queried (derived) predicate.
        pred: Pred,
    },
    /// `p(X, X)` — the diagonal of the all-pairs answer.
    Diagonal {
        /// The queried (derived) predicate.
        pred: Pred,
    },
}

impl ServeQuery {
    /// The queried predicate, regardless of shape.
    pub fn pred(&self) -> Pred {
        match self {
            ServeQuery::Point(q) => q.pred,
            ServeQuery::AllPairs { pred } | ServeQuery::Diagonal { pred } => *pred,
        }
    }
}

impl From<PointQuery> for ServeQuery {
    fn from(q: PointQuery) -> Self {
        ServeQuery::Point(q)
    }
}

/// A served answer.
#[derive(Clone, Debug)]
pub struct ServiceAnswer {
    /// The snapshot epoch the answer was computed on.
    pub epoch: u64,
    /// Sorted, deduplicated answer constants (point and diagonal
    /// queries; empty for all-pairs).
    pub answers: Arc<Vec<Const>>,
    /// Sorted, deduplicated `(x, y)` rows (all-pairs queries; empty
    /// otherwise).
    pub pairs: Arc<Vec<(Const, Const)>>,
    /// Whether the evaluation converged (guarded cyclic runs converge
    /// by the sufficiency of the `m·n` bound).
    pub converged: bool,
    /// Whether the answer came from the result cache.
    pub from_cache: bool,
}

/// Errors surfaced by the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The query text was not `pred(arg, arg)`.
    Malformed(String),
    /// The queried predicate does not exist.
    UnknownPredicate(String),
    /// The queried predicate is a base relation (nothing to derive).
    NotDerived(String),
    /// The predicate is not binary.
    NotBinary(String),
    /// Both arguments were bound (`p(a, b)` needs the §4 transformation).
    NotPointQuery(String),
    /// The bound constant never occurs in the program or its data.
    UnknownConstant(String),
    /// The rule set is outside the binary-chain class.
    Plan(String),
    /// Fact ingestion failed.
    Ingest(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Malformed(t) => write!(f, "malformed query `{t}`"),
            ServiceError::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            ServiceError::NotDerived(p) => write!(f, "`{p}` is a base predicate"),
            ServiceError::NotBinary(p) => write!(f, "`{p}` is not binary"),
            ServiceError::NotPointQuery(t) => {
                write!(f, "`{t}` binds both arguments; bind at most one")
            }
            ServiceError::UnknownConstant(c) => write!(f, "unknown constant `{c}`"),
            ServiceError::Plan(e) => write!(f, "cannot compile program: {e}"),
            ServiceError::Ingest(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<IngestError> for ServiceError {
    fn from(e: IngestError) -> Self {
        ServiceError::Ingest(e.to_string())
    }
}

/// A thread-safe query-serving layer over one Datalog program.
///
/// ```
/// use rq_service::QueryService;
///
/// let service = QueryService::from_source(
///     "tc(X,Y) :- e(X,Y).\n\
///      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
///      e(a,b). e(b,c).",
/// ).unwrap();
/// let q = service.parse_query("tc(a, Y)").unwrap();
/// let batch = service.query_batch(&[q, q]);
/// let answer = batch[0].as_ref().unwrap();
/// assert_eq!(answer.answers.len(), 2); // {b, c}
/// service.ingest("e(c,d).").unwrap();
/// let fresh = service.query(&q).unwrap();
/// assert_eq!(fresh.answers.len(), 3); // {b, c, d}
/// assert_eq!(fresh.epoch, 1);
/// // All-pairs and diagonal forms are served too.
/// let all = service.query(&service.parse_query("tc(X, Y)").unwrap()).unwrap();
/// assert_eq!(all.pairs.len(), 6);
/// ```
pub struct QueryService {
    store: SnapshotStore,
    plans: PlanCache,
    results: ResultCache,
    config: ServiceConfig,
    /// Serializes publish + cache carry-forward as one unit, so two
    /// concurrent ingests cannot run their epoch GC out of order (a
    /// later epoch's GC would drop the earlier epoch's survivors).
    ingest_gc: std::sync::Mutex<()>,
}

impl QueryService {
    /// Serve `program` with default settings.
    pub fn new(program: Program) -> Self {
        Self::with_config(program, ServiceConfig::default())
    }

    /// Serve `program` with explicit settings.
    pub fn with_config(program: Program, config: ServiceConfig) -> Self {
        Self {
            store: SnapshotStore::new(program),
            plans: PlanCache::new(),
            results: ResultCache::with_capacity(config.result_cache_capacity),
            config,
            ingest_gc: std::sync::Mutex::new(()),
        }
    }

    /// Parse `source` and serve it.
    pub fn from_source(source: &str) -> Result<Self, ServiceError> {
        let program =
            rq_datalog::parse_program(source).map_err(|e| ServiceError::Ingest(e.to_string()))?;
        Ok(Self::new(program))
    }

    /// The service settings.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The plan cache (for stats and tests).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The result cache (for stats and tests).
    pub fn result_cache(&self) -> &ResultCache {
        &self.results
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// Ingest fact clauses copy-on-write and publish the next epoch.
    /// In-flight readers keep their snapshot.  Result-cache entries are
    /// invalidated **per predicate**: an entry survives (re-keyed to
    /// the new epoch) when its plan reads none of the shards the
    /// publish dirtied, so an ingest into `e` leaves answers over
    /// disjoint predicates hot.
    pub fn ingest(&self, facts_text: &str) -> Result<Arc<Snapshot>, ServiceError> {
        // Publish and carry-forward must happen atomically with respect
        // to other ingests: epoch N's GC only vouches for N-1 entries,
        // so running two GCs out of order would flush survivors.
        let _gc = self.ingest_gc.lock().expect("ingest lock poisoned");
        let snap = self.store.ingest(facts_text)?;
        let dirty = snap.dirty_preds();
        let plan = self.plans.peek_program(snap.rules_fingerprint());
        // One read-set walk per distinct predicate in the cache, not per
        // entry.
        let mut survives_by_pred: FxHashMap<Pred, bool> = FxHashMap::default();
        self.results.carry_forward(snap.epoch(), |key| {
            *survives_by_pred.entry(key.pred).or_insert_with(|| {
                plan.as_ref()
                    .is_some_and(|p| p.read_set(key.pred).is_disjoint(dirty))
            })
        });
        Ok(snap)
    }

    /// Parse a query (`p(a, Y)`, `p(X, a)`, `p(X, Y)`, or `p(X, X)`)
    /// against the current snapshot's program.
    pub fn parse_query(&self, text: &str) -> Result<ServeQuery, ServiceError> {
        parse_serve_query(self.snapshot().program(), text)
    }

    /// Answer one query on the current snapshot.
    pub fn query(&self, query: &ServeQuery) -> Result<ServiceAnswer, ServiceError> {
        self.query_on(&self.snapshot(), query)
    }

    /// Answer one query on a caller-held snapshot (all queries of a
    /// batch see one epoch).
    pub fn query_on(
        &self,
        snapshot: &Snapshot,
        query: &ServeQuery,
    ) -> Result<ServiceAnswer, ServiceError> {
        match query {
            ServeQuery::Point(q) => self.point_on(snapshot, q),
            ServeQuery::AllPairs { pred } => self.all_pairs_on(snapshot, *pred),
            ServeQuery::Diagonal { pred } => self.diagonal_on(snapshot, *pred),
        }
    }

    fn point_on(
        &self,
        snapshot: &Snapshot,
        query: &PointQuery,
    ) -> Result<ServiceAnswer, ServiceError> {
        let key = ResultKey {
            epoch: snapshot.epoch(),
            pred: query.pred,
            kind: QueryKind::Point {
                adornment: query.adornment,
                constant: query.constant,
            },
        };
        if self.config.memoize_results {
            if let Some(hit) = self.results.get(&key) {
                return Ok(ServiceAnswer {
                    epoch: snapshot.epoch(),
                    answers: hit.answers,
                    pairs: hit.pairs,
                    converged: hit.converged,
                    from_cache: true,
                });
            }
        }
        let plan = self
            .plans
            .plan_for(snapshot, query.pred, query.adornment)
            .map_err(|e| ServiceError::Plan(e.to_string()))?;
        let (answers, converged) = self.evaluate(snapshot, &plan, query);
        let answers = Arc::new(answers);
        let pairs = Arc::new(Vec::new());
        if self.config.memoize_results {
            self.results.insert(
                key,
                CachedResult {
                    answers: Arc::clone(&answers),
                    pairs: Arc::clone(&pairs),
                    converged,
                },
            );
        }
        Ok(ServiceAnswer {
            epoch: snapshot.epoch(),
            answers,
            pairs,
            converged,
            from_cache: false,
        })
    }

    /// `p(X, Y)`: one guarded traversal per candidate source, answers
    /// merged into sorted `(x, y)` rows.
    fn all_pairs_on(&self, snapshot: &Snapshot, pred: Pred) -> Result<ServiceAnswer, ServiceError> {
        let key = ResultKey {
            epoch: snapshot.epoch(),
            pred,
            kind: QueryKind::AllPairs,
        };
        if self.config.memoize_results {
            if let Some(hit) = self.results.get(&key) {
                return Ok(ServiceAnswer {
                    epoch: snapshot.epoch(),
                    answers: hit.answers,
                    pairs: hit.pairs,
                    converged: hit.converged,
                    from_cache: true,
                });
            }
        }
        let plan = self
            .plans
            .plan_for(snapshot, pred, Adornment::BoundFree)
            .map_err(|e| ServiceError::Plan(e.to_string()))?;
        let sources = {
            let source = EdbSource::new(snapshot.db());
            candidate_sources(&plan.system, &source, pred)
        };
        let mut pairs: Vec<(Const, Const)> = Vec::new();
        let mut converged = true;
        for a in sources {
            let q = PointQuery {
                pred,
                adornment: Adornment::BoundFree,
                constant: a,
            };
            // Each per-source traversal goes through the point-query
            // path, so it reuses already-memoized point answers and
            // leaves its own behind for later point queries.
            let answer = self.point_on(snapshot, &q)?;
            converged &= answer.converged;
            pairs.extend(answer.answers.iter().map(|&y| (a, y)));
        }
        pairs.sort_unstable();
        pairs.dedup();
        let answers = Arc::new(Vec::new());
        let pairs = Arc::new(pairs);
        if self.config.memoize_results {
            self.results.insert(
                key,
                CachedResult {
                    answers: Arc::clone(&answers),
                    pairs: Arc::clone(&pairs),
                    converged,
                },
            );
        }
        Ok(ServiceAnswer {
            epoch: snapshot.epoch(),
            answers,
            pairs,
            converged,
            from_cache: false,
        })
    }

    /// `p(X, X)`: the diagonal of the all-pairs answer (which this
    /// computes through, and therefore warms, the all-pairs cache
    /// entry).
    fn diagonal_on(&self, snapshot: &Snapshot, pred: Pred) -> Result<ServiceAnswer, ServiceError> {
        let key = ResultKey {
            epoch: snapshot.epoch(),
            pred,
            kind: QueryKind::Diagonal,
        };
        if self.config.memoize_results {
            if let Some(hit) = self.results.get(&key) {
                return Ok(ServiceAnswer {
                    epoch: snapshot.epoch(),
                    answers: hit.answers,
                    pairs: hit.pairs,
                    converged: hit.converged,
                    from_cache: true,
                });
            }
        }
        let all = self.all_pairs_on(snapshot, pred)?;
        let answers: Vec<Const> = all
            .pairs
            .iter()
            .filter(|(x, y)| x == y)
            .map(|&(x, _)| x)
            .collect();
        let answers = Arc::new(answers);
        let pairs = Arc::new(Vec::new());
        if self.config.memoize_results {
            self.results.insert(
                key,
                CachedResult {
                    answers: Arc::clone(&answers),
                    pairs: Arc::clone(&pairs),
                    converged: all.converged,
                },
            );
        }
        Ok(ServiceAnswer {
            epoch: snapshot.epoch(),
            answers,
            pairs,
            converged: all.converged,
            from_cache: false,
        })
    }

    /// Fan a batch of queries out across the configured worker
    /// threads.  The whole batch is answered on **one** snapshot (the
    /// current epoch at entry), so results are mutually consistent even
    /// while ingestion runs concurrently.  Output order matches input
    /// order.
    pub fn query_batch(&self, queries: &[ServeQuery]) -> Vec<Result<ServiceAnswer, ServiceError>> {
        let snapshot = self.snapshot();
        let workers = self.config.threads.clamp(1, queries.len().max(1));
        if workers <= 1 {
            return queries
                .iter()
                .map(|q| self.query_on(&snapshot, q))
                .collect();
        }
        let slots: Vec<OnceLock<Result<ServiceAnswer, ServiceError>>> =
            (0..queries.len()).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(query) = queries.get(i) else { break };
                    let answer = self.query_on(&snapshot, query);
                    slots[i].set(answer).expect("slot claimed twice");
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker left a slot empty"))
            .collect()
    }

    /// The traversal itself, with the cyclic guard applied when asked.
    fn evaluate(
        &self,
        snapshot: &Snapshot,
        plan: &ProgramPlan,
        query: &PointQuery,
    ) -> (Vec<Const>, bool) {
        let mut options = self.config.options.clone();
        let mut guarded = false;
        if options.max_iterations.is_none() && self.config.cyclic_guard {
            // +1 as in `evaluate_with_cyclic_guard`: iteration i explores
            // recursion depth i-1.
            let bound = match query.adornment {
                Adornment::BoundFree => {
                    cyclic_iteration_bound(&plan.system, snapshot.db(), query.pred, query.constant)
                }
                Adornment::FreeBound => inverse_cyclic_iteration_bound(
                    &plan.system,
                    snapshot.db(),
                    query.pred,
                    query.constant,
                ),
            };
            options.max_iterations = bound.map(|b| b + 1);
            guarded = options.max_iterations.is_some();
            if !guarded && options.node_budget.is_none() {
                // No m·n bound exists for this equation shape; fall
                // back to a node budget so a divergent traversal cannot
                // hang the worker.  Hitting it reports non-convergence.
                options.node_budget = self.config.fallback_node_budget;
            }
        }
        let source = EdbSource::new(snapshot.db());
        let evaluator = Evaluator::with_plan(&plan.system, &plan.compiled, &source);
        let outcome = match query.adornment {
            Adornment::BoundFree => evaluator.evaluate(query.pred, query.constant, &options),
            Adornment::FreeBound => {
                evaluator.evaluate_inverse(query.pred, query.constant, &options)
            }
        };
        let mut answers: Vec<Const> = outcome.answers.into_iter().collect();
        answers.sort_unstable();
        // The m·n bound is sufficient, so hitting it is completion.
        (answers, outcome.converged || guarded)
    }
}

/// Parse `pred(arg, arg)` with exactly one bound argument against
/// `program`.  Lowercase/integer arguments are constants; uppercase or
/// `_`-led arguments are free variables.
pub fn parse_point_query(program: &Program, text: &str) -> Result<PointQuery, ServiceError> {
    match parse_serve_query(program, text)? {
        ServeQuery::Point(q) => Ok(q),
        _ => Err(ServiceError::Malformed(format!(
            "{} (expected a point query)",
            text.trim()
        ))),
    }
}

/// Parse any served query form against `program`:
///
/// * `p(a, Y)` / `p(X, a)` — a [`PointQuery`];
/// * `p(X, Y)` (distinct variables, `_` counts as distinct) — all pairs;
/// * `p(X, X)` (the same named variable twice) — the diagonal.
///
/// Lowercase/integer arguments are constants; uppercase or `_`-led
/// arguments are free variables.
pub fn parse_serve_query(program: &Program, text: &str) -> Result<ServeQuery, ServiceError> {
    let trimmed = text.trim();
    let malformed = || ServiceError::Malformed(trimmed.to_string());
    let open = trimmed.find('(').ok_or_else(malformed)?;
    let close = trimmed.rfind(')').ok_or_else(malformed)?;
    if close != trimmed.len() - 1 || open == 0 {
        return Err(malformed());
    }
    let name = trimmed[..open].trim();
    let args: Vec<&str> = trimmed[open + 1..close].split(',').map(str::trim).collect();
    let pred = program
        .pred_by_name(name)
        .ok_or_else(|| ServiceError::UnknownPredicate(name.to_string()))?;
    if !program.is_derived(pred) {
        return Err(ServiceError::NotDerived(name.to_string()));
    }
    if program.arity(pred) != 2 {
        return Err(ServiceError::NotBinary(name.to_string()));
    }
    if args.len() != 2 {
        return Err(malformed());
    }
    enum Arg<'t> {
        Var(&'t str),
        Bound(ConstValue),
    }
    fn classify<'t>(arg: &'t str, whole: &str) -> Result<Arg<'t>, ServiceError> {
        if arg.is_empty() {
            return Err(ServiceError::Malformed(whole.to_string()));
        }
        let first = arg.chars().next().expect("non-empty");
        if first.is_ascii_uppercase() || first == '_' {
            return Ok(Arg::Var(arg));
        }
        if let Ok(i) = arg.parse::<i64>() {
            return Ok(Arg::Bound(ConstValue::Int(i)));
        }
        Ok(Arg::Bound(ConstValue::Str(arg.to_string())))
    }
    let lookup_const = |value: ConstValue| -> Result<Const, ServiceError> {
        program.consts.get(&value).ok_or_else(|| {
            ServiceError::UnknownConstant(match value {
                ConstValue::Int(i) => i.to_string(),
                ConstValue::Str(ref s) => s.clone(),
                ConstValue::Tuple(_) => unreachable!("parser never yields tuples"),
            })
        })
    };
    match (classify(args[0], trimmed)?, classify(args[1], trimmed)?) {
        (Arg::Bound(v), Arg::Var(_)) => Ok(ServeQuery::Point(PointQuery {
            pred,
            adornment: Adornment::BoundFree,
            constant: lookup_const(v)?,
        })),
        (Arg::Var(_), Arg::Bound(v)) => Ok(ServeQuery::Point(PointQuery {
            pred,
            adornment: Adornment::FreeBound,
            constant: lookup_const(v)?,
        })),
        (Arg::Var(x), Arg::Var(y)) => {
            // `p(X, X)` is the diagonal; `_` is anonymous, so `p(_, _)`
            // stays all-pairs.
            if x == y && x != "_" {
                Ok(ServeQuery::Diagonal { pred })
            } else {
                Ok(ServeQuery::AllPairs { pred })
            }
        }
        (Arg::Bound(_), Arg::Bound(_)) => Err(ServiceError::NotPointQuery(trimmed.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                      e(a,b). e(b,c). e(c,d).";

    fn names(service: &QueryService, answer: &ServiceAnswer) -> Vec<String> {
        let snap = service.snapshot();
        answer
            .answers
            .iter()
            .map(|&c| snap.program().consts.display(c))
            .collect()
    }

    fn pair_names(service: &QueryService, answer: &ServiceAnswer) -> Vec<(String, String)> {
        let snap = service.snapshot();
        answer
            .pairs
            .iter()
            .map(|&(x, y)| {
                (
                    snap.program().consts.display(x),
                    snap.program().consts.display(y),
                )
            })
            .collect()
    }

    #[test]
    fn single_query_both_adornments() {
        let service = QueryService::from_source(TC).unwrap();
        let bf = service.parse_query("tc(b, Y)").unwrap();
        let out = service.query(&bf).unwrap();
        assert_eq!(names(&service, &out), vec!["c", "d"]);
        assert!(out.converged);
        let fb = service.parse_query("tc(X, c)").unwrap();
        let out = service.query(&fb).unwrap();
        assert_eq!(names(&service, &out), vec!["a", "b"]);
    }

    #[test]
    fn all_pairs_query_form() {
        let service = QueryService::from_source(TC).unwrap();
        let q = service.parse_query("tc(X, Y)").unwrap();
        assert!(matches!(q, ServeQuery::AllPairs { .. }));
        let out = service.query(&q).unwrap();
        assert!(out.answers.is_empty());
        // tc over the chain a→b→c→d: 3+2+1 pairs.
        assert_eq!(out.pairs.len(), 6);
        let pairs = pair_names(&service, &out);
        assert!(pairs.contains(&("a".into(), "d".into())));
        // Oracle: the seminaive fixpoint.
        let oracle = rq_datalog::seminaive_eval(service.snapshot().program()).unwrap();
        let tc = service.snapshot().program().pred_by_name("tc").unwrap();
        assert_eq!(out.pairs.len(), oracle.tuples(tc).len());
        // Memoized on repeat.
        let again = service.query(&q).unwrap();
        assert!(again.from_cache);
        assert!(Arc::ptr_eq(&out.pairs, &again.pairs));
    }

    #[test]
    fn diagonal_query_form() {
        let service = QueryService::from_source(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,a). e(b,c).",
        )
        .unwrap();
        let q = service.parse_query("tc(X, X)").unwrap();
        assert!(matches!(q, ServeQuery::Diagonal { .. }));
        let out = service.query(&q).unwrap();
        // The a↔b cycle puts exactly a and b on the diagonal.
        assert_eq!(names(&service, &out), vec!["a", "b"]);
        assert!(out.pairs.is_empty());
        // Underscores are anonymous: `tc(_, _)` is all-pairs.
        let anon = service.parse_query("tc(_, _)").unwrap();
        assert!(matches!(anon, ServeQuery::AllPairs { .. }));
        // The diagonal warmed the all-pairs entry as a byproduct.
        let all = service
            .query(&service.parse_query("tc(X, Y)").unwrap())
            .unwrap();
        assert!(all.from_cache);
    }

    #[test]
    fn results_memoize_and_invalidate_on_ingest() {
        let service = QueryService::from_source(TC).unwrap();
        let q = service.parse_query("tc(a, Y)").unwrap();
        let first = service.query(&q).unwrap();
        assert!(!first.from_cache);
        let second = service.query(&q).unwrap();
        assert!(second.from_cache);
        assert!(Arc::ptr_eq(&first.answers, &second.answers));
        service.ingest("e(d,z).").unwrap();
        let third = service.query(&q).unwrap();
        assert!(!third.from_cache, "dirty-predicate entries must refresh");
        assert_eq!(third.epoch, 1);
        assert_eq!(names(&service, &third), vec!["b", "c", "d", "z"]);
        // Plans survived the ingest: one program compiled, reused after.
        assert_eq!(service.plan_cache().programs(), 1);
    }

    #[test]
    fn clean_predicate_entries_survive_ingest() {
        // Two derived predicates over disjoint base relations: an
        // ingest into one must not evict memoized answers of the other.
        let service = QueryService::from_source(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             rc(X,Y) :- f(X,Y).\n\
             rc(X,Z) :- f(X,Y), rc(Y,Z).\n\
             e(a,b). e(b,c). f(m,n). f(n,o).",
        )
        .unwrap();
        let tc_q = service.parse_query("tc(a, Y)").unwrap();
        let rc_q = service.parse_query("rc(m, Y)").unwrap();
        let tc_before = service.query(&tc_q).unwrap();
        let rc_before = service.query(&rc_q).unwrap();
        assert!(!tc_before.from_cache && !rc_before.from_cache);

        let snap = service.ingest("e(c,d).").unwrap();
        assert_eq!(snap.epoch(), 1);

        // rc reads only `f`, which the publish left clean: served from
        // cache, same Arc, new epoch.
        let rc_after = service.query(&rc_q).unwrap();
        assert!(rc_after.from_cache, "clean-predicate entry must survive");
        assert_eq!(rc_after.epoch, 1);
        assert!(Arc::ptr_eq(&rc_before.answers, &rc_after.answers));

        // tc reads `e`, which was dirtied: recomputed.
        let tc_after = service.query(&tc_q).unwrap();
        assert!(!tc_after.from_cache, "dirty-predicate entry must refresh");
        assert_eq!(names(&service, &tc_after), vec!["b", "c", "d"]);
    }

    #[test]
    fn bounded_cache_reports_evictions() {
        let service = QueryService::with_config(
            rq_datalog::parse_program(TC).unwrap(),
            ServiceConfig {
                threads: 1,
                result_cache_capacity: Some(2),
                ..ServiceConfig::default()
            },
        );
        for text in ["tc(a, Y)", "tc(b, Y)", "tc(c, Y)", "tc(X, b)", "tc(X, c)"] {
            let q = service.parse_query(text).unwrap();
            service.query(&q).unwrap();
        }
        assert!(service.result_cache().len() <= 2);
        assert!(service.result_cache().stats().evictions >= 3);
    }

    #[test]
    fn batch_is_ordered_and_consistent() {
        let service = QueryService::from_source(TC).unwrap();
        let queries: Vec<ServeQuery> = ["tc(a, Y)", "tc(b, Y)", "tc(c, Y)", "tc(X, d)"]
            .iter()
            .map(|t| service.parse_query(t).unwrap())
            .collect();
        let batch = service.query_batch(&queries);
        assert_eq!(batch.len(), 4);
        let sizes: Vec<usize> = batch
            .iter()
            .map(|r| r.as_ref().unwrap().answers.len())
            .collect();
        assert_eq!(sizes, vec![3, 2, 1, 3]);
        assert!(batch.iter().all(|r| r.as_ref().unwrap().epoch == 0));
    }

    #[test]
    fn batch_mixes_point_and_all_pairs_forms() {
        let service = QueryService::from_source(TC).unwrap();
        let queries: Vec<ServeQuery> = ["tc(a, Y)", "tc(X, Y)", "tc(X, X)"]
            .iter()
            .map(|t| service.parse_query(t).unwrap())
            .collect();
        let batch = service.query_batch(&queries);
        assert_eq!(batch[0].as_ref().unwrap().answers.len(), 3);
        assert_eq!(batch[1].as_ref().unwrap().pairs.len(), 6);
        assert!(batch[2].as_ref().unwrap().answers.is_empty()); // acyclic chain
    }

    #[test]
    fn cyclic_data_terminates_under_guard() {
        let service = QueryService::from_source(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a1,a2). up(a2,a1). flat(a1,b1).\n\
             down(b1,b2). down(b2,b3). down(b3,b1).",
        )
        .unwrap();
        let q = service.parse_query("sg(a1, Y)").unwrap();
        let out = service.query(&q).unwrap();
        assert!(out.converged, "the m·n guard is sufficient");
        assert_eq!(names(&service, &out), vec!["b1", "b2", "b3"]);
        // The inverse direction is guarded through the inverted system.
        let q = service.parse_query("sg(X, b1)").unwrap();
        let out = service.query(&q).unwrap();
        assert!(out.converged);
        assert_eq!(names(&service, &out), vec!["a1", "a2"]);
    }

    #[test]
    fn nonlinear_cyclic_query_stops_at_fallback_budget() {
        // Mutual recursion that Lemma 1 does not flatten to the linear
        // shape, so no m·n bound exists; cyclic data then diverges.
        // The fallback budget must stop it and report non-convergence.
        let service = QueryService::with_config(
            rq_datalog::parse_program(
                "q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
                 q2(X,Y) :- r2(X,Y).\n\
                 q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
                 a(s,t). a(t,s). r2(s,t). r2(t,s). r1(t,s). r1(s,t).",
            )
            .unwrap(),
            ServiceConfig {
                threads: 1,
                fallback_node_budget: Some(5_000),
                ..ServiceConfig::default()
            },
        );
        let q = service.parse_query("q1(s, Y)").unwrap();
        let ServeQuery::Point(pq) = q else {
            panic!("point query expected")
        };
        let out = service.query(&q).unwrap();
        // Sound answers, honest flag: possibly incomplete.
        let oracle = rq_datalog::seminaive_eval(service.snapshot().program()).unwrap();
        let q1 = service.snapshot().program().pred_by_name("q1").unwrap();
        let full: Vec<_> = oracle.tuples(q1);
        for &c in out.answers.iter() {
            assert!(full.iter().any(|t| t[0] == pq.constant && t[1] == c));
        }
        assert!(
            !out.converged,
            "a divergent traversal stopped by the budget must say so"
        );
    }

    #[test]
    fn parse_errors_are_specific() {
        let service = QueryService::from_source(TC).unwrap();
        assert!(matches!(
            service.parse_query("tc(a Y)"),
            Err(ServiceError::Malformed(_))
        ));
        assert!(matches!(
            service.parse_query("zzz(a, Y)"),
            Err(ServiceError::UnknownPredicate(_))
        ));
        assert!(matches!(
            service.parse_query("e(a, Y)"),
            Err(ServiceError::NotDerived(_))
        ));
        assert!(matches!(
            service.parse_query("tc(a, b)"),
            Err(ServiceError::NotPointQuery(_))
        ));
        assert!(matches!(
            service.parse_query("tc(nosuch, Y)"),
            Err(ServiceError::UnknownConstant(_))
        ));
        assert!(matches!(
            service.parse_query("tc"),
            Err(ServiceError::Malformed(_))
        ));
        // The free forms parse rather than erroring now.
        assert!(matches!(
            service.parse_query("tc(X, Y)"),
            Ok(ServeQuery::AllPairs { .. })
        ));
        assert!(matches!(
            service.parse_query("tc(Z, Z)"),
            Ok(ServeQuery::Diagonal { .. })
        ));
        // `parse_point_query` still insists on a point shape.
        assert!(matches!(
            parse_point_query(service.snapshot().program(), "tc(X, Y)"),
            Err(ServiceError::Malformed(_))
        ));
    }

    #[test]
    fn service_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryService>();
        assert_send_sync::<ServiceAnswer>();

        let service = QueryService::from_source(TC).unwrap();
        let q = service.parse_query("tc(a, Y)").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let out = service.query(&q).unwrap();
                    assert_eq!(out.answers.len(), 3);
                });
            }
        });
    }
}
