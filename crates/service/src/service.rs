//! The query service: snapshots + plan cache + result cache + a
//! parallel, deduplicating batch front end, all keyed on the
//! generalized [`QuerySpec`].

use crate::durable::{self, BaseProfile, DurabilityConfig, DurableStore, RecoveryReport};
use crate::plan::{PlanCache, PlanKey, ProgramPlan};
use crate::results::{CachedResult, ResultCache, ResultKey, SweepDecision};
use crate::snapshot::{IngestError, Snapshot, SnapshotStore};
use crate::spec::{Adornment, Arg, QuerySpec};
use rq_adorn::{NaryPlan, VirtualSource};
use rq_common::obs::{self, Counter, Histogram};
use rq_common::{Const, ConstValue, Counters, FxHashMap, FxHashSet, Pred, Registry};
use rq_datalog::{Program, Relation};
use rq_engine::{
    all_pairs_min_side, candidate_sources, cyclic_iteration_bound, inverse_cyclic_iteration_bound,
    EdbSource, EvalContext, EvalOptions, Evaluator,
};
use rq_store::StorageBackend;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Service-level settings.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads for [`QueryService::query_batch`].  `1` means the
    /// batch runs inline on the caller's thread.
    pub threads: usize,
    /// Worker threads for expanding machine instances *inside one
    /// traversal* ([`EvalOptions::expand_threads`]).  Single queries
    /// use the full count; a batch divides it by its own worker count
    /// so the two levels of parallelism compose instead of multiplying.
    /// Capped (like `threads`) by the `RQC_THREADS` environment
    /// variable.
    pub eval_threads: usize,
    /// Share the epoch-scoped evaluation context (machine-traversal
    /// memo + §4 virtual-probe memo + SCC routing) between the queries
    /// of one snapshot.  On by default; benches turn it off to measure
    /// cold-epoch per-query re-derivation.
    pub share_epoch_context: bool,
    /// Base evaluation options applied to every query.
    pub options: EvalOptions,
    /// When `options.max_iterations` is `None`, bound each binary-chain
    /// traversal by the Marchetti-Spaccamela `m·n` bound (§3, Figure 8)
    /// so cyclic data cannot hang the service.  The bound is
    /// sufficient, so guarded runs still report `converged`.
    pub cyclic_guard: bool,
    /// Safety valve for traversals with no computable `m·n` bound
    /// (non-linear §3 shapes and every §4 transformed machine, whose
    /// virtual relations the bound cannot inspect): when the cyclic
    /// guard is requested but yields no bound and no explicit
    /// `node_budget` is set, cap the traversal at this many graph
    /// nodes.  A capped run honestly reports `converged = false`.
    /// `None` disables the valve (a divergent query then hangs its
    /// worker).
    pub fallback_node_budget: Option<u64>,
    /// Memoize answers in the result cache.  Off is useful for
    /// benchmarking raw traversal throughput.
    pub memoize_results: bool,
    /// Entry cap for the result cache (`None` = unbounded).  Overflow
    /// evicts least-recently-used entries; see
    /// [`crate::ResultCache::stats`] for the eviction counter.
    pub result_cache_capacity: Option<usize>,
    /// Byte budget for the result cache over approximate answer
    /// footprints (`None` = unbounded), complementing the entry cap:
    /// one huge all-pairs answer is charged what it costs, not one
    /// slot.
    pub result_cache_bytes: Option<u64>,
    /// Repair warm epoch state in place at publish time (semi-naive
    /// delta propagation): dirty plans whose memos can be extended by
    /// the ingest delta keep their machine memos, §4 probe spaces and
    /// result-cache rows instead of being dropped and re-derived cold.
    /// Requires `share_epoch_context`; falling back to the cold path is
    /// always honest (counted by `rq_delta_fallback_cold_total`).
    pub delta_repair: bool,
    /// Durability knobs (fsync policy, checkpoint cadence) — consulted
    /// only when the service is opened with a storage backend
    /// ([`QueryService::open`] / [`QueryService::open_backend`]);
    /// in-memory services ignore it.
    pub durability: DurabilityConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let parallelism = rq_common::capped_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        );
        Self {
            threads: parallelism,
            eval_threads: parallelism,
            share_epoch_context: true,
            options: EvalOptions::default(),
            cyclic_guard: true,
            fallback_node_budget: Some(2_000_000),
            memoize_results: true,
            result_cache_capacity: Some(1 << 16),
            result_cache_bytes: Some(256 << 20),
            delta_repair: true,
            durability: DurabilityConfig::default(),
        }
    }
}

/// A served answer.
#[derive(Clone, Debug)]
pub struct ServiceAnswer {
    /// The snapshot epoch the answer was computed on.
    pub epoch: u64,
    /// Sorted, deduplicated answer rows over the query's distinct free
    /// positions in ascending position order: one column for point
    /// queries and diagonals, two for binary all-pairs, the free
    /// n-tuple for §4 queries.  A fully bound query answers `[[]]`
    /// (membership holds) or `[]` (it does not).
    pub rows: Arc<Vec<Vec<Const>>>,
    /// Whether the evaluation converged (guarded cyclic runs converge
    /// by the sufficiency of the `m·n` bound; budget-stopped runs
    /// honestly report `false`).
    pub converged: bool,
    /// Whether the answer came from the result cache.
    pub from_cache: bool,
}

impl ServiceAnswer {
    /// Whether a fully bound (membership) query holds.
    pub fn holds(&self) -> bool {
        self.rows.iter().any(|r| r.is_empty())
    }

    /// The single-column view of a point/diagonal answer (first column
    /// of every row) — convenience for binary callers.
    pub fn constants(&self) -> impl Iterator<Item = Const> + '_ {
        self.rows.iter().filter_map(|r| r.first().copied())
    }
}

/// Errors surfaced by the service.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The query text was not `pred(arg, …, arg)`.
    Malformed(String),
    /// The queried predicate does not exist.
    UnknownPredicate(String),
    /// The queried predicate is a base relation (nothing to derive).
    NotDerived(String),
    /// The query's argument count does not match the predicate arity.
    ArityMismatch {
        /// The predicate name.
        pred: String,
        /// The predicate's arity.
        expected: usize,
        /// Arguments in the query.
        got: usize,
    },
    /// The bound constant never occurs in the program or its data.
    UnknownConstant(String),
    /// Neither pipeline can compile this `(program, adornment)`.
    Plan(String),
    /// Fact ingestion failed.
    Ingest(String),
    /// Boot-time recovery from durable storage failed (unreadable data
    /// directory, a rule-set/fingerprint mismatch, or a log gap).
    Recovery(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Malformed(t) => write!(f, "malformed query `{t}`"),
            ServiceError::UnknownPredicate(p) => write!(f, "unknown predicate `{p}`"),
            ServiceError::NotDerived(p) => write!(f, "`{p}` is a base predicate"),
            ServiceError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "`{pred}` has arity {expected}, query has {got} arguments"
            ),
            ServiceError::UnknownConstant(c) => write!(f, "unknown constant `{c}`"),
            ServiceError::Plan(e) => write!(f, "cannot compile query plan: {e}"),
            ServiceError::Ingest(e) => write!(f, "{e}"),
            ServiceError::Recovery(e) => write!(f, "cannot recover durable state: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<IngestError> for ServiceError {
    fn from(e: IngestError) -> Self {
        ServiceError::Ingest(e.to_string())
    }
}

/// A thread-safe query-serving layer over one Datalog program.
///
/// ```
/// use rq_service::QueryService;
///
/// let service = QueryService::from_source(
///     "tc(X,Y) :- e(X,Y).\n\
///      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
///      e(a,b). e(b,c).",
/// ).unwrap();
/// let q = service.parse_query("tc(a, Y)").unwrap();
/// let batch = service.query_batch(&[q.clone(), q.clone()]);
/// let answer = batch[0].as_ref().unwrap();
/// assert_eq!(answer.rows.len(), 2); // {b, c}
/// service.ingest("e(c,d).").unwrap();
/// let fresh = service.query(&q).unwrap();
/// assert_eq!(fresh.rows.len(), 3); // {b, c, d}
/// assert_eq!(fresh.epoch, 1);
/// // Membership and all-pairs forms are served too.
/// let holds = service.query(&service.parse_query("tc(a, d)").unwrap()).unwrap();
/// assert!(holds.holds());
/// let all = service.query(&service.parse_query("tc(X, Y)").unwrap()).unwrap();
/// assert_eq!(all.rows.len(), 6);
/// ```
pub struct QueryService {
    store: SnapshotStore,
    plans: PlanCache,
    results: ResultCache,
    config: ServiceConfig,
    /// Instance-scoped metrics registry: the caches' own counter cells
    /// are adopted into it at construction, so `:stats`, `GET /stats`
    /// and `GET /metrics` all read the same cells (no global state —
    /// each service, and each test, gets its own registry).
    metrics: Arc<Registry>,
    /// Pre-resolved handles for the hot path — no registry lookup per
    /// query.
    counters: ServiceCounters,
    started: Instant,
    /// Serializes publish + cache carry-forward as one unit, so two
    /// concurrent ingests cannot run their epoch GC out of order (a
    /// later epoch's GC would drop the earlier epoch's survivors).
    ingest_gc: std::sync::Mutex<()>,
    /// The durable storage handle, when the service was opened with
    /// one ([`QueryService::open`] / [`QueryService::open_backend`]).
    /// `None` means purely in-memory: ingests are not logged.
    durable: Option<DurableStore>,
}

/// Registry handles the service increments on its own hot paths (the
/// cache hit/miss counters live inside the caches and are *adopted*
/// into the registry instead).
struct ServiceCounters {
    /// Queries evaluated through [`QueryService::query_on`] and the
    /// batch front end (internal re-entries — diagonal bases, per-source
    /// all-pairs sub-queries — count too: they are real evaluations).
    queries: Counter,
    /// Successful fact publishes.
    ingests: Counter,
    /// Graph nodes materialized by §3/§4 traversals on behalf of this
    /// service (the engine's `G`).
    engine_nodes: Counter,
    /// Traversals (or machine expansions) answered wholesale from the
    /// epoch context's machine memo.
    engine_teleports: Counter,
    /// Machine copies spliced during traversals.
    engine_instances: Counter,
    /// Compact stores (columnar + CSR) built at publish time.
    csr_builds: Counter,
    /// Wall time spent building compact stores, one observation per
    /// publish.
    csr_build_seconds: Histogram,
    /// Index probes served by a compact store (CSR slice or columnar
    /// scan).
    csr_probes: Counter,
    /// Index probes that walked (or built) a hash-trie index.
    trie_probes: Counter,
    /// Dirty plans whose warm memos were repaired in place at publish.
    delta_repairs: Counter,
    /// Memo/probe rows added by in-place delta repair.
    delta_repaired_rows: Counter,
    /// Dirty plans that fell back to cold re-derivation because the
    /// delta could not be propagated through their memos.
    delta_fallback_cold: Counter,
    /// Write-ahead-log records appended (one per published epoch, on
    /// durable services).
    wal_records: Counter,
    /// Bytes appended to the write-ahead log, frame headers included.
    wal_bytes: Counter,
    /// Checkpoint snapshots installed.
    wal_checkpoints: Counter,
    /// Checkpoint installs that failed (non-fatal; retried on the next
    /// ingest because the records stay in the log).
    wal_checkpoint_failures: Counter,
}

impl ServiceCounters {
    fn register(registry: &Registry, plans: &PlanCache, results: &ResultCache) -> Self {
        registry.adopt_counter(
            "rq_plan_cache_hits_total",
            "Plan-cache lookups answered from the cache.",
            &[],
            &plans.hits_counter(),
        );
        registry.adopt_counter(
            "rq_plan_cache_misses_total",
            "Plan-cache lookups that compiled a fresh plan.",
            &[],
            &plans.misses_counter(),
        );
        let (hits, misses, evictions, deduped) = results.counters();
        registry.adopt_counter(
            "rq_result_cache_hits_total",
            "Result-cache lookups answered from the cache.",
            &[],
            &hits,
        );
        registry.adopt_counter(
            "rq_result_cache_misses_total",
            "Result-cache lookups that fell through to evaluation.",
            &[],
            &misses,
        );
        registry.adopt_counter(
            "rq_result_cache_evictions_total",
            "Memoized results evicted under the entry or byte budget.",
            &[],
            &evictions,
        );
        registry.adopt_counter(
            "rq_result_cache_deduped_total",
            "Duplicate batch queries served from a sibling's answer.",
            &[],
            &deduped,
        );
        Self {
            queries: registry.counter("rq_queries_total", "Queries evaluated by the service."),
            ingests: registry.counter("rq_ingests_total", "Fact batches published as new epochs."),
            engine_nodes: registry.counter(
                "rq_engine_graph_nodes_total",
                "Nodes materialized in traversal graphs.",
            ),
            engine_teleports: registry.counter(
                "rq_engine_memo_teleports_total",
                "Traversal lookups answered wholesale from the machine memo.",
            ),
            engine_instances: registry.counter(
                "rq_engine_machine_instances_total",
                "Machine copies spliced during traversals.",
            ),
            csr_builds: registry.counter(
                "rq_csr_builds_total",
                "Compact stores (columnar buffers + CSR adjacency) built at publish time.",
            ),
            csr_build_seconds: registry.histogram(
                "rq_csr_build_seconds",
                "Wall time each publish spent building compact stores.",
            ),
            csr_probes: registry.counter(
                "rq_csr_probes_total",
                "Index probes served by a publish-time compact store.",
            ),
            trie_probes: registry.counter(
                "rq_trie_probes_total",
                "Index probes that walked (or built) a hash-trie index.",
            ),
            delta_repairs: registry.counter(
                "rq_delta_repairs_total",
                "Dirty plans whose warm memos were repaired in place at publish.",
            ),
            delta_repaired_rows: registry.counter(
                "rq_delta_repaired_rows_total",
                "Memo and probe rows added by in-place delta repair.",
            ),
            delta_fallback_cold: registry.counter(
                "rq_delta_fallback_cold_total",
                "Dirty plans that fell back to cold re-derivation at publish.",
            ),
            wal_records: registry.counter(
                "rq_wal_records_total",
                "Write-ahead-log records appended (one per published epoch).",
            ),
            wal_bytes: registry.counter(
                "rq_wal_bytes_total",
                "Bytes appended to the write-ahead log, frame headers included.",
            ),
            wal_checkpoints: registry.counter(
                "rq_wal_checkpoints_total",
                "Checkpoint snapshots installed (each truncates the log).",
            ),
            wal_checkpoint_failures: registry.counter(
                "rq_wal_checkpoint_failures_total",
                "Checkpoint installs that failed and will be retried.",
            ),
        }
    }
}

/// What one publish's delta repair managed to patch in place (the
/// carry passes skip these plans; the result sweep re-derives their
/// entries warm instead of dropping them).
#[derive(Debug, Default)]
struct DeltaRepairOutcome {
    /// The §3 chain plan's memos were repaired: every entry of the plan
    /// now lives, complete on the new database, in the new snapshot's
    /// context.
    chain_repaired: bool,
    /// §4 plans whose probe space + machine memos were repaired.
    nary_repaired: FxHashSet<(Pred, Adornment)>,
}

impl QueryService {
    /// Serve `program` with default settings.
    pub fn new(program: Program) -> Self {
        Self::with_config(program, ServiceConfig::default())
    }

    /// Serve `program` with explicit settings.
    pub fn with_config(program: Program, config: ServiceConfig) -> Self {
        Self::build(SnapshotStore::new(program), config, None)
    }

    fn build(store: SnapshotStore, config: ServiceConfig, durable: Option<DurableStore>) -> Self {
        let plans = PlanCache::new();
        let results =
            ResultCache::with_limits(config.result_cache_capacity, config.result_cache_bytes);
        let metrics = Arc::new(Registry::new());
        let counters = ServiceCounters::register(&metrics, &plans, &results);
        let service = Self {
            store,
            plans,
            results,
            config,
            metrics,
            counters,
            started: Instant::now(),
            ingest_gc: std::sync::Mutex::new(()),
            durable,
        };
        // Epoch 0 (or the recovered epoch) already built its compact
        // stores inside the snapshot store; fold that first publish
        // into the registry like every later ingest.
        service.note_publish(&service.store.snapshot());
        service
    }

    /// Open (or create) a durable service backed by files in
    /// `data_dir`, with default settings: restore the latest
    /// checkpoint, replay the write-ahead log tail to the exact
    /// pre-crash epoch, and log every subsequent ingest before
    /// acknowledging it.
    pub fn open(program: Program, data_dir: &std::path::Path) -> Result<Self, ServiceError> {
        Self::open_with_config(program, data_dir, ServiceConfig::default())
    }

    /// [`QueryService::open`] with explicit settings
    /// (`config.durability` selects the fsync policy and checkpoint
    /// cadence).
    pub fn open_with_config(
        program: Program,
        data_dir: &std::path::Path,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let backend =
            rq_store::FileBackend::open(data_dir, config.durability.fsync).map_err(|e| {
                ServiceError::Recovery(format!(
                    "cannot open data dir `{}`: {e}",
                    data_dir.display()
                ))
            })?;
        Self::open_backend(program, Arc::new(backend), config)
    }

    /// Open a durable service over an explicit [`StorageBackend`] —
    /// the seam the crash-injection tests use ([`rq_store::MemBackend`]
    /// with a fault offset) and the file path above goes through.
    ///
    /// Recovery sequence: load whatever the backend trusts (verified
    /// checkpoint + verified log prefix), restore the checkpoint onto
    /// the freshly parsed `program` (hard error on a rule-set or
    /// base-program mismatch), then replay the log tail in epoch
    /// order.  Records at or below the recovered epoch are counted as
    /// duplicates and skipped (a crash between checkpoint install and
    /// log truncation leaves them behind); a gap in the epoch sequence
    /// is a hard error — serving with silently missing ingests would
    /// be worse than refusing to start.
    pub fn open_backend(
        program: Program,
        backend: Arc<dyn StorageBackend>,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let base = BaseProfile::of(&program);
        let recovered = backend
            .load()
            .map_err(|e| ServiceError::Recovery(format!("cannot read durable state: {e}")))?;
        let mut report = RecoveryReport {
            dropped_records: recovered.dropped_records,
            dropped_bytes: recovered.dropped_bytes,
            checkpoint_dropped: recovered.checkpoint_dropped,
            ..RecoveryReport::default()
        };
        let store = match recovered.checkpoint {
            Some((_, payload)) => {
                let restored = durable::restore_checkpoint(program, &payload)
                    .map_err(ServiceError::Recovery)?;
                report.checkpoint_epoch = Some(restored.epoch);
                SnapshotStore::with_restored(
                    restored.program,
                    restored.epoch,
                    restored.rev_low,
                    restored.rev_high,
                    restored.low_preds,
                )
            }
            None => SnapshotStore::new(program),
        };
        for (epoch, payload) in &recovered.records {
            let current = store.snapshot().epoch();
            if *epoch <= current {
                report.skipped_duplicates += 1;
                continue;
            }
            if *epoch != current + 1 {
                return Err(ServiceError::Recovery(format!(
                    "write-ahead log gap: expected a record for epoch {}, found epoch {epoch}",
                    current + 1
                )));
            }
            // The frame CRC already verified, so a decode failure is a
            // codec mismatch, not bit rot — fail loudly either way.
            let record = durable::decode_record(payload).map_err(|e| {
                ServiceError::Recovery(format!("log record for epoch {epoch}: {e}"))
            })?;
            if record.fingerprint != store.snapshot().rules_fingerprint() {
                return Err(ServiceError::Recovery(format!(
                    "log record for epoch {epoch} was written under a different rule set; \
                     refusing to replay"
                )));
            }
            store
                .replay_rows(&record.rows)
                .map_err(|e| ServiceError::Recovery(format!("cannot replay epoch {epoch}: {e}")))?;
            report.replayed_records += 1;
        }
        report.recovered_epoch = store.snapshot().epoch();
        let durable = DurableStore {
            backend,
            checkpoint_interval: config.durability.checkpoint_interval,
            base,
            since_checkpoint: AtomicU64::new(report.replayed_records),
            report,
        };
        Ok(Self::build(store, config, Some(durable)))
    }

    /// Whether ingests are persisted to a storage backend.
    pub fn durable(&self) -> bool {
        self.durable.is_some()
    }

    /// What boot-time recovery found and did (`None` for in-memory
    /// services).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().map(|d| &d.report)
    }

    /// Parse `source` and serve it.
    pub fn from_source(source: &str) -> Result<Self, ServiceError> {
        let program =
            rq_datalog::parse_program(source).map_err(|e| ServiceError::Ingest(e.to_string()))?;
        Ok(Self::new(program))
    }

    /// The service settings.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The plan cache (for stats and tests).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The result cache (for stats and tests).
    pub fn result_cache(&self) -> &ResultCache {
        &self.results
    }

    /// The current snapshot.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.store.snapshot()
    }

    /// One consistent read of every counter the service exposes — the
    /// single rendering source behind both the REPL's `:stats` text
    /// and the HTTP API's `GET /stats` JSON
    /// (see [`crate::stats::StatsReport`]).
    pub fn stats_report(&self) -> crate::stats::StatsReport {
        let snapshot = self.snapshot();
        crate::stats::StatsReport {
            epoch: snapshot.epoch(),
            plans: self.plans.stats(),
            chain_programs: self.plans.programs(),
            nary_plans: self.plans.nary_plans(),
            results: self.results.stats(),
            result_entries: self.results.len(),
            result_bytes: self.results.bytes(),
            context: snapshot.context().stats(),
            csr_builds: self.counters.csr_builds.value(),
            csr_build_micros: (self.counters.csr_build_seconds.snapshot().sum_seconds * 1e6).round()
                as u64,
            csr_probes: self.counters.csr_probes.value(),
            trie_probes: self.counters.trie_probes.value(),
            delta_repairs: self.counters.delta_repairs.value(),
            delta_repaired_rows: self.counters.delta_repaired_rows.value(),
            delta_fallback_cold: self.counters.delta_fallback_cold.value(),
            durability: self
                .durable
                .as_ref()
                .map(|d| crate::durable::DurabilityStats {
                    wal_records: self.counters.wal_records.value(),
                    wal_bytes: self.counters.wal_bytes.value(),
                    checkpoints: self.counters.wal_checkpoints.value(),
                    checkpoint_failures: self.counters.wal_checkpoint_failures.value(),
                    recovery: d.report.clone(),
                }),
        }
    }

    /// The service's metrics registry.  Front ends register their own
    /// families here (e.g. the wire server's per-endpoint latency
    /// histograms) so one scrape covers the whole stack.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.metrics
    }

    /// Time since the service was constructed.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The full Prometheus text exposition: refresh the report-derived
    /// gauges ([`crate::stats::StatsReport::export_prometheus`]) and
    /// render every family in the registry — live cache counters,
    /// service counters, and whatever front ends registered.
    pub fn metrics_prometheus(&self) -> String {
        self.stats_report().export_prometheus(&self.metrics)
    }

    /// Ingest fact clauses copy-on-write and publish the next epoch.
    /// In-flight readers keep their snapshot.  Two caches then carry
    /// forward **per plan read-set** instead of dying with the epoch:
    ///
    /// * result-cache entries survive (re-keyed to the new epoch) when
    ///   their plan reads none of the shards the publish dirtied — for
    ///   §4 entries the transformed program's virtual predicates are
    ///   resolved back to the real base relations their joins consult;
    /// * the epoch context's machine memo (and, for §4 plans, the
    ///   shared probe space) migrates into the new snapshot's context
    ///   for plans with the same clean-read-set property, so long-lived
    ///   clients keep warm-epoch traversal throughput across unrelated
    ///   ingests.
    ///
    /// An ingest into `e` therefore leaves both the answers *and* the
    /// traversal memos of plans over disjoint predicates hot.
    pub fn ingest(&self, facts_text: &str) -> Result<Arc<Snapshot>, ServiceError> {
        // Publish and carry-forward must happen atomically with respect
        // to other ingests: epoch N's GC only vouches for N-1 entries,
        // so running two GCs out of order would flush survivors.
        let _gc = self.ingest_gc.lock().expect("ingest lock poisoned");
        let span = obs::span("service.ingest");
        let prev = self.store.snapshot();
        // On durable services the write-ahead-log append runs as a
        // pre-publish hook on the built-but-unpublished snapshot: the
        // record hits the backend (fsynced under `FsyncPolicy::Always`)
        // *before* the epoch pointer swaps, so no acknowledged epoch
        // can be missing from the log.  An append failure aborts the
        // publish and surfaces as `IngestError::Durability`.
        let snap = match &self.durable {
            None => self.store.ingest(facts_text)?,
            Some(durable) => self.store.ingest_with(facts_text, |next| {
                let _wal = obs::span("ingest.wal_append");
                let payload = durable::encode_record(next).map_err(IngestError::Durability)?;
                durable
                    .backend
                    .append(next.epoch(), &payload)
                    .map_err(|e| IngestError::Durability(e.to_string()))?;
                self.counters.wal_records.inc();
                self.counters
                    .wal_bytes
                    .add((payload.len() + rq_store::FRAME_HEADER_BYTES) as u64);
                Ok(())
            })?,
        };
        if span.active() {
            span.note("epoch", snap.epoch());
            span.note("dirty_preds", snap.dirty_preds().len());
        }
        // Semi-naive in-place repair of warm plan state, before the
        // carry passes so they can keep what it patched alive.
        let repaired = {
            let _repair = obs::span("ingest.delta_repair");
            self.delta_repair(&prev, &snap)
        };
        if self.config.share_epoch_context {
            let _carry = obs::span("ingest.carry_context");
            self.carry_context(&prev, &snap, &repaired);
        }
        let to_rederive = {
            let _carry = obs::span("ingest.carry_results");
            self.sweep_results(&prev, &snap, &repaired)
        };
        // Re-derive repaired entries from the patched memos (warm:
        // teleports, not traversals).  Not counted as served queries.
        for spec in &to_rederive {
            self.rederive(&snap, spec);
        }
        self.counters.ingests.inc();
        self.note_publish(&snap);
        self.maybe_checkpoint(&snap);
        Ok(snap)
    }

    /// Install a checkpoint snapshot every `checkpoint_interval`
    /// ingests.  Failures are non-fatal — the epoch's record is
    /// already in the log, so the counter keeps growing and the next
    /// ingest retries immediately.
    fn maybe_checkpoint(&self, snap: &Snapshot) {
        let Some(durable) = &self.durable else { return };
        if durable.checkpoint_interval == 0 {
            return;
        }
        let since = durable.since_checkpoint.fetch_add(1, Ordering::Relaxed) + 1;
        if since < durable.checkpoint_interval {
            return;
        }
        let _span = obs::span("ingest.checkpoint");
        let payload = durable::encode_checkpoint(snap, &durable.base);
        match durable.backend.install_checkpoint(snap.epoch(), &payload) {
            Ok(()) => {
                durable.since_checkpoint.store(0, Ordering::Relaxed);
                self.counters.wal_checkpoints.inc();
            }
            Err(e) => {
                // Surface the cause, not just a counter — repeated
                // failures (disk full, permissions) otherwise leave an
                // unbounded-growth WAL with nothing to diagnose from.
                eprintln!(
                    "rq-service: checkpoint at epoch {} failed (log keeps growing, \
                     next ingest retries): {e}",
                    snap.epoch()
                );
                self.counters.wal_checkpoint_failures.inc();
            }
        }
    }

    /// Three-way result-cache sweep for one publish: `Carry` entries
    /// whose read-sets the publish cannot have touched, schedule
    /// re-derivation (`Repair`) for entries whose plan state was
    /// repaired in place, and `Drop` the rest.  Returns the specs to
    /// re-derive.
    fn sweep_results(
        &self,
        prev: &Snapshot,
        snap: &Snapshot,
        repaired: &DeltaRepairOutcome,
    ) -> Vec<QuerySpec> {
        let dirty = snap.dirty_preds();
        let fingerprint = snap.rules_fingerprint();
        let chain = self.plans.peek_program(fingerprint);
        // Durability fast path (Salsa-style): when the publish left the
        // high-durability revision untouched, a plan reading no
        // low-durability predicate is vouched for by the stamp alone —
        // `low_preds ⊇ dirty`, so no dirty-set comparison is needed.
        let high_rev_stable = snap.rev_high() == prev.rev_high();
        // One read-set walk per distinct (pred, adornment) in the
        // cache, not per entry.
        let mut decision_memo: FxHashMap<(Pred, Adornment), SweepDecision> = FxHashMap::default();
        self.results.sweep(snap.epoch(), |key| {
            let pred = key.spec.pred;
            let adornment = key.spec.adornment();
            *decision_memo.entry((pred, adornment)).or_insert_with(|| {
                let (read_set, chain_pred) = if let Some(plan) =
                    chain.as_ref().filter(|p| p.system.rhs.contains_key(&pred))
                {
                    (Some(plan.read_set(pred)), true)
                } else {
                    (
                        self.plans
                            .peek_nary(fingerprint, pred, adornment)
                            .map(|p| p.read_set(snap.program())),
                        false,
                    )
                };
                let Some(read_set) = read_set else {
                    return SweepDecision::Drop;
                };
                if high_rev_stable && read_set.is_disjoint(snap.low_preds()) {
                    return SweepDecision::Carry;
                }
                if read_set.is_disjoint(dirty) {
                    return SweepDecision::Carry;
                }
                let plan_repaired = if chain_pred {
                    repaired.chain_repaired
                } else {
                    repaired.nary_repaired.contains(&(pred, adornment))
                };
                if plan_repaired {
                    SweepDecision::Repair
                } else {
                    SweepDecision::Drop
                }
            })
        })
    }

    /// Re-derive one swept-for-repair spec on the fresh snapshot and
    /// re-insert it (fresh byte charge).  Internal maintenance — does
    /// not bump the query counter or touch cache hit/miss stats.
    fn rederive(&self, snap: &Snapshot, spec: &QuerySpec) {
        let Ok((rows, converged)) = self.evaluate_spec(snap, spec, self.config.eval_threads) else {
            return;
        };
        self.results.insert(
            ResultKey {
                epoch: snap.epoch(),
                spec: spec.clone(),
            },
            CachedResult {
                rows: Arc::new(rows),
                converged,
            },
        );
    }

    /// Fold one publish's compact-store build work into the registry.
    fn note_publish(&self, snap: &Snapshot) {
        self.counters.csr_builds.add(snap.csr_builds() as u64);
        self.counters
            .csr_build_seconds
            .observe(snap.csr_build_time());
    }

    /// Cross-epoch machine-memo carry-forward: move the previous
    /// epoch's traversal memos into the fresh snapshot's context for
    /// every cached plan whose read-set is disjoint from the publish's
    /// dirty shards (the context-side mirror of the result cache's
    /// `carry_forward`).
    ///
    /// Granularity follows what each memo key can vouch for:
    ///
    /// * the §3 chain plan is one compiled unit shared by every binary
    ///   predicate of the program, so survival is decided **per
    ///   machine** — machine `m` carries exactly when the read-set of
    ///   `m`'s predicate is clean, so an ingest into `e` drops `tc`'s
    ///   memos while `rc`-over-`f` memos survive;
    /// * each §4 plan carries **wholesale or not at all**, and always
    ///   together with its probe space — the memoized answer sets are
    ///   encoded in that space's tuple interner, so the two are only
    ///   meaningful as a unit.
    ///
    /// Plans already repaired in place by [`QueryService::delta_repair`]
    /// are skipped: their patched state was adopted into the new
    /// snapshot's context directly, so carrying the stale entries from
    /// `prev` on top would clobber nothing but waste work.
    fn carry_context(&self, prev: &Snapshot, snap: &Snapshot, repaired: &DeltaRepairOutcome) {
        let dirty = snap.dirty_preds();
        let chain_machines: Option<(u64, rq_common::FxHashSet<u32>)> = self
            .plans
            .peek_program(snap.rules_fingerprint())
            .filter(|_| !repaired.chain_repaired)
            .map(|plan| {
                let mut clean: FxHashMap<Pred, bool> = FxHashMap::default();
                let machines = plan
                    .compiled
                    .machine_preds()
                    .into_iter()
                    .filter(|&(_, pred)| {
                        *clean
                            .entry(pred)
                            .or_insert_with(|| plan.read_set(pred).is_disjoint(dirty))
                    })
                    .map(|(machine, _)| machine)
                    .collect();
                (plan.compiled.id(), machines)
            });
        let nary_plans: Vec<((Pred, Adornment), u64)> = self
            .plans
            .cached_nary_plans(snap.rules_fingerprint())
            .into_iter()
            .filter(|(key, plan)| {
                !repaired.nary_repaired.contains(&(key.pred, key.adornment))
                    && plan.read_set(snap.program()).is_disjoint(dirty)
            })
            .map(|(key, plan)| ((key.pred, key.adornment), plan.compiled.id()))
            .collect();
        snap.context()
            .carry_from(prev.context(), chain_machines.as_ref(), &nary_plans);
    }

    /// Try to repair every cached dirty plan's warm state in place by
    /// propagating the publish delta semi-naively through it (§3
    /// machine memos; §4 probe spaces and their machine memos).  Each
    /// success is adopted into the fresh snapshot's context; each
    /// failure is an honest cold fallback, counted and left for the
    /// ordinary drop-and-re-derive path.
    fn delta_repair(&self, prev: &Snapshot, snap: &Snapshot) -> DeltaRepairOutcome {
        let mut out = DeltaRepairOutcome::default();
        if !self.config.delta_repair || !self.config.share_epoch_context || snap.delta().is_empty()
        {
            return out;
        }
        let dirty = snap.dirty_preds();
        let fingerprint = snap.rules_fingerprint();
        if let Some(plan) = self.plans.peek_program(fingerprint) {
            out.chain_repaired = self.repair_chain_plan(prev, snap, &plan);
        }
        for (key, plan) in self.plans.cached_nary_plans(fingerprint) {
            if plan.read_set(snap.program()).is_disjoint(dirty) {
                continue; // clean: the ordinary carry path keeps it warm
            }
            if self.repair_nary_plan(prev, snap, &key, &plan) {
                out.nary_repaired.insert((key.pred, key.adornment));
            }
        }
        out
    }

    /// Repair the §3 chain plan's machine memos against the new
    /// database.  The repair runs on a detached scratch context and is
    /// only adopted into the (already published) snapshot's context on
    /// success, so racing queries never observe a half-patched memo.
    fn repair_chain_plan(&self, prev: &Snapshot, snap: &Snapshot, plan: &ProgramPlan) -> bool {
        let affected = plan.compiled.affected_machines(snap.dirty_preds());
        if affected.is_empty() {
            return false; // fully clean: per-machine carry keeps everything
        }
        // The delta as label pairs.  A non-binary delta predicate can
        // never be a chain label, but guard anyway: if one somehow
        // affects the plan, the delta is not expressible here.
        let mut pairs: FxHashMap<Pred, Vec<(Const, Const)>> = FxHashMap::default();
        let mut unpairable: FxHashSet<Pred> = FxHashSet::default();
        for (&pred, rows) in snap.delta().added() {
            if rows.iter().all(|r| r.len() == 2) {
                pairs.insert(pred, rows.iter().map(|r| (r[0], r[1])).collect());
            } else {
                unpairable.insert(pred);
            }
        }
        if !plan.compiled.affected_machines(&unpairable).is_empty() {
            self.counters.delta_fallback_cold.inc();
            return false;
        }
        let scratch = EvalContext::new();
        let plan_id = plan.compiled.id();
        if scratch.carry_from(prev.context().eval(), |p, _| p == plan_id) == 0 {
            return false; // nothing was warm
        }
        let source = EdbSource::new(snap.db());
        let evaluator =
            Evaluator::with_plan(&plan.system, &plan.compiled, &source).with_context(&scratch);
        let outcome = evaluator.repair(&pairs, &self.repair_options());
        if outcome.repaired {
            snap.context().adopt_eval_entries(&scratch, plan_id);
            self.counters.delta_repairs.inc();
            self.counters.delta_repaired_rows.add(outcome.added_rows);
            true
        } else {
            self.counters.delta_fallback_cold.inc();
            false
        }
    }

    /// Repair one §4 plan: re-derive the delta's consequences on the
    /// plan's virtual relations (semi-naive rule firings seeded by the
    /// delta), patch them into a **fork** of the previous epoch's probe
    /// space, then repair the machine memos over the patched virtual
    /// pairs.  The fork is adopted only if the whole repair lands.
    fn repair_nary_plan(
        &self,
        prev: &Snapshot,
        snap: &Snapshot,
        key: &PlanKey,
        plan: &NaryPlan,
    ) -> bool {
        let Some(prev_space) = prev.context().peek_probe_space(key.pred, key.adornment) else {
            return false; // nothing was warm
        };
        let fork = Arc::new(prev_space.fork());
        let delta_rels: FxHashMap<Pred, Relation> = snap
            .delta()
            .added()
            .iter()
            .map(|(&pred, rows)| {
                let arity = snap.program().arity(pred);
                (
                    pred,
                    Relation::from_rows(arity, rows.iter().map(Vec::as_slice)),
                )
            })
            .collect();
        let mut counters = Counters::default();
        let vpairs = rq_adorn::delta_pairs(
            snap.program(),
            snap.db(),
            &plan.binary,
            &fork,
            &delta_rels,
            &mut counters,
        );
        self.note_probes(&counters);
        let Some(vpairs) = vpairs else {
            self.counters.delta_fallback_cold.inc();
            return false;
        };
        // Patch the probe memos first: the machine repair's closures
        // read the virtual relations through them.
        let mut patched_rows = 0u64;
        for (&vpred, vp) in &vpairs {
            patched_rows += fork.patch_pairs(vpred, vp);
        }
        let scratch = EvalContext::new();
        let plan_id = plan.compiled.id();
        scratch.carry_from(prev.context().eval(), |p, _| p == plan_id);
        let source =
            VirtualSource::with_space(snap.program(), snap.db(), &plan.binary, Arc::clone(&fork));
        let evaluator = Evaluator::with_plan(&plan.binary.system, &plan.compiled, &source)
            .with_context(&scratch);
        let outcome = evaluator.repair(&vpairs, &self.repair_options());
        if !outcome.repaired {
            self.counters.delta_fallback_cold.inc();
            return false;
        }
        if !snap
            .context()
            .adopt_probe_space(key.pred, key.adornment, fork)
        {
            // A racing query already built a fresh space on the new
            // epoch; its interner numbers tuples differently, so the
            // repaired fork cannot be spliced under it.
            self.counters.delta_fallback_cold.inc();
            return false;
        }
        snap.context().adopt_eval_entries(&scratch, plan_id);
        self.counters.delta_repairs.inc();
        self.counters
            .delta_repaired_rows
            .add(outcome.added_rows + patched_rows);
        true
    }

    /// [`QueryService::guarded_options`] for repair traversals, which
    /// have no per-source `m·n` bound: rely on the fallback node budget
    /// so cyclic data cannot hang the publish.  A budget-stopped repair
    /// honestly reports failure and falls back cold.
    fn repair_options(&self) -> EvalOptions {
        let mut options = self.guarded_options(None, self.config.eval_threads);
        if options.max_iterations.is_none()
            && self.config.cyclic_guard
            && options.node_budget.is_none()
        {
            options.node_budget = self.config.fallback_node_budget;
        }
        options
    }

    /// Parse a query — any arity, any mix of bound constants and free
    /// variables, repeated variables expressing diagonals — against the
    /// current snapshot's program.
    pub fn parse_query(&self, text: &str) -> Result<QuerySpec, ServiceError> {
        parse_serve_query(self.snapshot().program(), text)
    }

    /// Answer one query on the current snapshot.
    pub fn query(&self, spec: &QuerySpec) -> Result<ServiceAnswer, ServiceError> {
        self.query_on(&self.snapshot(), spec)
    }

    /// Answer one query on a caller-held snapshot (all queries of a
    /// batch see one epoch).
    pub fn query_on(
        &self,
        snapshot: &Snapshot,
        spec: &QuerySpec,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.query_on_with(snapshot, spec, self.config.eval_threads)
    }

    /// [`QueryService::query_on`] with an explicit per-traversal
    /// expansion-thread count — the batch path divides the configured
    /// [`ServiceConfig::eval_threads`] by its own worker count.
    fn query_on_with(
        &self,
        snapshot: &Snapshot,
        spec: &QuerySpec,
        expand_threads: usize,
    ) -> Result<ServiceAnswer, ServiceError> {
        self.counters.queries.inc();
        let span = obs::span("service.query");
        let key = ResultKey {
            epoch: snapshot.epoch(),
            spec: spec.clone(),
        };
        if self.config.memoize_results {
            if let Some(hit) = self.results.get(&key) {
                if span.active() {
                    span.note("result_cache", "hit");
                    span.note("rows", hit.rows.len());
                }
                return Ok(ServiceAnswer {
                    epoch: snapshot.epoch(),
                    rows: hit.rows,
                    converged: hit.converged,
                    from_cache: true,
                });
            }
            span.note("result_cache", "miss");
        }
        let (rows, converged) = self.evaluate_spec(snapshot, spec, expand_threads)?;
        if span.active() {
            span.note("rows", rows.len());
            span.note("converged", converged);
        }
        let rows = Arc::new(rows);
        if self.config.memoize_results {
            self.results.insert(
                key,
                CachedResult {
                    rows: Arc::clone(&rows),
                    converged,
                },
            );
        }
        Ok(ServiceAnswer {
            epoch: snapshot.epoch(),
            rows,
            converged,
            from_cache: false,
        })
    }

    /// Route one spec to the right pipeline.
    fn evaluate_spec(
        &self,
        snapshot: &Snapshot,
        spec: &QuerySpec,
        expand_threads: usize,
    ) -> Result<(Vec<Vec<Const>>, bool), ServiceError> {
        let arity = snapshot.program().arity(spec.pred);
        if spec.arity() != arity {
            // Specs from `parse_serve_query` are checked at parse time;
            // this guards hand-built specs.
            return Err(ServiceError::ArityMismatch {
                pred: snapshot.program().pred_name(spec.pred).to_string(),
                expected: arity,
                got: spec.arity(),
            });
        }
        if arity > MAX_ADORNABLE_ARITY {
            // `Adornment` is a 32-bit position mask; wider predicates
            // would alias positions silently in release builds.
            return Err(ServiceError::Plan(format!(
                "`{}` has arity {arity}; adornments support at most {MAX_ADORNABLE_ARITY} positions",
                snapshot.program().pred_name(spec.pred)
            )));
        }
        // Repeated free variables (diagonals and their n-ary
        // generalizations) filter the distinct-variable base answer;
        // going through `query_on_with` warms — and reuses — its cache
        // entry.
        if spec.has_repeats() {
            let base = self.query_on_with(snapshot, &spec.with_distinct_frees(), expand_threads)?;
            let rows = spec.restrict_rows(base.rows.as_ref().clone());
            return Ok((rows, base.converged));
        }
        // Binary predicates of binary-chain programs take the §3 fast
        // path; binary predicates of programs outside that class (e.g.
        // sharing rules with n-ary predicates) fall through to the §4
        // transformation like everything else.
        if arity == 2 {
            let chain = {
                let _plan = obs::span("service.plan");
                self.plans
                    .chain_plan_for(snapshot, spec.pred, spec.adornment())
            };
            if let Ok(plan) = chain {
                return self.evaluate_chain(snapshot, &plan, spec, expand_threads);
            }
        }
        let plan = {
            let _plan = obs::span("service.plan");
            self.plans
                .nary_plan_for(snapshot, spec.pred, spec.adornment())
                .map_err(|e| ServiceError::Plan(e.to_string()))?
        };
        let mut options = self.guarded_options(None, expand_threads);
        // No m·n bound exists over virtual relations; rely on the
        // fallback node budget for cyclic data.
        if options.max_iterations.is_none()
            && self.config.cyclic_guard
            && options.node_budget.is_none()
        {
            options.node_budget = self.config.fallback_node_budget;
        }
        // Epoch sharing: every query of this snapshot against this
        // plan shares one tuple interner + virtual-probe memo, and the
        // engine's machine memo, so a batch pays each probe once.
        let (rows, outcome) = if self.config.share_epoch_context {
            let space =
                snapshot
                    .context()
                    .probe_space(spec.pred, spec.adornment(), snapshot.program());
            rq_adorn::evaluate_nary_shared(
                snapshot.program(),
                snapshot.db(),
                &plan,
                &spec.bound_values(),
                &options,
                &space,
                Some(snapshot.context().eval()),
            )
        } else {
            rq_adorn::evaluate_nary(
                snapshot.program(),
                snapshot.db(),
                &plan,
                &spec.bound_values(),
                &options,
            )
        };
        self.note_outcome(
            outcome.graph_nodes,
            outcome.memo_teleports,
            outcome.instances,
            &outcome.counters,
        );
        Ok((rows, outcome.converged))
    }

    /// Fold one traversal's engine-side work into the service's
    /// registry counters.
    fn note_outcome(
        &self,
        graph_nodes: u64,
        memo_teleports: u64,
        instances: u64,
        counters: &Counters,
    ) {
        self.counters.engine_nodes.add(graph_nodes);
        self.counters.engine_teleports.add(memo_teleports);
        self.counters.engine_instances.add(instances);
        self.note_probes(counters);
    }

    /// Fold one evaluation's probe-path split (compact store vs trie
    /// index) into the registry.
    fn note_probes(&self, counters: &Counters) {
        self.counters.csr_probes.add(counters.csr_probes);
        self.counters.trie_probes.add(counters.trie_probes);
    }

    /// §3 binary-chain evaluation: forward/inverse point traversals,
    /// the early-exit membership form, and all-pairs evaluation —
    /// shared-SCC for regular systems, per-source otherwise.
    fn evaluate_chain(
        &self,
        snapshot: &Snapshot,
        plan: &ProgramPlan,
        spec: &QuerySpec,
        expand_threads: usize,
    ) -> Result<(Vec<Vec<Const>>, bool), ServiceError> {
        let args = spec.args();
        debug_assert_eq!(args.len(), 2);
        match (args[0], args[1]) {
            (Arg::Bound(a), Arg::Free(_)) => {
                let (answers, converged) =
                    self.traverse(snapshot, plan, spec.pred, a, false, None, expand_threads);
                Ok((answers.into_iter().map(|y| vec![y]).collect(), converged))
            }
            (Arg::Free(_), Arg::Bound(b)) => {
                let (answers, converged) =
                    self.traverse(snapshot, plan, spec.pred, b, true, None, expand_threads);
                Ok((answers.into_iter().map(|x| vec![x]).collect(), converged))
            }
            (Arg::Bound(a), Arg::Bound(b)) => {
                // Membership: traverse forward from `a`, stopping the
                // moment `b` is emitted.
                let (answers, converged) =
                    self.traverse(snapshot, plan, spec.pred, a, false, Some(b), expand_threads);
                let rows = if answers.contains(&b) {
                    vec![Vec::new()]
                } else {
                    Vec::new()
                };
                Ok((rows, converged))
            }
            (Arg::Free(_), Arg::Free(_)) => {
                // All pairs.  For a *regular* equation (no derived
                // predicate in `e_p` — e.g. every transitive closure),
                // Tarjan's strong-components condensation shares one
                // product graph across every source instead of running
                // one traversal per source; the result lands in the
                // result cache under this spec's `(epoch, pred)` key
                // with the cache's usual byte accounting.  Non-regular
                // systems fall back to the per-source loop, which
                // reuses — and leaves behind — memoized point answers.
                let derived = plan.system.derived();
                if self.config.share_epoch_context
                    && !plan.system.rhs[&spec.pred].contains_any(&derived)
                {
                    snapshot.context().note_scc_served();
                    let options = self.guarded_options(None, expand_threads);
                    let source = EdbSource::new(snapshot.db());
                    // Min-side: propagate per-component answer sets
                    // from whichever orientation makes them smaller
                    // (the paper's O(tn), t = min{|domain|, |range|}).
                    let (out, _side) =
                        all_pairs_min_side(&plan.system, &source, spec.pred, &options);
                    self.counters.engine_nodes.add(out.counters.nodes_inserted);
                    self.note_probes(&out.counters);
                    let mut rows: Vec<Vec<Const>> =
                        out.pairs.into_iter().map(|(x, y)| vec![x, y]).collect();
                    rows.sort_unstable();
                    return Ok((rows, out.converged));
                }
                let sources = {
                    let source = EdbSource::new(snapshot.db());
                    candidate_sources(&plan.system, &source, spec.pred)
                };
                let mut rows: Vec<Vec<Const>> = Vec::new();
                let mut converged = true;
                for a in sources {
                    let sub = self.query_on_with(
                        snapshot,
                        &QuerySpec::bound_free(spec.pred, a),
                        expand_threads,
                    )?;
                    converged &= sub.converged;
                    rows.extend(sub.rows.iter().map(|r| vec![a, r[0]]));
                }
                rows.sort_unstable();
                rows.dedup();
                Ok((rows, converged))
            }
        }
    }

    /// One guarded §3 traversal (forward or inverse), sorted answers.
    #[allow(clippy::too_many_arguments)]
    fn traverse(
        &self,
        snapshot: &Snapshot,
        plan: &ProgramPlan,
        pred: Pred,
        constant: Const,
        inverse: bool,
        stop_on_answer: Option<Const>,
        expand_threads: usize,
    ) -> (Vec<Const>, bool) {
        let mut options = self.guarded_options(stop_on_answer, expand_threads);
        let mut guarded = false;
        if options.max_iterations.is_none() && self.config.cyclic_guard {
            // +1 as in `evaluate_with_cyclic_guard`: iteration i explores
            // recursion depth i-1.
            let bound = if inverse {
                inverse_cyclic_iteration_bound(&plan.system, snapshot.db(), pred, constant)
            } else {
                cyclic_iteration_bound(&plan.system, snapshot.db(), pred, constant)
            };
            options.max_iterations = bound.map(|b| b + 1);
            guarded = options.max_iterations.is_some();
            if !guarded && options.node_budget.is_none() {
                // No m·n bound exists for this equation shape; fall
                // back to a node budget so a divergent traversal cannot
                // hang the worker.  Hitting it reports non-convergence.
                options.node_budget = self.config.fallback_node_budget;
            }
        }
        let source = EdbSource::new(snapshot.db());
        let mut evaluator = Evaluator::with_plan(&plan.system, &plan.compiled, &source);
        if self.config.share_epoch_context {
            evaluator = evaluator.with_context(snapshot.context().eval());
        }
        let outcome = if inverse {
            evaluator.evaluate_inverse(pred, constant, &options)
        } else {
            evaluator.evaluate(pred, constant, &options)
        };
        self.note_outcome(
            outcome.graph_nodes,
            outcome.memo_teleports,
            outcome.instances,
            &outcome.counters,
        );
        let mut answers: Vec<Const> = outcome.answers.into_iter().collect();
        answers.sort_unstable();
        // The m·n bound is sufficient, so hitting it is completion.
        (answers, outcome.converged || guarded)
    }

    /// The configured base options with the membership target and
    /// per-traversal expansion threads applied.
    fn guarded_options(&self, stop_on_answer: Option<Const>, expand_threads: usize) -> EvalOptions {
        let mut options = self.config.options.clone();
        if options.stop_on_answer.is_none() {
            options.stop_on_answer = stop_on_answer;
        }
        if options.expand_threads == 0 {
            options.expand_threads = expand_threads.max(1);
        }
        options
    }

    /// Fan a batch of queries out across the configured worker
    /// threads.  The whole batch is answered on **one** snapshot (the
    /// current epoch at entry), so results are mutually consistent even
    /// while ingestion runs concurrently.  Identical specs are
    /// evaluated **once** and share their answer across the batch
    /// ([`crate::plan::CacheStats::deduped`] counts the copies).
    /// Output order matches input order.
    pub fn query_batch(&self, queries: &[QuerySpec]) -> Vec<Result<ServiceAnswer, ServiceError>> {
        self.query_batch_on(&self.snapshot(), queries)
    }

    /// [`QueryService::query_batch`] on a **caller-pinned** snapshot.
    /// Front ends that parse query text and decode answer rows against
    /// a snapshot's interners must evaluate on that same snapshot —
    /// otherwise a concurrent ingest between capture and evaluation
    /// hands back rows whose constants the captured interner has never
    /// seen.  Both the REPL batch line and the HTTP `POST /batch`
    /// endpoint pin through here.
    pub fn query_batch_on(
        &self,
        snapshot: &Arc<Snapshot>,
        queries: &[QuerySpec],
    ) -> Vec<Result<ServiceAnswer, ServiceError>> {
        // Batch-level dedup: route every duplicate spec to the first
        // occurrence's slot.
        let mut first_of: FxHashMap<&QuerySpec, usize> = FxHashMap::default();
        let mut unique: Vec<&QuerySpec> = Vec::new();
        let slot_of: Vec<usize> = queries
            .iter()
            .map(|q| {
                *first_of.entry(q).or_insert_with(|| {
                    unique.push(q);
                    unique.len() - 1
                })
            })
            .collect();
        let deduped = (queries.len() - unique.len()) as u64;
        if deduped > 0 {
            self.results.note_deduped(deduped);
        }
        // The cap applies to explicit settings too (`--threads N`,
        // test configs), so `RQC_THREADS=1` really does force the
        // whole stack single-threaded.
        let workers = rq_common::capped_threads(self.config.threads).clamp(1, unique.len().max(1));
        // Two composable levels of parallelism: `workers` across the
        // batch, and the per-traversal expansion threads inside each
        // query.  Dividing one by the other keeps the total roughly at
        // the configured level — a batch of one big all-pairs query
        // spends everything inside its traversal, a wide batch spends
        // everything across queries.
        let expand_threads = (self.config.eval_threads / workers).max(1);
        let answers: Vec<Result<ServiceAnswer, ServiceError>> = if workers <= 1 {
            unique
                .iter()
                .map(|q| self.query_on_with(snapshot, q, self.config.eval_threads))
                .collect()
        } else {
            let slots: Vec<OnceLock<Result<ServiceAnswer, ServiceError>>> =
                (0..unique.len()).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(query) = unique.get(i) else { break };
                        let answer = self.query_on_with(snapshot, query, expand_threads);
                        slots[i].set(answer).expect("slot claimed twice");
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("worker left a slot empty"))
                .collect()
        };
        slot_of.into_iter().map(|i| answers[i].clone()).collect()
    }
}

/// Widest predicate the `{b,f}` adornment bitmask can describe.
const MAX_ADORNABLE_ARITY: usize = 32;

/// Parse any served query form against `program`:
///
/// * any arity: `cnx(hel, 540, D, AT)` mixes bound and free positions;
/// * lowercase/integer arguments are constants, uppercase or `_`-led
///   arguments are free variables;
/// * a variable name occurring at several positions constrains them to
///   be equal (`p(X, X)` is the diagonal); `_` is anonymous and never
///   constrains (`p(_, _)` stays all-pairs).
pub fn parse_serve_query(program: &Program, text: &str) -> Result<QuerySpec, ServiceError> {
    let trimmed = text.trim();
    let malformed = || ServiceError::Malformed(trimmed.to_string());
    let open = trimmed.find('(').ok_or_else(malformed)?;
    let close = trimmed.rfind(')').ok_or_else(malformed)?;
    if close != trimmed.len() - 1 || open == 0 || close < open {
        return Err(malformed());
    }
    let name = trimmed[..open].trim();
    let raw_args: Vec<&str> = trimmed[open + 1..close].split(',').map(str::trim).collect();
    if raw_args
        .iter()
        .any(|a| a.is_empty() || a.contains(char::is_whitespace))
    {
        return Err(malformed());
    }
    let pred = program
        .pred_by_name(name)
        .ok_or_else(|| ServiceError::UnknownPredicate(name.to_string()))?;
    if !program.is_derived(pred) {
        return Err(ServiceError::NotDerived(name.to_string()));
    }
    if program.arity(pred) != raw_args.len() {
        return Err(ServiceError::ArityMismatch {
            pred: name.to_string(),
            expected: program.arity(pred),
            got: raw_args.len(),
        });
    }
    if raw_args.len() > MAX_ADORNABLE_ARITY {
        return Err(ServiceError::Plan(format!(
            "`{name}` has arity {}; adornments support at most {MAX_ADORNABLE_ARITY} positions",
            raw_args.len()
        )));
    }
    let mut var_slots: Vec<&str> = Vec::new();
    let mut next_anon: usize = 0;
    let mut args: Vec<Arg> = Vec::with_capacity(raw_args.len());
    for raw in raw_args {
        if raw.is_empty() {
            return Err(malformed());
        }
        let first = raw.chars().next().expect("non-empty");
        if first.is_ascii_uppercase() || first == '_' {
            let slot = if raw == "_" {
                // Anonymous: a fresh slot every time (never constrains),
                // drawn from the top so it cannot collide with named
                // slots (arity is capped at 32 well below 200).
                next_anon += 1;
                255 - next_anon
            } else {
                match var_slots.iter().position(|&v| v == raw) {
                    Some(i) => i,
                    None => {
                        var_slots.push(raw);
                        var_slots.len() - 1
                    }
                }
            };
            args.push(Arg::Free(slot as u8));
            continue;
        }
        let value = match raw.parse::<i64>() {
            Ok(i) => ConstValue::Int(i),
            Err(_) => ConstValue::Str(raw.to_string()),
        };
        let c = program.consts.get(&value).ok_or_else(|| {
            ServiceError::UnknownConstant(match value {
                ConstValue::Int(i) => i.to_string(),
                ConstValue::Str(ref s) => s.clone(),
                ConstValue::Tuple(_) => unreachable!("parser never yields tuples"),
            })
        })?;
        args.push(Arg::Bound(c));
    }
    Ok(QuerySpec::new(pred, args))
}

#[cfg(test)]
mod tests {
    use super::*;

    const TC: &str = "tc(X,Y) :- e(X,Y).\n\
                      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                      e(a,b). e(b,c). e(c,d).";

    const FLIGHTS: &str = "\
cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
flight(hel,540,ams,690).\n\
flight(ams,720,cdg,810).\n\
flight(ams,660,cdg,750).\n\
flight(cdg,840,nce,930).\n\
is_deptime(540). is_deptime(720). is_deptime(660). is_deptime(840).";

    fn rendered(service: &QueryService, answer: &ServiceAnswer) -> Vec<String> {
        let snap = service.snapshot();
        answer
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&c| snap.program().consts.display(c))
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect()
    }

    #[test]
    fn single_query_both_adornments() {
        let service = QueryService::from_source(TC).unwrap();
        let bf = service.parse_query("tc(b, Y)").unwrap();
        let out = service.query(&bf).unwrap();
        assert_eq!(rendered(&service, &out), vec!["c", "d"]);
        assert!(out.converged);
        let fb = service.parse_query("tc(X, c)").unwrap();
        let out = service.query(&fb).unwrap();
        assert_eq!(rendered(&service, &out), vec!["a", "b"]);
    }

    #[test]
    fn membership_query_form() {
        let service = QueryService::from_source(TC).unwrap();
        let yes = service
            .query(&service.parse_query("tc(a, d)").unwrap())
            .unwrap();
        assert!(yes.holds());
        assert_eq!(*yes.rows, vec![Vec::<Const>::new()]);
        let no = service
            .query(&service.parse_query("tc(d, a)").unwrap())
            .unwrap();
        assert!(!no.holds());
        assert!(no.rows.is_empty());
    }

    #[test]
    fn all_pairs_query_form() {
        let service = QueryService::from_source(TC).unwrap();
        let q = service.parse_query("tc(X, Y)").unwrap();
        assert_eq!(q, QuerySpec::all_free(q.pred, 2));
        let out = service.query(&q).unwrap();
        // tc over the chain a→b→c→d: 3+2+1 pairs.
        assert_eq!(out.rows.len(), 6);
        assert!(rendered(&service, &out).contains(&"a,d".to_string()));
        // Oracle: the seminaive fixpoint.
        let oracle = rq_datalog::seminaive_eval(service.snapshot().program()).unwrap();
        let tc = service.snapshot().program().pred_by_name("tc").unwrap();
        assert_eq!(out.rows.len(), oracle.tuples(tc).len());
        // Memoized on repeat.
        let again = service.query(&q).unwrap();
        assert!(again.from_cache);
        assert!(Arc::ptr_eq(&out.rows, &again.rows));
    }

    #[test]
    fn diagonal_query_form() {
        let service = QueryService::from_source(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,a). e(b,c).",
        )
        .unwrap();
        let q = service.parse_query("tc(X, X)").unwrap();
        assert_eq!(q, QuerySpec::diagonal(q.pred));
        let out = service.query(&q).unwrap();
        // The a↔b cycle puts exactly a and b on the diagonal.
        assert_eq!(rendered(&service, &out), vec!["a", "b"]);
        // Underscores are anonymous: `tc(_, _)` is all-pairs.
        let anon = service.parse_query("tc(_, _)").unwrap();
        assert_eq!(anon, QuerySpec::all_free(q.pred, 2));
        // The diagonal warmed the all-pairs entry as a byproduct.
        let all = service
            .query(&service.parse_query("tc(X, Y)").unwrap())
            .unwrap();
        assert!(all.from_cache);
    }

    #[test]
    fn nary_flight_queries_end_to_end() {
        let service = QueryService::from_source(FLIGHTS).unwrap();
        let q = service.parse_query("cnx(hel, 540, D, AT)").unwrap();
        assert_eq!(q.adornment().to_string(), "bbff");
        let out = service.query(&q).unwrap();
        // hel@540 → ams@690; ams@720 → cdg@810; cdg@840 → nce@930.
        assert_eq!(
            rendered(&service, &out),
            vec!["ams,690", "cdg,810", "nce,930"]
        );
        assert!(out.converged);
        // Repeat hits the cache, plan compiled once.
        let again = service.query(&q).unwrap();
        assert!(again.from_cache);
        assert!(Arc::ptr_eq(&out.rows, &again.rows));
        assert_eq!(service.plan_cache().nary_plans(), 1);
        // Fully bound n-ary membership.
        let yes = service
            .query(&service.parse_query("cnx(hel, 540, nce, 930)").unwrap())
            .unwrap();
        assert!(yes.holds());
        let no = service
            .query(&service.parse_query("cnx(hel, 540, nce, 690)").unwrap())
            .unwrap();
        assert!(!no.holds());
    }

    #[test]
    fn nary_ingest_refreshes_answers() {
        let service = QueryService::from_source(FLIGHTS).unwrap();
        let q = service.parse_query("cnx(cdg, 840, D, AT)").unwrap();
        let before = service.query(&q).unwrap();
        assert_eq!(rendered(&service, &before), vec!["nce,930"]);
        // A late flight out of nce opens a new two-leg connection.
        service
            .ingest("flight(nce, 960, osl, 1080). is_deptime(960).")
            .unwrap();
        let after = service.query(&q).unwrap();
        assert!(
            after.from_cache,
            "delta repair must keep the dirty entry alive"
        );
        assert!(
            !Arc::ptr_eq(&before.rows, &after.rows),
            "repaired entry must hold refreshed rows"
        );
        assert_eq!(after.epoch, 1);
        assert_eq!(rendered(&service, &after), vec!["nce,930", "osl,1080"]);
        let report = service.stats_report();
        assert!(report.delta_repairs >= 1, "{report:?}");
        assert_eq!(report.delta_fallback_cold, 0, "{report:?}");
    }

    #[test]
    fn nary_repeated_variable_is_filtered_all_answers() {
        // walk(X, X, T): round trips — the repeated variable filters
        // the distinct-variable base answer.
        let service = QueryService::with_config(
            rq_datalog::parse_program(
                "walk(A,B,T) :- edge(A,B), t0(T).\n\
                 walk(A,B,T) :- edge(A,C), walk(C,B,T1), tick(T1,T).\n\
                 edge(a,b). edge(b,a). edge(b,c).\n\
                 t0(t0). tick(t0,t1). tick(t1,t2). tick(t2,t3).",
            )
            .unwrap(),
            ServiceConfig {
                threads: 1,
                options: EvalOptions {
                    max_iterations: Some(8),
                    ..EvalOptions::default()
                },
                ..ServiceConfig::default()
            },
        );
        let diag = service.parse_query("walk(X, X, T)").unwrap();
        assert!(diag.has_repeats());
        let out = service.query(&diag).unwrap();
        let oracle = rq_datalog::seminaive_eval(service.snapshot().program()).unwrap();
        let walk = service.snapshot().program().pred_by_name("walk").unwrap();
        let mut expected: Vec<Vec<Const>> = oracle
            .tuples(walk)
            .into_iter()
            .filter(|t| t[0] == t[1])
            .map(|t| vec![t[0], t[2]])
            .collect();
        expected.sort();
        expected.dedup();
        assert_eq!(*out.rows, expected);
        assert!(!out.rows.is_empty());
        // The distinct-variable base entry was warmed along the way.
        let base = service.query(&service.parse_query("walk(X, Y, T)").unwrap());
        assert!(base.unwrap().from_cache);
    }

    #[test]
    fn metrics_registry_tracks_queries_ingests_and_caches() {
        let service = QueryService::from_source(TC).unwrap();
        let q = service.parse_query("tc(a, Y)").unwrap();
        service.query(&q).unwrap();
        service.query(&q).unwrap(); // result-cache hit
        service.ingest("e(d,z).").unwrap();
        let text = service.metrics_prometheus();
        assert!(text.contains("# TYPE rq_queries_total counter\n"), "{text}");
        assert!(text.contains("rq_queries_total 2\n"));
        assert!(text.contains("rq_ingests_total 1\n"));
        // Adopted cells: the caches' own counters, not copies.
        assert!(text.contains("rq_result_cache_hits_total 1\n"));
        assert!(text.contains("rq_result_cache_misses_total 1\n"));
        assert!(text.contains("rq_plan_cache_misses_total 1\n"));
        // Report-derived gauges ride along in the same exposition.
        assert!(text.contains("rq_epoch 1\n"));
        // The ingest repaired the warm tc memos in place.
        assert!(text.contains("rq_delta_repairs_total 1\n"), "{text}");
        assert!(text.contains("rq_delta_fallback_cold_total 0\n"));
        // The traversal did real work.
        assert!(!text.contains("rq_engine_graph_nodes_total 0\n"));
        assert!(text.contains("# TYPE rq_engine_graph_nodes_total counter\n"));
        // Two services never share a registry.
        let other = QueryService::from_source(TC).unwrap();
        assert!(other.metrics_prometheus().contains("rq_queries_total 0\n"));
        assert!(service.uptime() > std::time::Duration::ZERO);
    }

    #[test]
    fn query_and_ingest_emit_nested_spans() {
        let service = QueryService::from_source(TC).unwrap();
        obs::trace_start();
        let q = service.parse_query("tc(a, Y)").unwrap();
        service.query(&q).unwrap();
        service.ingest("e(d,z).").unwrap();
        let spans = obs::trace_finish();
        let find = |name: &str| {
            spans
                .iter()
                .position(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing span `{name}` in {spans:?}"))
        };
        let query = find("service.query");
        let plan = find("service.plan");
        let traverse = find("engine.traverse");
        assert_eq!(spans[plan].parent, Some(query as u32));
        assert_eq!(spans[traverse].parent, Some(query as u32));
        assert!(spans[query].dur_ns >= spans[traverse].dur_ns);
        assert!(spans[query]
            .notes
            .iter()
            .any(|(k, v)| *k == "result_cache" && v == "miss"));
        let ingest = find("service.ingest");
        for child in ["ingest.validate", "ingest.apply", "ingest.compact"] {
            assert_eq!(spans[find(child)].parent, Some(ingest as u32));
        }
        assert!(spans[find("ingest.delta_repair")].parent == Some(ingest as u32));
        assert!(spans[find("ingest.carry_results")].parent == Some(ingest as u32));
        // Outside a trace, spans cost nothing and record nothing.
        service.query(&q).unwrap();
        assert!(obs::trace_finish().is_empty());
    }

    #[test]
    fn results_memoize_and_invalidate_on_ingest() {
        // Repair off: this test pins the baseline drop-on-dirty policy.
        let service = QueryService::with_config(
            rq_datalog::parse_program(TC).unwrap(),
            ServiceConfig {
                threads: 1,
                delta_repair: false,
                ..ServiceConfig::default()
            },
        );
        let q = service.parse_query("tc(a, Y)").unwrap();
        let first = service.query(&q).unwrap();
        assert!(!first.from_cache);
        let second = service.query(&q).unwrap();
        assert!(second.from_cache);
        assert!(Arc::ptr_eq(&first.rows, &second.rows));
        service.ingest("e(d,z).").unwrap();
        let third = service.query(&q).unwrap();
        assert!(!third.from_cache, "dirty-predicate entries must refresh");
        assert_eq!(third.epoch, 1);
        assert_eq!(rendered(&service, &third), vec!["b", "c", "d", "z"]);
        // Plans survived the ingest: one program compiled, reused after.
        assert_eq!(service.plan_cache().programs(), 1);
    }

    #[test]
    fn clean_predicate_entries_survive_ingest() {
        // Two derived predicates over disjoint base relations: an
        // ingest into one must not evict memoized answers of the other.
        let service = QueryService::from_source(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             rc(X,Y) :- f(X,Y).\n\
             rc(X,Z) :- f(X,Y), rc(Y,Z).\n\
             e(a,b). e(b,c). f(m,n). f(n,o).",
        )
        .unwrap();
        let tc_q = service.parse_query("tc(a, Y)").unwrap();
        let rc_q = service.parse_query("rc(m, Y)").unwrap();
        let tc_before = service.query(&tc_q).unwrap();
        let rc_before = service.query(&rc_q).unwrap();
        assert!(!tc_before.from_cache && !rc_before.from_cache);

        let snap = service.ingest("e(c,d).").unwrap();
        assert_eq!(snap.epoch(), 1);

        // rc reads only `f`, which the publish left clean: served from
        // cache, same Arc, new epoch.
        let rc_after = service.query(&rc_q).unwrap();
        assert!(rc_after.from_cache, "clean-predicate entry must survive");
        assert_eq!(rc_after.epoch, 1);
        assert!(Arc::ptr_eq(&rc_before.rows, &rc_after.rows));

        // tc reads `e`, which was dirtied — but the delta repair patched
        // its memos and re-derived the entry, so it is served warm with
        // the refreshed rows.
        let tc_after = service.query(&tc_q).unwrap();
        assert!(tc_after.from_cache, "repaired entry must stay alive");
        assert!(!Arc::ptr_eq(&tc_before.rows, &tc_after.rows));
        assert_eq!(rendered(&service, &tc_after), vec!["b", "c", "d"]);
        assert!(service.stats_report().delta_repairs >= 1);
    }

    #[test]
    fn bounded_cache_reports_evictions() {
        let service = QueryService::with_config(
            rq_datalog::parse_program(TC).unwrap(),
            ServiceConfig {
                threads: 1,
                result_cache_capacity: Some(2),
                ..ServiceConfig::default()
            },
        );
        for text in ["tc(a, Y)", "tc(b, Y)", "tc(c, Y)", "tc(X, b)", "tc(X, c)"] {
            let q = service.parse_query(text).unwrap();
            service.query(&q).unwrap();
        }
        assert!(service.result_cache().len() <= 2);
        assert!(service.result_cache().stats().evictions >= 3);
    }

    #[test]
    fn byte_budget_bounds_the_cache_payload() {
        let service = QueryService::with_config(
            rq_datalog::parse_program(TC).unwrap(),
            ServiceConfig {
                threads: 1,
                result_cache_capacity: None,
                result_cache_bytes: Some(400),
                ..ServiceConfig::default()
            },
        );
        for text in ["tc(a, Y)", "tc(b, Y)", "tc(c, Y)", "tc(X, Y)", "tc(X, b)"] {
            service.query(&service.parse_query(text).unwrap()).unwrap();
        }
        assert!(service.result_cache().bytes() <= 400);
        assert!(service.result_cache().stats().evictions >= 1);
    }

    #[test]
    fn batch_is_ordered_consistent_and_deduped() {
        let service = QueryService::from_source(TC).unwrap();
        // `tc(a, Y)` and `tc(a, Z)` are the same canonical spec.
        let queries: Vec<QuerySpec> = ["tc(a, Y)", "tc(b, Y)", "tc(a, Z)", "tc(X, d)", "tc(a, Y)"]
            .iter()
            .map(|t| service.parse_query(t).unwrap())
            .collect();
        let batch = service.query_batch(&queries);
        assert_eq!(batch.len(), 5);
        let sizes: Vec<usize> = batch
            .iter()
            .map(|r| r.as_ref().unwrap().rows.len())
            .collect();
        assert_eq!(sizes, vec![3, 2, 3, 3, 3]);
        assert!(batch.iter().all(|r| r.as_ref().unwrap().epoch == 0));
        // The two duplicates of `tc(a, ·)` shared one evaluation.
        assert_eq!(service.result_cache().stats().deduped, 2);
        assert!(Arc::ptr_eq(
            &batch[0].as_ref().unwrap().rows,
            &batch[2].as_ref().unwrap().rows
        ));
    }

    #[test]
    fn batch_on_pinned_snapshot_ignores_later_publishes() {
        // A front end parses and renders against one snapshot; the
        // evaluation must stay on that snapshot even when an ingest
        // publishes (and interns new constants) in between — otherwise
        // the rows could name constants the pinned interner has never
        // seen.
        let service = QueryService::from_source(TC).unwrap();
        let q = service.parse_query("tc(a, Y)").unwrap();
        let pinned = service.snapshot();
        service.ingest("e(d, brand_new).").unwrap();
        let batch = service.query_batch_on(&pinned, std::slice::from_ref(&q));
        let answer = batch[0].as_ref().unwrap();
        assert_eq!(answer.epoch, 0, "evaluation must stay on the pinned epoch");
        assert_eq!(rendered(&service, answer), vec!["b", "c", "d"]);
        // Every row decodes through the pinned snapshot's interner.
        for row in answer.rows.iter() {
            for &c in row {
                let _ = pinned.program().consts.value(c);
            }
        }
        // The unpinned entry point answers on the new epoch.
        let fresh = service.query_batch(&[q]);
        assert_eq!(fresh[0].as_ref().unwrap().epoch, 1);
        assert_eq!(fresh[0].as_ref().unwrap().rows.len(), 4);
    }

    #[test]
    fn batch_mixes_forms_and_arities() {
        let service = QueryService::from_source(&format!("{TC}\n{FLIGHTS}")).unwrap();
        let queries: Vec<QuerySpec> = [
            "tc(a, Y)",
            "tc(X, Y)",
            "cnx(hel, 540, D, AT)",
            "tc(a, d)",
            "tc(X, X)",
        ]
        .iter()
        .map(|t| service.parse_query(t).unwrap())
        .collect();
        let batch = service.query_batch(&queries);
        assert_eq!(batch[0].as_ref().unwrap().rows.len(), 3);
        assert_eq!(batch[1].as_ref().unwrap().rows.len(), 6);
        assert_eq!(batch[2].as_ref().unwrap().rows.len(), 3);
        assert!(batch[3].as_ref().unwrap().holds());
        assert!(batch[4].as_ref().unwrap().rows.is_empty()); // acyclic chain
    }

    #[test]
    fn cyclic_data_terminates_under_guard() {
        let service = QueryService::from_source(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a1,a2). up(a2,a1). flat(a1,b1).\n\
             down(b1,b2). down(b2,b3). down(b3,b1).",
        )
        .unwrap();
        let q = service.parse_query("sg(a1, Y)").unwrap();
        let out = service.query(&q).unwrap();
        assert!(out.converged, "the m·n guard is sufficient");
        assert_eq!(rendered(&service, &out), vec!["b1", "b2", "b3"]);
        // The inverse direction is guarded through the inverted system.
        let q = service.parse_query("sg(X, b1)").unwrap();
        let out = service.query(&q).unwrap();
        assert!(out.converged);
        assert_eq!(rendered(&service, &out), vec!["a1", "a2"]);
    }

    #[test]
    fn nonlinear_cyclic_query_stops_at_fallback_budget() {
        // Mutual recursion that Lemma 1 does not flatten to the linear
        // shape, so no m·n bound exists; cyclic data then diverges.
        // The fallback budget must stop it and report non-convergence.
        let service = QueryService::with_config(
            rq_datalog::parse_program(
                "q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
                 q2(X,Y) :- r2(X,Y).\n\
                 q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
                 a(s,t). a(t,s). r2(s,t). r2(t,s). r1(t,s). r1(s,t).",
            )
            .unwrap(),
            ServiceConfig {
                threads: 1,
                fallback_node_budget: Some(5_000),
                ..ServiceConfig::default()
            },
        );
        let q = service.parse_query("q1(s, Y)").unwrap();
        let bound = q.bound_values()[0];
        let out = service.query(&q).unwrap();
        // Sound answers, honest flag: possibly incomplete.
        let oracle = rq_datalog::seminaive_eval(service.snapshot().program()).unwrap();
        let q1 = service.snapshot().program().pred_by_name("q1").unwrap();
        let full: Vec<_> = oracle.tuples(q1);
        for row in out.rows.iter() {
            assert!(full.iter().any(|t| t[0] == bound && t[1] == row[0]));
        }
        assert!(
            !out.converged,
            "a divergent traversal stopped by the budget must say so"
        );
    }

    #[test]
    fn parse_errors_are_specific() {
        let service = QueryService::from_source(TC).unwrap();
        assert!(matches!(
            service.parse_query("tc(a Y)"),
            Err(ServiceError::Malformed(_))
        ));
        assert!(matches!(
            service.parse_query("zzz(a, Y)"),
            Err(ServiceError::UnknownPredicate(_))
        ));
        assert!(matches!(
            service.parse_query("e(a, Y)"),
            Err(ServiceError::NotDerived(_))
        ));
        assert!(matches!(
            service.parse_query("tc(a, Y, Z)"),
            Err(ServiceError::ArityMismatch {
                expected: 2,
                got: 3,
                ..
            })
        ));
        assert!(matches!(
            service.parse_query("tc(nosuch, Y)"),
            Err(ServiceError::UnknownConstant(_))
        ));
        assert!(matches!(
            service.parse_query("tc"),
            Err(ServiceError::Malformed(_))
        ));
        // Every binding pattern parses now; bound-bound included.
        assert!(service.parse_query("tc(a, b)").is_ok());
        assert!(service.parse_query("tc(X, Y)").is_ok());
        assert!(service.parse_query("tc(Z, Z)").is_ok());
    }

    #[test]
    fn over_wide_predicates_are_rejected_cleanly() {
        // 33 positions exceed the adornment bitmask; the query must be
        // refused at parse time, not silently alias positions.
        let args: Vec<String> = (0..33).map(|i| format!("X{i}")).collect();
        let src = format!(
            "wide({a}) :- base({a}).\nbase({c}).",
            a = args.join(","),
            c = vec!["k"; 33].join(",")
        );
        let service = QueryService::from_source(&src).unwrap();
        let err = service
            .parse_query(&format!("wide({})", args.join(",")))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Plan(_)), "{err}");
    }

    #[test]
    fn service_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryService>();
        assert_send_sync::<ServiceAnswer>();

        let service = QueryService::from_source(TC).unwrap();
        let q = service.parse_query("tc(a, Y)").unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let out = service.query(&q).unwrap();
                    assert_eq!(out.rows.len(), 3);
                });
            }
        });
    }

    #[test]
    fn nary_queries_share_threads_too() {
        let service = QueryService::with_config(
            rq_datalog::parse_program(FLIGHTS).unwrap(),
            ServiceConfig {
                threads: 4,
                memoize_results: false,
                ..ServiceConfig::default()
            },
        );
        let q = service.parse_query("cnx(hel, 540, D, AT)").unwrap();
        let batch = service.query_batch(&vec![q; 8]);
        for out in batch {
            assert_eq!(out.unwrap().rows.len(), 3);
        }
    }
}
