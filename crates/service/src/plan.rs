//! The plan cache: memoized compilation for both serving pipelines.
//!
//! Compiling a program (Arden elimination + Thompson construction for
//! the §3 binary-chain path; adornment + the §4 binding-propagating
//! transformation + elimination + machines for n-ary queries) is work
//! proportional to the rule set, not to the data — exactly the kind of
//! work that should happen once per program, not once per query.  The
//! cache is keyed by `(rules fingerprint, predicate, adornment)`, the
//! service's unit of reuse:
//!
//! * every binary-chain key of one program shares a single
//!   [`ProgramPlan`], since Lemma 1 compiles the whole equation system
//!   at once and the [`CompiledPlan`] holds both machine orientations;
//! * each §4 key holds its own [`NaryPlan`] — the transformation
//!   genuinely depends on the adornment (which positions are bound
//!   decides the before/after split), though never on the bound values.
//!
//! The fingerprint covers the rules *and* their predicate-id binding
//! (compiled expressions speak in `Pred` ids), but not the facts — so
//! fact ingestion never invalidates a plan.

use crate::spec::Adornment;
use rq_adorn::{plan_nary_query, NaryPlan, QueryError};
use rq_common::obs::Counter;
use rq_common::{FxHashMap, FxHasher, Pred};
use rq_datalog::{display_rule, Program};
use rq_engine::CompiledPlan;
use rq_relalg::{lemma1, EqSystem, Lemma1Error, Lemma1Options};
use std::hash::Hasher;
use std::sync::{Arc, RwLock};

use crate::snapshot::Snapshot;

/// Cache key: one compiled unit of reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Snapshot::rules_fingerprint`] of the program.
    pub program: u64,
    /// The queried predicate.
    pub pred: Pred,
    /// The query's `{b,f}` binding pattern.
    pub adornment: Adornment,
}

/// Everything compiled from one binary-chain program: the Lemma 1
/// equation system and the Thompson machines (both orientations).
pub struct ProgramPlan {
    /// The final equation system of Lemma 1.
    pub system: EqSystem,
    /// Compiled machines for every derived predicate, both orientations.
    pub compiled: CompiledPlan,
}

impl ProgramPlan {
    /// Every predicate a query rooted at `pred` can read — the
    /// cache-invalidation footprint: a published epoch whose dirty
    /// shards are disjoint from this set cannot change any answer of a
    /// `pred` query.
    pub fn read_set(&self, pred: Pred) -> rq_common::FxHashSet<Pred> {
        self.system.read_set(pred)
    }
}

/// Hash the rule set and its predicate-id binding.  Facts are excluded
/// on purpose: plans survive ingestion.  Predicate ids are included
/// because compiled expressions refer to predicates by id, so the same
/// rule *text* under a different id assignment is a different plan.
pub fn rules_fingerprint(program: &Program) -> u64 {
    let mut h = FxHasher::default();
    for rule in &program.rules {
        h.write(display_rule(program, rule).as_bytes());
        h.write_u32(rule.head.pred.0);
        for atom in rule.body_atoms() {
            h.write_u32(atom.pred.0);
        }
    }
    h.finish()
}

/// Hit/miss/eviction/dedup counts of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped by capacity pressure or epoch invalidation.
    pub evictions: u64,
    /// Batch queries answered by sharing an identical query's
    /// evaluation (result cache only; always 0 for the plan cache).
    pub deduped: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when idle).  Saturating:
    /// counters near the top of their range degrade gracefully instead
    /// of wrapping into a nonsense rate.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits.saturating_add(self.misses);
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memoization of compiled plans.  Failures are cached
/// too: the rule set is fixed for a service's lifetime, so a program
/// that fails Lemma 1 (or a `(pred, adornment)` that fails adornment or
/// the chain condition) fails deterministically and must not re-run
/// the whole pipeline on every query.
pub struct PlanCache {
    by_key: RwLock<FxHashMap<PlanKey, Arc<ProgramPlan>>>,
    by_program: RwLock<FxHashMap<u64, Result<Arc<ProgramPlan>, Lemma1Error>>>,
    by_nary: RwLock<FxHashMap<PlanKey, Result<Arc<NaryPlan>, QueryError>>>,
    /// Shareable hit/miss counters ([`rq_common::obs::Counter`]):
    /// the service adopts clones into its metrics registry, so the
    /// Prometheus export reads the very cells the cache increments.
    hits: Counter,
    misses: Counter,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self {
            by_key: RwLock::new(FxHashMap::default()),
            by_program: RwLock::new(FxHashMap::default()),
            by_nary: RwLock::new(FxHashMap::default()),
            hits: Counter::new(),
            misses: Counter::new(),
        }
    }

    /// A handle to the hit counter (shares the underlying cells).
    pub fn hits_counter(&self) -> Counter {
        self.hits.clone()
    }

    /// A handle to the miss counter (shares the underlying cells).
    pub fn misses_counter(&self) -> Counter {
        self.misses.clone()
    }

    /// The §3 binary-chain plan for querying `pred` with `adornment` on
    /// `snapshot`'s program, compiling at most once per program
    /// fingerprint.
    pub fn chain_plan_for(
        &self,
        snapshot: &Snapshot,
        pred: Pred,
        adornment: Adornment,
    ) -> Result<Arc<ProgramPlan>, Lemma1Error> {
        let key = PlanKey {
            program: snapshot.rules_fingerprint(),
            pred,
            adornment,
        };
        if let Some(plan) = self
            .by_key
            .read()
            .expect("plan cache lock poisoned")
            .get(&key)
        {
            self.hits.inc();
            return Ok(Arc::clone(plan));
        }
        self.misses.inc();
        let plan = self.program_plan(key.program, snapshot.program())?;
        self.by_key
            .write()
            .expect("plan cache lock poisoned")
            .insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// The §4 plan for querying `pred` with `adornment` on `snapshot`'s
    /// program: adornment, binding-propagating transformation to a
    /// chain program over `base-r`/`in-r`/`out-r` virtual predicates,
    /// Lemma 1 over the transformed system, machine compilation.
    /// Compiles (or fails) at most once per key.
    pub fn nary_plan_for(
        &self,
        snapshot: &Snapshot,
        pred: Pred,
        adornment: Adornment,
    ) -> Result<Arc<NaryPlan>, QueryError> {
        let key = PlanKey {
            program: snapshot.rules_fingerprint(),
            pred,
            adornment,
        };
        if let Some(outcome) = self
            .by_nary
            .read()
            .expect("plan cache lock poisoned")
            .get(&key)
        {
            self.hits.inc();
            return outcome.clone();
        }
        self.misses.inc();
        // Compile outside any lock: the pipeline can be slow and must
        // not stall readers.  A racing thread may compile the same key;
        // first publication wins and the duplicate is dropped.
        let outcome = plan_nary_query(snapshot.program(), pred, adornment).map(Arc::new);
        let mut by_nary = self.by_nary.write().expect("plan cache lock poisoned");
        by_nary.entry(key).or_insert(outcome).clone()
    }

    /// The per-program §3 compilation (or its cached failure), shared
    /// by every binary-chain `(pred, adornment)` key of one program.
    fn program_plan(
        &self,
        fingerprint: u64,
        program: &Program,
    ) -> Result<Arc<ProgramPlan>, Lemma1Error> {
        if let Some(outcome) = self
            .by_program
            .read()
            .expect("plan cache lock poisoned")
            .get(&fingerprint)
        {
            return outcome.clone();
        }
        // Compile outside any lock: lemma1 can be slow and must not
        // stall readers.  A racing thread may compile the same program;
        // first publication wins and the duplicate is dropped.
        let outcome = lemma1(program, &Lemma1Options::default()).map(|out| {
            let compiled = CompiledPlan::compile(&out.system);
            Arc::new(ProgramPlan {
                system: out.system,
                compiled,
            })
        });
        let mut by_program = self.by_program.write().expect("plan cache lock poisoned");
        by_program.entry(fingerprint).or_insert(outcome).clone()
    }

    /// The already-compiled §3 plan for `fingerprint`, if one is cached
    /// — never triggers compilation.  The ingest path uses this to
    /// compute invalidation read-sets without paying a compile under
    /// the writer lock.
    pub fn peek_program(&self, fingerprint: u64) -> Option<Arc<ProgramPlan>> {
        self.by_program
            .read()
            .expect("plan cache lock poisoned")
            .get(&fingerprint)
            .and_then(|o| o.clone().ok())
    }

    /// The already-compiled §4 plan for a key, if one is cached —
    /// never triggers compilation (ingest-path counterpart of
    /// [`PlanCache::peek_program`]).
    pub fn peek_nary(
        &self,
        fingerprint: u64,
        pred: Pred,
        adornment: Adornment,
    ) -> Option<Arc<NaryPlan>> {
        self.by_nary
            .read()
            .expect("plan cache lock poisoned")
            .get(&PlanKey {
                program: fingerprint,
                pred,
                adornment,
            })
            .and_then(|o| o.clone().ok())
    }

    /// Every successfully compiled §4 plan of `fingerprint`'s program —
    /// the ingest path walks these to decide which plans' epoch-context
    /// state (machine memo + probe space) survives a publish.  Never
    /// triggers compilation.
    pub fn cached_nary_plans(&self, fingerprint: u64) -> Vec<(PlanKey, Arc<NaryPlan>)> {
        self.by_nary
            .read()
            .expect("plan cache lock poisoned")
            .iter()
            .filter(|(key, _)| key.program == fingerprint)
            .filter_map(|(key, outcome)| outcome.as_ref().ok().map(|plan| (*key, Arc::clone(plan))))
            .collect()
    }

    /// Number of binary-chain `(program, pred, adornment)` entries.
    pub fn len(&self) -> usize {
        self.by_key.read().expect("plan cache lock poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.nary_plans() == 0
    }

    /// Number of distinct programs compiled (successfully) for the §3
    /// path.
    pub fn programs(&self) -> usize {
        self.by_program
            .read()
            .expect("plan cache lock poisoned")
            .values()
            .filter(|o| o.is_ok())
            .count()
    }

    /// Number of §4 plans compiled (successfully).
    pub fn nary_plans(&self) -> usize {
        self.by_nary
            .read()
            .expect("plan cache lock poisoned")
            .values()
            .filter(|o| o.is_ok())
            .count()
    }

    /// Hit/miss counters.  Plans are never evicted (the rule set is
    /// fixed for a service's lifetime), so `evictions` is always 0.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.value(),
            misses: self.misses.value(),
            ..CacheStats::default()
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotStore;
    use rq_datalog::parse_program;

    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                      up(a,a1). flat(a1,b1). down(b1,b).";

    fn bf() -> Adornment {
        Adornment::from_bound(2, [0])
    }

    fn fb() -> Adornment {
        Adornment::from_bound(2, [1])
    }

    #[test]
    fn one_compile_serves_both_adornments() {
        let store = SnapshotStore::new(parse_program(SG).unwrap());
        let snap = store.snapshot();
        let sg = snap.program().pred_by_name("sg").unwrap();
        let cache = PlanCache::new();
        let p_bf = cache.chain_plan_for(&snap, sg, bf()).unwrap();
        let p_fb = cache.chain_plan_for(&snap, sg, fb()).unwrap();
        assert!(
            Arc::ptr_eq(&p_bf, &p_fb),
            "both adornments share the program plan"
        );
        assert_eq!(cache.programs(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                ..CacheStats::default()
            }
        );
        let again = cache.chain_plan_for(&snap, sg, bf()).unwrap();
        assert!(Arc::ptr_eq(&p_bf, &again));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn plans_survive_fact_ingest() {
        let store = SnapshotStore::new(parse_program(SG).unwrap());
        let cache = PlanCache::new();
        let snap0 = store.snapshot();
        let sg = snap0.program().pred_by_name("sg").unwrap();
        let p0 = cache.chain_plan_for(&snap0, sg, bf()).unwrap();
        let snap1 = store.ingest("up(x,y). flat(y,z).").unwrap();
        let p1 = cache.chain_plan_for(&snap1, sg, bf()).unwrap();
        assert!(Arc::ptr_eq(&p0, &p1), "ingest must not recompile");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.programs(), 1);
    }

    #[test]
    fn different_programs_get_different_plans() {
        let a = SnapshotStore::new(parse_program(SG).unwrap());
        let b = SnapshotStore::new(
            parse_program("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b).").unwrap(),
        );
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_ne!(sa.rules_fingerprint(), sb.rules_fingerprint());
        let cache = PlanCache::new();
        let pa = cache
            .chain_plan_for(&sa, sa.program().pred_by_name("sg").unwrap(), bf())
            .unwrap();
        let pb = cache
            .chain_plan_for(&sb, sb.program().pred_by_name("tc").unwrap(), bf())
            .unwrap();
        assert!(!Arc::ptr_eq(&pa, &pb));
        assert_eq!(cache.programs(), 2);
    }

    #[test]
    fn lemma1_errors_propagate_and_are_memoized() {
        // A non-binary-chain program: ternary head.
        let src = "t(X,Y,Z) :- a(X,Y), b(Y,Z).\na(x,y). b(y,z).";
        let store = SnapshotStore::new(parse_program(src).unwrap());
        let snap = store.snapshot();
        let t = snap.program().pred_by_name("t").unwrap();
        let cache = PlanCache::new();
        let first = cache.chain_plan_for(&snap, t, Adornment::from_bound(3, [0]));
        assert!(first.is_err());
        // The failure is cached per program; repeat queries must not
        // re-run the elimination (and must not count as a compiled
        // program).
        let again = cache.chain_plan_for(&snap, t, Adornment::from_bound(3, [0, 1]));
        assert_eq!(again.err(), first.err());
        assert_eq!(cache.programs(), 0);
    }

    #[test]
    fn nary_plans_cached_per_adornment() {
        let src = "cnx(S,DT,D,AT) :- flight(S,DT,D,AT).\n\
                   cnx(S,DT,D,AT) :- flight(S,DT,D1,AT1), AT1 < DT1, is_deptime(DT1), cnx(D1,DT1,D,AT).\n\
                   flight(hel,540,ams,690). is_deptime(540).";
        let store = SnapshotStore::new(parse_program(src).unwrap());
        let snap = store.snapshot();
        let cnx = snap.program().pred_by_name("cnx").unwrap();
        let cache = PlanCache::new();
        let bbff = Adornment::from_bound(4, [0, 1]);
        let p1 = cache.nary_plan_for(&snap, cnx, bbff).unwrap();
        let p2 = cache.nary_plan_for(&snap, cnx, bbff).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "repeat key must hit the cache");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.nary_plans(), 1);
        // A different adornment is a different plan.
        let bbbb = Adornment::from_bound(4, [0, 1, 2, 3]);
        let p3 = cache.nary_plan_for(&snap, cnx, bbbb).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.nary_plans(), 2);
        // The plan's read-set resolves virtual predicates back to the
        // real relations their joins consult.
        let rs = p1.read_set(snap.program());
        let pred = |n: &str| snap.program().pred_by_name(n).unwrap();
        assert!(rs.contains(&pred("flight")));
        assert!(rs.contains(&pred("is_deptime")));
        assert!(!rs.contains(&cnx), "cnx itself is rewritten away");
    }

    #[test]
    fn nary_failures_are_memoized() {
        // §4's counterexample fails the chain condition.
        let src = "p(X,Y) :- b0(X,Y).\n\
                   p(X,Y) :- b1(X,Y), p(Y,Z).\n\
                   b1(a,b). b0(b,c).";
        let store = SnapshotStore::new(parse_program(src).unwrap());
        let snap = store.snapshot();
        let p = snap.program().pred_by_name("p").unwrap();
        let cache = PlanCache::new();
        let first = cache.nary_plan_for(&snap, p, Adornment::from_bound(2, [0]));
        assert!(matches!(first, Err(QueryError::NotChain(_))));
        let again = cache.nary_plan_for(&snap, p, Adornment::from_bound(2, [0]));
        assert!(again.is_err());
        assert_eq!(cache.stats().hits, 1, "failure served from cache");
        assert_eq!(cache.nary_plans(), 0);
    }
}
