//! The plan cache: memoized `lemma1 → automata` compilation.
//!
//! Compiling a program (Arden elimination + Thompson construction) is
//! work proportional to the rule set, not to the data — exactly the
//! kind of work that should happen once per program, not once per
//! query.  The cache is keyed by `(rules fingerprint, predicate,
//! adornment)` as the service's unit of reuse; entries for one program
//! share a single [`ProgramPlan`], since Lemma 1 compiles the whole
//! equation system at once and the [`CompiledPlan`] holds both machine
//! orientations.
//!
//! The fingerprint covers the rules *and* their predicate-id binding
//! (compiled expressions speak in `Pred` ids), but not the facts — so
//! fact ingestion never invalidates a plan.

use rq_common::{FxHashMap, FxHasher, Pred};
use rq_datalog::{display_rule, Program};
use rq_engine::CompiledPlan;
use rq_relalg::{lemma1, EqSystem, Lemma1Error, Lemma1Options};
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::snapshot::Snapshot;

/// Which argument of the point query is bound — the binary-chain
/// analogue of §4's adornments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Adornment {
    /// `p(a, Y)`: first argument bound, forward machine.
    BoundFree,
    /// `p(X, a)`: second argument bound, inverse machine.
    FreeBound,
}

impl Adornment {
    /// The conventional two-letter rendering (`bf` / `fb`).
    pub fn as_str(self) -> &'static str {
        match self {
            Adornment::BoundFree => "bf",
            Adornment::FreeBound => "fb",
        }
    }
}

/// Cache key: one compiled unit of reuse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Snapshot::rules_fingerprint`] of the program.
    pub program: u64,
    /// The queried predicate.
    pub pred: Pred,
    /// Which argument the query binds.
    pub adornment: Adornment,
}

/// Everything compiled from one program: the Lemma 1 equation system
/// and the Thompson machines (both orientations).
pub struct ProgramPlan {
    /// The final equation system of Lemma 1.
    pub system: EqSystem,
    /// Compiled machines for every derived predicate, both orientations.
    pub compiled: CompiledPlan,
}

impl ProgramPlan {
    /// Every predicate a query rooted at `pred` can read: the symbols
    /// of all equations reachable from `pred` through derived
    /// occurrences.  This is the cache-invalidation footprint — a
    /// published epoch whose dirty shards are disjoint from this set
    /// cannot change any answer of a `pred` query.
    pub fn read_set(&self, pred: Pred) -> rq_common::FxHashSet<Pred> {
        let derived = self.system.derived();
        let mut all = rq_common::FxHashSet::default();
        let mut seen = rq_common::FxHashSet::default();
        let mut stack = vec![pred];
        while let Some(p) = stack.pop() {
            if !seen.insert(p) {
                continue;
            }
            if let Some(e) = self.system.rhs.get(&p) {
                let mut syms = rq_common::FxHashSet::default();
                e.symbols(&mut syms);
                for q in syms {
                    if derived.contains(&q) {
                        stack.push(q);
                    }
                    all.insert(q);
                }
            }
        }
        all
    }
}

/// Hash the rule set and its predicate-id binding.  Facts are excluded
/// on purpose: plans survive ingestion.  Predicate ids are included
/// because compiled expressions refer to predicates by id, so the same
/// rule *text* under a different id assignment is a different plan.
pub fn rules_fingerprint(program: &Program) -> u64 {
    let mut h = FxHasher::default();
    for rule in &program.rules {
        h.write(display_rule(program, rule).as_bytes());
        h.write_u32(rule.head.pred.0);
        for atom in rule.body_atoms() {
            h.write_u32(atom.pred.0);
        }
    }
    h.finish()
}

/// Hit/miss/eviction counts of one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped by capacity pressure or epoch invalidation.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Thread-safe memoization of [`ProgramPlan`]s.  Failures are cached
/// too: the rule set is fixed for a service's lifetime, so a program
/// that fails Lemma 1 fails deterministically and must not re-run the
/// whole elimination on every query.
pub struct PlanCache {
    by_key: RwLock<FxHashMap<PlanKey, Arc<ProgramPlan>>>,
    by_program: RwLock<FxHashMap<u64, Result<Arc<ProgramPlan>, Lemma1Error>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self {
            by_key: RwLock::new(FxHashMap::default()),
            by_program: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The plan for querying `pred` with `adornment` on `snapshot`'s
    /// program, compiling at most once per program fingerprint.
    pub fn plan_for(
        &self,
        snapshot: &Snapshot,
        pred: Pred,
        adornment: Adornment,
    ) -> Result<Arc<ProgramPlan>, Lemma1Error> {
        let key = PlanKey {
            program: snapshot.rules_fingerprint(),
            pred,
            adornment,
        };
        if let Some(plan) = self
            .by_key
            .read()
            .expect("plan cache lock poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = self.program_plan(key.program, snapshot.program())?;
        self.by_key
            .write()
            .expect("plan cache lock poisoned")
            .insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    /// The per-program compilation (or its cached failure), shared by
    /// every `(pred, adornment)` key of one program.
    fn program_plan(
        &self,
        fingerprint: u64,
        program: &Program,
    ) -> Result<Arc<ProgramPlan>, Lemma1Error> {
        if let Some(outcome) = self
            .by_program
            .read()
            .expect("plan cache lock poisoned")
            .get(&fingerprint)
        {
            return outcome.clone();
        }
        // Compile outside any lock: lemma1 can be slow and must not
        // stall readers.  A racing thread may compile the same program;
        // first publication wins and the duplicate is dropped.
        let outcome = lemma1(program, &Lemma1Options::default()).map(|out| {
            let compiled = CompiledPlan::compile(&out.system);
            Arc::new(ProgramPlan {
                system: out.system,
                compiled,
            })
        });
        let mut by_program = self.by_program.write().expect("plan cache lock poisoned");
        by_program.entry(fingerprint).or_insert(outcome).clone()
    }

    /// The already-compiled plan for `fingerprint`, if one is cached —
    /// never triggers compilation.  The ingest path uses this to
    /// compute invalidation read-sets without paying a compile under
    /// the writer lock.
    pub fn peek_program(&self, fingerprint: u64) -> Option<Arc<ProgramPlan>> {
        self.by_program
            .read()
            .expect("plan cache lock poisoned")
            .get(&fingerprint)
            .and_then(|o| o.clone().ok())
    }

    /// Number of `(program, pred, adornment)` entries.
    pub fn len(&self) -> usize {
        self.by_key.read().expect("plan cache lock poisoned").len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of distinct programs compiled (successfully).
    pub fn programs(&self) -> usize {
        self.by_program
            .read()
            .expect("plan cache lock poisoned")
            .values()
            .filter(|o| o.is_ok())
            .count()
    }

    /// Hit/miss counters.  Plans are never evicted (the rule set is
    /// fixed for a service's lifetime), so `evictions` is always 0.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: 0,
        }
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotStore;
    use rq_datalog::parse_program;

    const SG: &str = "sg(X,Y) :- flat(X,Y).\n\
                      sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                      up(a,a1). flat(a1,b1). down(b1,b).";

    #[test]
    fn one_compile_serves_both_adornments() {
        let store = SnapshotStore::new(parse_program(SG).unwrap());
        let snap = store.snapshot();
        let sg = snap.program().pred_by_name("sg").unwrap();
        let cache = PlanCache::new();
        let bf = cache.plan_for(&snap, sg, Adornment::BoundFree).unwrap();
        let fb = cache.plan_for(&snap, sg, Adornment::FreeBound).unwrap();
        assert!(
            Arc::ptr_eq(&bf, &fb),
            "both adornments share the program plan"
        );
        assert_eq!(cache.programs(), 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                evictions: 0
            }
        );
        let again = cache.plan_for(&snap, sg, Adornment::BoundFree).unwrap();
        assert!(Arc::ptr_eq(&bf, &again));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn plans_survive_fact_ingest() {
        let store = SnapshotStore::new(parse_program(SG).unwrap());
        let cache = PlanCache::new();
        let snap0 = store.snapshot();
        let sg = snap0.program().pred_by_name("sg").unwrap();
        let p0 = cache.plan_for(&snap0, sg, Adornment::BoundFree).unwrap();
        let snap1 = store.ingest("up(x,y). flat(y,z).").unwrap();
        let p1 = cache.plan_for(&snap1, sg, Adornment::BoundFree).unwrap();
        assert!(Arc::ptr_eq(&p0, &p1), "ingest must not recompile");
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.programs(), 1);
    }

    #[test]
    fn different_programs_get_different_plans() {
        let a = SnapshotStore::new(parse_program(SG).unwrap());
        let b = SnapshotStore::new(
            parse_program("tc(X,Y) :- e(X,Y).\ntc(X,Z) :- e(X,Y), tc(Y,Z).\ne(a,b).").unwrap(),
        );
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_ne!(sa.rules_fingerprint(), sb.rules_fingerprint());
        let cache = PlanCache::new();
        let pa = cache
            .plan_for(
                &sa,
                sa.program().pred_by_name("sg").unwrap(),
                Adornment::BoundFree,
            )
            .unwrap();
        let pb = cache
            .plan_for(
                &sb,
                sb.program().pred_by_name("tc").unwrap(),
                Adornment::BoundFree,
            )
            .unwrap();
        assert!(!Arc::ptr_eq(&pa, &pb));
        assert_eq!(cache.programs(), 2);
    }

    #[test]
    fn lemma1_errors_propagate_and_are_memoized() {
        // A non-binary-chain program: ternary head.
        let src = "t(X,Y,Z) :- a(X,Y), b(Y,Z).\na(x,y). b(y,z).";
        let store = SnapshotStore::new(parse_program(src).unwrap());
        let snap = store.snapshot();
        let t = snap.program().pred_by_name("t").unwrap();
        let cache = PlanCache::new();
        let first = cache.plan_for(&snap, t, Adornment::BoundFree);
        assert!(first.is_err());
        // The failure is cached per program; repeat queries must not
        // re-run the elimination (and must not count as a compiled
        // program).
        let again = cache.plan_for(&snap, t, Adornment::FreeBound);
        assert_eq!(again.err(), first.err());
        assert_eq!(cache.programs(), 0);
    }
}
