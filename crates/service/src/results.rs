//! The memoized result cache: `(epoch, query spec) → sorted answer
//! rows`, in the salsa mold, bounded and epoch-carrying.
//!
//! The demand-driven traversal makes per-query results small (only the
//! reachable fragment of the interpretation graph contributes), which
//! is what makes memoizing them worthwhile.  Keys embed the snapshot
//! epoch, so a published revision implicitly invalidates every older
//! entry — a stale answer can never be returned because its key can no
//! longer be constructed.  The [`QuerySpec`] half of the key is
//! canonical (free slots renumbered by first occurrence), so `tc(a, Y)`
//! and `tc(a, Z)` share one entry.
//!
//! Three refinements over a plain epoch-keyed map:
//!
//! * **Per-adornment survival.**  [`ResultCache::carry_forward`] runs on
//!   every epoch bump with an "is this entry still valid?" predicate
//!   supplied by the service (its plan's read-set vs. the snapshot's
//!   dirty shards — for §4 plans the *virtual* predicates resolved back
//!   to the real base relations they join).  Surviving entries are
//!   re-keyed to the new epoch instead of being dropped.
//! * **A bounded footprint.**  The cache caps its entry count and/or
//!   its approximate payload bytes; overflow evicts least-recently-used
//!   entries (approximate LRU via a monotone use tick) and counts them
//!   in [`CacheStats::evictions`].
//! * **Batch dedup accounting.**  [`ResultCache::note_deduped`] counts
//!   queries a batch answered by sharing another identical spec's
//!   answer instead of evaluating ([`CacheStats::deduped`]).

use crate::plan::CacheStats;
use crate::spec::QuerySpec;
use rq_common::obs::Counter;
use rq_common::{Const, FxHashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// What an epoch sweep does with one surviving-candidate entry — the
/// three-way policy behind delta-driven maintenance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepDecision {
    /// The entry's plan read nothing the publish dirtied: re-key it to
    /// the new epoch unchanged.
    Carry,
    /// The entry's plan was dirtied, but its memos were repaired in
    /// place: remove the entry (uncharging its bytes) and hand its spec
    /// back to the caller, which re-derives the rows from the repaired
    /// memos and re-inserts them with an honest fresh byte charge.
    /// **Not** counted as an eviction — the entry stays logically alive.
    Repair,
    /// The entry is stale beyond repair: remove it and count the
    /// eviction.
    Drop,
}

/// Cache key: one memoized query on one database version.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Snapshot epoch the answer was computed on.
    pub epoch: u64,
    /// The canonical query.
    pub spec: QuerySpec,
}

/// A memoized answer set.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Sorted, deduplicated answer rows over the spec's distinct free
    /// positions, in ascending position order (`Arc`-shared with every
    /// consumer).  A fully bound query answers `[[]]` (yes) or `[]`
    /// (no).
    pub rows: Arc<Vec<Vec<Const>>>,
    /// Whether the evaluation converged (`false` = truncated by an
    /// iteration bound or node budget, answers sound but possibly
    /// partial).
    pub converged: bool,
}

struct Entry {
    result: CachedResult,
    last_used: AtomicU64,
    bytes: u64,
}

/// Approximate heap footprint of one entry: key, row vectors, and map
/// overhead.  `Const` is 4 bytes; each row carries a `Vec` header.
fn approx_bytes(key: &ResultKey, rows: &[Vec<Const>]) -> u64 {
    let key_bytes = 64 + 8 * key.spec.args().len();
    let row_bytes: usize = rows.iter().map(|r| 24 + 4 * r.len()).sum();
    (key_bytes + row_bytes + 24) as u64
}

struct Inner {
    map: FxHashMap<ResultKey, Entry>,
    bytes: u64,
}

/// Thread-safe memoization of query results, optionally bounded by
/// entry count and/or approximate payload bytes.
pub struct ResultCache {
    inner: RwLock<Inner>,
    /// Entry cap; `None` = unbounded.
    capacity: Option<usize>,
    /// Byte budget over the approximate entry footprints; `None` =
    /// unbounded.
    byte_budget: Option<u64>,
    tick: AtomicU64,
    /// Shareable counters ([`rq_common::obs::Counter`]): the service
    /// adopts clones into its metrics registry, so `/metrics` reads
    /// the very cells the cache increments.
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    deduped: Counter,
}

impl ResultCache {
    /// Empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_limits(None, None)
    }

    /// Empty cache holding at most `capacity` entries (`None` =
    /// unbounded).  A zero capacity disables memoization entirely.
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        Self::with_limits(capacity, None)
    }

    /// Empty cache bounded by an entry cap and/or a byte budget over
    /// the approximate answer footprints.  A zero in either limit
    /// disables memoization entirely.
    pub fn with_limits(capacity: Option<usize>, byte_budget: Option<u64>) -> Self {
        Self {
            inner: RwLock::new(Inner {
                map: FxHashMap::default(),
                bytes: 0,
            }),
            capacity,
            byte_budget,
            tick: AtomicU64::new(0),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            deduped: Counter::new(),
        }
    }

    /// Handles to the hit/miss/eviction/dedup counters, in that order
    /// (each shares the underlying cells) — what the service registers
    /// under the `rq_result_cache_*` metric names.
    pub fn counters(&self) -> (Counter, Counter, Counter, Counter) {
        (
            self.hits.clone(),
            self.misses.clone(),
            self.evictions.clone(),
            self.deduped.clone(),
        )
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The configured byte budget.
    pub fn byte_budget(&self) -> Option<u64> {
        self.byte_budget
    }

    /// Approximate bytes currently charged to memoized answers.
    pub fn bytes(&self) -> u64 {
        self.inner.read().expect("result cache lock poisoned").bytes
    }

    /// Look up a memoized answer, refreshing its recency.
    pub fn get(&self, key: &ResultKey) -> Option<CachedResult> {
        let inner = self.inner.read().expect("result cache lock poisoned");
        let hit = inner.map.get(key).map(|e| {
            e.last_used
                .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            e.result.clone()
        });
        drop(inner);
        match &hit {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        hit
    }

    /// Memoize an answer.  Last write wins; concurrent writers compute
    /// identical values for identical keys (epochs are immutable).
    /// Overflow beyond either limit evicts least-recently-used entries.
    pub fn insert(&self, key: ResultKey, value: CachedResult) {
        if self.capacity == Some(0) || self.byte_budget == Some(0) {
            return;
        }
        let bytes = approx_bytes(&key, &value.rows);
        let mut inner = self.inner.write().expect("result cache lock poisoned");
        let entry = Entry {
            result: value,
            last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            bytes,
        };
        if let Some(old) = inner.map.insert(key, entry) {
            inner.bytes = inner.bytes.saturating_sub(old.bytes);
        }
        inner.bytes = inner.bytes.saturating_add(bytes);
        let over_entries = self.capacity.is_some_and(|cap| inner.map.len() > cap);
        let over_bytes = self.byte_budget.is_some_and(|b| inner.bytes > b);
        if !(over_entries || over_bytes) {
            return;
        }
        // Evict to 7/8 of each exceeded limit so overflow work is
        // amortized instead of re-running the selection on every
        // insert at the boundary.  Oldest ticks go first.  The
        // selection works on flat `(tick, bytes)` pairs — no key
        // clones — and the write lock's critical section stays short:
        // one sort of 16-byte pairs plus one `retain` pass.
        let entry_target = self.capacity.map(|cap| cap - cap / 8);
        let byte_target = self.byte_budget.map(|b| b - b / 8);
        let mut ticks: Vec<(u64, u64)> = inner
            .map
            .values()
            .map(|e| (e.last_used.load(Ordering::Relaxed), e.bytes))
            .collect();
        ticks.sort_unstable_by_key(|&(t, _)| t);
        // Walk oldest-first until what *remains* satisfies both
        // targets; ticks are unique (a monotone counter), so evicting
        // everything strictly below the cutoff removes exactly the
        // prefix.
        let mut remaining_entries = ticks.len();
        let mut remaining_bytes = inner.bytes;
        let mut cutoff = 0u64;
        for &(tick, bytes) in &ticks {
            let entries_ok = entry_target.is_none_or(|t| remaining_entries <= t);
            let bytes_ok = byte_target.is_none_or(|t| remaining_bytes <= t);
            if entries_ok && bytes_ok {
                break;
            }
            remaining_entries -= 1;
            remaining_bytes = remaining_bytes.saturating_sub(bytes);
            cutoff = tick + 1;
        }
        let before = inner.map.len();
        inner
            .map
            .retain(|_, e| e.last_used.load(Ordering::Relaxed) >= cutoff);
        let evicted = (before - inner.map.len()) as u64;
        inner.bytes = remaining_bytes;
        self.evictions.add(evicted);
    }

    /// Epoch-bump garbage collection with per-entry survival.  Entries
    /// of epoch `new_epoch - 1` for which `survives` returns `true` are
    /// **re-keyed** to `new_epoch` (their answers are still valid: the
    /// publish touched none of the predicates their plan reads).  All
    /// other entries older than `new_epoch` are dropped and counted as
    /// evictions.  Entries at `new_epoch` or later are kept untouched,
    /// so a straggler invoking this with a superseded epoch can never
    /// evict entries of a newer one.
    pub fn carry_forward(&self, new_epoch: u64, mut survives: impl FnMut(&ResultKey) -> bool) {
        let _ = self.sweep(new_epoch, |k| {
            if survives(k) {
                SweepDecision::Carry
            } else {
                SweepDecision::Drop
            }
        });
    }

    /// Three-way epoch-bump garbage collection — the generalization of
    /// [`ResultCache::carry_forward`] behind delta-driven maintenance.
    /// Entries of epoch `new_epoch - 1` are judged one at a time:
    ///
    /// * [`SweepDecision::Carry`] re-keys the entry to `new_epoch`;
    /// * [`SweepDecision::Repair`] removes the entry (uncharging its
    ///   bytes, **not** counting an eviction) and returns its spec so
    ///   the caller can re-derive the rows from repaired memos and
    ///   re-insert them — the re-insert charges the fresh rows'
    ///   honest byte footprint;
    /// * [`SweepDecision::Drop`] removes the entry and counts the
    ///   eviction.
    ///
    /// Entries more than one epoch behind are always dropped; entries
    /// at `new_epoch` or later are kept untouched, so a straggler
    /// invoking this with a superseded epoch can never evict entries of
    /// a newer one.
    pub fn sweep(
        &self,
        new_epoch: u64,
        mut judge: impl FnMut(&ResultKey) -> SweepDecision,
    ) -> Vec<QuerySpec> {
        // Phase 1 (read lock): list the stale keys and judge survival.
        // The judge walks plan read-sets against the new snapshot's
        // dirty shards — real work that must not run under the write
        // lock, or every concurrent query would stall behind the
        // publish.
        let judged: Vec<(ResultKey, SweepDecision)> = {
            let inner = self.inner.read().expect("result cache lock poisoned");
            inner
                .map
                .keys()
                .filter(|k| k.epoch < new_epoch)
                .map(|k| {
                    let decision = if k.epoch + 1 == new_epoch {
                        judge(k)
                    } else {
                        SweepDecision::Drop
                    };
                    (k.clone(), decision)
                })
                .collect()
        };
        if judged.is_empty() {
            return Vec::new();
        }
        // Phase 2 (write lock): apply the decisions — removes and
        // re-keys only, no judge calls.  A key evicted between the
        // phases is skipped; a stale key inserted between them is
        // caught by the next sweep (the same window exists for inserts
        // racing the old single-lock version).
        let mut inner = self.inner.write().expect("result cache lock poisoned");
        let mut evicted = 0u64;
        let mut repair = Vec::new();
        for (key, decision) in judged {
            let Some(entry) = inner.map.remove(&key) else {
                continue;
            };
            match decision {
                SweepDecision::Carry => {
                    let displaced = inner.map.insert(
                        ResultKey {
                            epoch: new_epoch,
                            spec: key.spec,
                        },
                        entry,
                    );
                    if let Some(d) = displaced {
                        // A concurrent query already recomputed this
                        // spec on the new epoch; uncharge the copy we
                        // replaced.
                        inner.bytes = inner.bytes.saturating_sub(d.bytes);
                        evicted += 1;
                    }
                }
                SweepDecision::Repair => {
                    inner.bytes = inner.bytes.saturating_sub(entry.bytes);
                    repair.push(key.spec);
                }
                SweepDecision::Drop => {
                    inner.bytes = inner.bytes.saturating_sub(entry.bytes);
                    evicted += 1;
                }
            }
        }
        drop(inner);
        self.evictions.add(evicted);
        repair
    }

    /// Drop every entry from epochs before `current`, with no survivors
    /// — the blunt invalidation used when no dirty-predicate
    /// information is available.
    pub fn invalidate_stale(&self, current: u64) {
        self.carry_forward(current, |_| false);
    }

    /// Record `n` batch queries answered by sharing an identical spec's
    /// evaluation instead of running their own.
    pub fn note_deduped(&self, n: u64) {
        self.deduped.add(n);
    }

    /// Number of memoized answers.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .expect("result cache lock poisoned")
            .map
            .len()
    }

    /// Whether nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction/dedup counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.value(),
            misses: self.misses.value(),
            evictions: self.evictions.value(),
            deduped: self.deduped.value(),
        }
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rq_common::Pred;

    fn key(epoch: u64, c: u32) -> ResultKey {
        ResultKey {
            epoch,
            spec: QuerySpec::bound_free(Pred(0), Const(c)),
        }
    }

    fn value(cs: &[u32]) -> CachedResult {
        CachedResult {
            rows: Arc::new(cs.iter().map(|&c| vec![Const(c)]).collect()),
            converged: true,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let cache = ResultCache::new();
        assert!(cache.get(&key(0, 1)).is_none());
        cache.insert(key(0, 1), value(&[7, 9]));
        let hit = cache.get(&key(0, 1)).unwrap();
        assert_eq!(*hit.rows, vec![vec![Const(7)], vec![Const(9)]]);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                ..CacheStats::default()
            }
        );
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn epoch_bump_invalidates_old_entries() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.insert(key(0, 2), value(&[2]));
        cache.insert(key(1, 1), value(&[1, 3]));
        cache.invalidate_stale(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, 1)).is_none());
        assert!(cache.get(&key(1, 1)).is_some());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn carry_forward_rekeys_survivors() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.insert(key(0, 2), value(&[2]));
        // Entry for constant 1 survives the bump; entry 2 does not.
        cache.carry_forward(1, |k| k.spec.bound_values() == vec![Const(1)]);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, 1)).is_none(), "old key is gone");
        assert_eq!(*cache.get(&key(1, 1)).unwrap().rows, vec![vec![Const(1)]]);
        assert!(cache.get(&key(1, 2)).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn carry_forward_skips_entries_more_than_one_epoch_behind() {
        // A survivor predicate only vouches for the *immediately*
        // preceding epoch; anything older was already judged stale.
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.carry_forward(2, |_| true);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0, "evicted bytes are uncharged");
    }

    #[test]
    fn stale_invalidation_call_cannot_evict_newer_epochs() {
        // Two racing ingests can run their GC out of order; the late
        // call with the older epoch must be a no-op for newer entries.
        let cache = ResultCache::new();
        cache.insert(key(2, 1), value(&[5]));
        cache.invalidate_stale(1);
        assert!(cache.get(&key(2, 1)).is_some());
    }

    #[test]
    fn distinct_specs_do_not_collide() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        let fb = ResultKey {
            epoch: 0,
            spec: QuerySpec::free_bound(Pred(0), Const(1)),
        };
        let ap = ResultKey {
            epoch: 0,
            spec: QuerySpec::all_free(Pred(0), 2),
        };
        let diag = ResultKey {
            epoch: 0,
            spec: QuerySpec::diagonal(Pred(0)),
        };
        assert!(cache.get(&fb).is_none());
        assert!(cache.get(&ap).is_none());
        cache.insert(fb.clone(), value(&[4]));
        cache.insert(ap.clone(), value(&[8]));
        assert!(cache.get(&diag).is_none(), "diagonal ≠ all-pairs");
        assert_eq!(*cache.get(&fb).unwrap().rows, vec![vec![Const(4)]]);
        assert_eq!(*cache.get(&ap).unwrap().rows, vec![vec![Const(8)]]);
        assert_eq!(*cache.get(&key(0, 1)).unwrap().rows, vec![vec![Const(1)]]);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ResultCache::with_capacity(Some(8));
        for i in 0..8 {
            cache.insert(key(0, i), value(&[i]));
        }
        assert_eq!(cache.len(), 8);
        // Touch the first entries so they are the most recently used.
        for i in 0..4 {
            assert!(cache.get(&key(0, i)).is_some());
        }
        cache.insert(key(0, 100), value(&[100]));
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "overflow must evict");
        assert!(cache.len() <= 8);
        // The recently touched entries survived the eviction pass.
        for i in 0..4 {
            assert!(cache.get(&key(0, i)).is_some(), "entry {i} was hot");
        }
        assert!(cache.get(&key(0, 100)).is_some(), "new entry is present");
    }

    #[test]
    fn byte_budget_evicts_on_size_not_count() {
        // Entries are ~100 bytes each; a 1 KiB budget holds ~10, far
        // below the (absent) entry cap.
        let cache = ResultCache::with_limits(None, Some(1024));
        for i in 0..64 {
            cache.insert(key(0, i), value(&[i, i + 1, i + 2]));
        }
        assert!(cache.bytes() <= 1024, "bytes {} over budget", cache.bytes());
        assert!(cache.len() < 64);
        assert!(cache.stats().evictions > 0);
        // Large answers are charged more: one big entry evicts several
        // small ones to make room.
        let before = cache.len();
        let big: Vec<u32> = (0..15).collect();
        cache.insert(key(0, 999), value(&big));
        assert!(cache.bytes() <= 1024);
        assert!(cache.get(&key(0, 999)).is_some(), "new entry admitted");
        assert!(cache.len() < before + 1, "smaller entries made room");
        // An entry bigger than the whole budget is simply not cacheable.
        let huge: Vec<u32> = (0..500).collect();
        cache.insert(key(0, 1000), value(&huge));
        assert!(cache.bytes() <= 1024);
        assert!(cache.get(&key(0, 1000)).is_none());
    }

    #[test]
    fn reinserting_a_key_recharges_bytes() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&(0..50).collect::<Vec<_>>()));
        let big = cache.bytes();
        cache.insert(key(0, 1), value(&[1]));
        assert!(cache.bytes() < big, "shrunk entry must uncharge");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let cache = ResultCache::with_capacity(Some(0));
        cache.insert(key(0, 1), value(&[1]));
        assert!(cache.is_empty());
        assert!(cache.get(&key(0, 1)).is_none());
    }

    #[test]
    fn carry_forward_displacing_a_fresh_entry_uncharges_its_bytes() {
        // A racing query can insert (epoch 1, S) before the ingest's
        // carry-forward re-keys the surviving (epoch 0, S) entry onto
        // the same key; the displaced copy's bytes must be uncharged.
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.insert(key(1, 1), value(&[1]));
        let one_entry = approx_bytes(&key(0, 1), &value(&[1]).rows);
        assert_eq!(cache.bytes(), 2 * one_entry);
        cache.carry_forward(1, |_| true);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), one_entry, "displaced bytes must not leak");
    }

    #[test]
    fn carry_forward_judges_each_candidate_once_outside_the_write_lock() {
        // The survival predicate is expensive (read-set walks): it
        // must run once per immediately-preceding-epoch key, never for
        // current-epoch keys, and the cache must stay readable from
        // the predicate itself (phase 1 holds only the read lock).
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.insert(key(0, 2), value(&[2]));
        cache.insert(key(1, 3), value(&[3]));
        let mut asked = Vec::new();
        cache.carry_forward(1, |k| {
            asked.push(k.spec.bound_values()[0]);
            true
        });
        asked.sort_unstable();
        assert_eq!(asked, vec![Const(1), Const(2)]);
        assert_eq!(cache.len(), 3, "both epoch-0 entries re-keyed");
        assert!(cache.get(&key(1, 1)).is_some());
        assert!(cache.get(&key(1, 2)).is_some());
    }

    #[test]
    fn sweep_repair_uncharges_without_counting_an_eviction() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1])); // → Carry
        cache.insert(key(0, 2), value(&[2])); // → Repair
        cache.insert(key(0, 3), value(&[3])); // → Drop
        let bytes_before = cache.bytes();
        let to_repair = cache.sweep(1, |k| match k.spec.bound_values()[0] {
            Const(1) => SweepDecision::Carry,
            Const(2) => SweepDecision::Repair,
            _ => SweepDecision::Drop,
        });
        // The repaired spec comes back for re-derivation; only the
        // dropped entry counts as an eviction.
        assert_eq!(to_repair, vec![key(0, 2).spec]);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 1, "carried entry re-keyed, others removed");
        assert!(cache.get(&key(1, 1)).is_some());
        assert!(cache.get(&key(1, 2)).is_none(), "repair removed the rows");
        // Both removed entries' bytes were uncharged.
        let one_entry = approx_bytes(&key(0, 1), &value(&[1]).rows);
        assert_eq!(cache.bytes(), bytes_before - 2 * one_entry);
        // The caller re-inserts the re-derived rows with a fresh,
        // honest byte charge (possibly different from the old one).
        cache.insert(key(1, 2), value(&[2, 9]));
        assert!(cache.bytes() > bytes_before - 2 * one_entry);
        assert!(cache.get(&key(1, 2)).is_some());
    }

    #[test]
    fn sweep_always_drops_entries_more_than_one_epoch_behind() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        let repair = cache.sweep(2, |_| SweepDecision::Repair);
        assert!(repair.is_empty(), "too-old entries are dropped, not judged");
        assert!(cache.is_empty());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn deduped_counter_accumulates() {
        let cache = ResultCache::new();
        cache.note_deduped(3);
        cache.note_deduped(2);
        assert_eq!(cache.stats().deduped, 5);
    }
}
