//! The memoized result cache: `(epoch, predicate, query kind) → sorted
//! answers`, in the salsa mold, bounded and epoch-carrying.
//!
//! The demand-driven traversal makes per-query results small (only the
//! reachable fragment of the interpretation graph contributes), which
//! is what makes memoizing them worthwhile.  Keys embed the snapshot
//! epoch, so a published revision implicitly invalidates every older
//! entry — a stale answer can never be returned because its key can no
//! longer be constructed.
//!
//! Two refinements over a plain epoch-keyed map:
//!
//! * **Per-predicate survival.**  [`ResultCache::carry_forward`] runs on
//!   every epoch bump with a predicate-level "is this entry still
//!   valid?" predicate supplied by the service (its plan read-set vs.
//!   the snapshot's dirty shards).  Surviving entries are re-keyed to
//!   the new epoch instead of being dropped, so an ingest into `e`
//!   leaves every memoized answer over disjoint predicates hot.
//! * **A bounded footprint.**  The cache optionally caps its entry
//!   count; overflow evicts least-recently-used entries (approximate
//!   LRU via a monotone use tick) and counts them in
//!   [`CacheStats::evictions`].

use crate::plan::{Adornment, CacheStats};
use rq_common::{Const, FxHashMap, Pred};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Which shape of query a cache entry memoizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// A point query `p(a, Y)` / `p(X, a)`.
    Point {
        /// Which argument was bound.
        adornment: Adornment,
        /// The bound constant.
        constant: Const,
    },
    /// The all-pairs query `p(X, Y)`.
    AllPairs,
    /// The diagonal query `p(X, X)`.
    Diagonal,
}

/// Cache key: one memoized query on one database version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Snapshot epoch the answer was computed on.
    pub epoch: u64,
    /// The queried predicate.
    pub pred: Pred,
    /// The query shape (and its bindings, for point queries).
    pub kind: QueryKind,
}

/// A memoized answer set.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Sorted, deduplicated answer constants (`Arc`-shared with every
    /// consumer).  Empty for all-pairs entries, whose payload is
    /// `pairs`.
    pub answers: Arc<Vec<Const>>,
    /// Sorted, deduplicated `(x, y)` rows for all-pairs entries; empty
    /// for point and diagonal entries.
    pub pairs: Arc<Vec<(Const, Const)>>,
    /// Whether the evaluation converged (`false` = truncated by an
    /// explicit iteration bound, answers sound but possibly partial).
    pub converged: bool,
}

struct Entry {
    result: CachedResult,
    last_used: AtomicU64,
}

/// Thread-safe memoization of query results, optionally bounded.
pub struct ResultCache {
    inner: RwLock<FxHashMap<ResultKey, Entry>>,
    /// Entry cap; `None` = unbounded.
    capacity: Option<usize>,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Empty, unbounded cache.
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// Empty cache holding at most `capacity` entries (`None` =
    /// unbounded).  A zero capacity disables memoization entirely.
    pub fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            inner: RwLock::new(FxHashMap::default()),
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured entry cap.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Look up a memoized answer, refreshing its recency.
    pub fn get(&self, key: &ResultKey) -> Option<CachedResult> {
        let map = self.inner.read().expect("result cache lock poisoned");
        let hit = map.get(key).map(|e| {
            e.last_used
                .store(self.tick.fetch_add(1, Ordering::Relaxed), Ordering::Relaxed);
            e.result.clone()
        });
        drop(map);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Memoize an answer.  Last write wins; concurrent writers compute
    /// identical values for identical keys (epochs are immutable).
    /// Overflow beyond the capacity evicts least-recently-used entries.
    pub fn insert(&self, key: ResultKey, value: CachedResult) {
        if self.capacity == Some(0) {
            return;
        }
        let mut map = self.inner.write().expect("result cache lock poisoned");
        map.insert(
            key,
            Entry {
                result: value,
                last_used: AtomicU64::new(self.tick.fetch_add(1, Ordering::Relaxed)),
            },
        );
        if let Some(cap) = self.capacity {
            if map.len() > cap {
                // Evict to 7/8 of the cap so overflow work is amortized
                // instead of running the selection on every insert at
                // cap.  An O(n) partition (not a sort) keeps the write
                // lock's critical section short — readers are stalled
                // for the duration.
                let target = cap - cap / 8;
                let n_evict = map.len().saturating_sub(target);
                let mut ticks: Vec<(u64, ResultKey)> = map
                    .iter()
                    .map(|(k, e)| (e.last_used.load(Ordering::Relaxed), *k))
                    .collect();
                if n_evict > 0 && n_evict < ticks.len() {
                    ticks.select_nth_unstable_by_key(n_evict - 1, |&(t, _)| t);
                }
                let mut evicted = 0u64;
                for &(_, k) in ticks.iter().take(n_evict) {
                    map.remove(&k);
                    evicted += 1;
                }
                self.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
    }

    /// Epoch-bump garbage collection with per-predicate survival.
    /// Entries of epoch `new_epoch - 1` for which `survives` returns
    /// `true` are **re-keyed** to `new_epoch` (their answers are still
    /// valid: the publish touched none of the predicates their plan
    /// reads).  All other entries older than `new_epoch` are dropped
    /// and counted as evictions.  Entries at `new_epoch` or later are
    /// kept untouched, so a straggler invoking this with a superseded
    /// epoch can never evict entries of a newer one.
    pub fn carry_forward(&self, new_epoch: u64, mut survives: impl FnMut(&ResultKey) -> bool) {
        let mut map = self.inner.write().expect("result cache lock poisoned");
        let old: Vec<ResultKey> = map
            .keys()
            .filter(|k| k.epoch < new_epoch)
            .copied()
            .collect();
        let mut evicted = 0u64;
        for key in old {
            let entry = map.remove(&key).expect("key just listed");
            if key.epoch + 1 == new_epoch && survives(&key) {
                map.insert(
                    ResultKey {
                        epoch: new_epoch,
                        ..key
                    },
                    entry,
                );
            } else {
                evicted += 1;
            }
        }
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drop every entry from epochs before `current`, with no survivors
    /// — the blunt invalidation used when no dirty-predicate
    /// information is available.
    pub fn invalidate_stale(&self, current: u64) {
        self.carry_forward(current, |_| false);
    }

    /// Number of memoized answers.
    pub fn len(&self) -> usize {
        self.inner.read().expect("result cache lock poisoned").len()
    }

    /// Whether nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, c: u32) -> ResultKey {
        ResultKey {
            epoch,
            pred: Pred(0),
            kind: QueryKind::Point {
                adornment: Adornment::BoundFree,
                constant: Const(c),
            },
        }
    }

    fn value(cs: &[u32]) -> CachedResult {
        CachedResult {
            answers: Arc::new(cs.iter().map(|&c| Const(c)).collect()),
            pairs: Arc::new(Vec::new()),
            converged: true,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let cache = ResultCache::new();
        assert!(cache.get(&key(0, 1)).is_none());
        cache.insert(key(0, 1), value(&[7, 9]));
        let hit = cache.get(&key(0, 1)).unwrap();
        assert_eq!(*hit.answers, vec![Const(7), Const(9)]);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn epoch_bump_invalidates_old_entries() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.insert(key(0, 2), value(&[2]));
        cache.insert(key(1, 1), value(&[1, 3]));
        cache.invalidate_stale(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, 1)).is_none());
        assert!(cache.get(&key(1, 1)).is_some());
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn carry_forward_rekeys_survivors() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.insert(key(0, 2), value(&[2]));
        // Entry for constant 1 survives the bump; entry 2 does not.
        cache.carry_forward(
            1,
            |k| matches!(k.kind, QueryKind::Point { constant, .. } if constant == Const(1)),
        );
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, 1)).is_none(), "old key is gone");
        assert_eq!(*cache.get(&key(1, 1)).unwrap().answers, vec![Const(1)]);
        assert!(cache.get(&key(1, 2)).is_none());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn carry_forward_skips_entries_more_than_one_epoch_behind() {
        // A survivor predicate only vouches for the *immediately*
        // preceding epoch; anything older was already judged stale.
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.carry_forward(2, |_| true);
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_invalidation_call_cannot_evict_newer_epochs() {
        // Two racing ingests can run their GC out of order; the late
        // call with the older epoch must be a no-op for newer entries.
        let cache = ResultCache::new();
        cache.insert(key(2, 1), value(&[5]));
        cache.invalidate_stale(1);
        assert!(cache.get(&key(2, 1)).is_some());
    }

    #[test]
    fn distinct_kinds_do_not_collide() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        let fb = ResultKey {
            kind: QueryKind::Point {
                adornment: Adornment::FreeBound,
                constant: Const(1),
            },
            ..key(0, 1)
        };
        let ap = ResultKey {
            kind: QueryKind::AllPairs,
            ..key(0, 1)
        };
        assert!(cache.get(&fb).is_none());
        assert!(cache.get(&ap).is_none());
        cache.insert(fb, value(&[4]));
        cache.insert(ap, value(&[8]));
        assert_eq!(*cache.get(&fb).unwrap().answers, vec![Const(4)]);
        assert_eq!(*cache.get(&ap).unwrap().answers, vec![Const(8)]);
        assert_eq!(*cache.get(&key(0, 1)).unwrap().answers, vec![Const(1)]);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = ResultCache::with_capacity(Some(8));
        for i in 0..8 {
            cache.insert(key(0, i), value(&[i]));
        }
        assert_eq!(cache.len(), 8);
        // Touch the first entries so they are the most recently used.
        for i in 0..4 {
            assert!(cache.get(&key(0, i)).is_some());
        }
        cache.insert(key(0, 100), value(&[100]));
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "overflow must evict");
        assert!(cache.len() <= 8);
        // The recently touched entries survived the eviction pass.
        for i in 0..4 {
            assert!(cache.get(&key(0, i)).is_some(), "entry {i} was hot");
        }
        assert!(cache.get(&key(0, 100)).is_some(), "new entry is present");
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let cache = ResultCache::with_capacity(Some(0));
        cache.insert(key(0, 1), value(&[1]));
        assert!(cache.is_empty());
        assert!(cache.get(&key(0, 1)).is_none());
    }
}
