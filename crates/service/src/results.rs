//! The memoized result cache: `(epoch, predicate, adornment, constant)
//! → sorted answers`, in the salsa mold.
//!
//! The demand-driven traversal makes per-query results small (only the
//! reachable fragment of the interpretation graph contributes), which
//! is what makes memoizing them worthwhile.  Keys embed the snapshot
//! epoch, so a published revision implicitly invalidates every older
//! entry — a stale answer can never be returned because its key can no
//! longer be constructed.  [`ResultCache::invalidate_stale`] is the
//! matching garbage collector, run on every epoch bump.

use crate::plan::{Adornment, CacheStats};
use rq_common::{Const, FxHashMap, Pred};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Cache key: one memoized point query on one database version.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Snapshot epoch the answer was computed on.
    pub epoch: u64,
    /// The queried predicate.
    pub pred: Pred,
    /// Which argument was bound.
    pub adornment: Adornment,
    /// The bound constant.
    pub constant: Const,
}

/// A memoized answer set.
#[derive(Clone, Debug)]
pub struct CachedResult {
    /// Sorted, deduplicated answers (`Arc`-shared with every consumer).
    pub answers: Arc<Vec<Const>>,
    /// Whether the evaluation converged (`false` = truncated by an
    /// explicit iteration bound, answers sound but possibly partial).
    pub converged: bool,
}

/// Thread-safe memoization of query results.
pub struct ResultCache {
    inner: RwLock<FxHashMap<ResultKey, CachedResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(FxHashMap::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a memoized answer.
    pub fn get(&self, key: &ResultKey) -> Option<CachedResult> {
        let hit = self
            .inner
            .read()
            .expect("result cache lock poisoned")
            .get(key)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Memoize an answer.  Last write wins; concurrent writers compute
    /// identical values for identical keys (epochs are immutable).
    pub fn insert(&self, key: ResultKey, value: CachedResult) {
        self.inner
            .write()
            .expect("result cache lock poisoned")
            .insert(key, value);
    }

    /// Drop every entry from epochs before `current` — the garbage
    /// half of epoch-key invalidation.  Keeping `>= current` (rather
    /// than `== current`) makes concurrent callers safe: a straggler
    /// invoking this with a superseded epoch can never evict entries
    /// of a newer one.
    pub fn invalidate_stale(&self, current: u64) {
        self.inner
            .write()
            .expect("result cache lock poisoned")
            .retain(|k, _| k.epoch >= current);
    }

    /// Number of memoized answers.
    pub fn len(&self) -> usize {
        self.inner.read().expect("result cache lock poisoned").len()
    }

    /// Whether nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

impl Default for ResultCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(epoch: u64, c: u32) -> ResultKey {
        ResultKey {
            epoch,
            pred: Pred(0),
            adornment: Adornment::BoundFree,
            constant: Const(c),
        }
    }

    fn value(cs: &[u32]) -> CachedResult {
        CachedResult {
            answers: Arc::new(cs.iter().map(|&c| Const(c)).collect()),
            converged: true,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let cache = ResultCache::new();
        assert!(cache.get(&key(0, 1)).is_none());
        cache.insert(key(0, 1), value(&[7, 9]));
        let hit = cache.get(&key(0, 1)).unwrap();
        assert_eq!(*hit.answers, vec![Const(7), Const(9)]);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn epoch_bump_invalidates_old_entries() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        cache.insert(key(0, 2), value(&[2]));
        cache.insert(key(1, 1), value(&[1, 3]));
        cache.invalidate_stale(1);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(0, 1)).is_none());
        assert!(cache.get(&key(1, 1)).is_some());
    }

    #[test]
    fn stale_invalidation_call_cannot_evict_newer_epochs() {
        // Two racing ingests can run their GC out of order; the late
        // call with the older epoch must be a no-op for newer entries.
        let cache = ResultCache::new();
        cache.insert(key(2, 1), value(&[5]));
        cache.invalidate_stale(1);
        assert!(cache.get(&key(2, 1)).is_some());
    }

    #[test]
    fn distinct_adornments_do_not_collide() {
        let cache = ResultCache::new();
        cache.insert(key(0, 1), value(&[1]));
        let fb = ResultKey {
            adornment: Adornment::FreeBound,
            ..key(0, 1)
        };
        assert!(cache.get(&fb).is_none());
        cache.insert(fb, value(&[4]));
        assert_eq!(*cache.get(&fb).unwrap().answers, vec![Const(4)]);
        assert_eq!(*cache.get(&key(0, 1)).unwrap().answers, vec![Const(1)]);
    }
}
