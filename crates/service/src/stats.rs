//! One shared rendering path for service counters.
//!
//! Every front end reports the same counter set from the same struct:
//! the REPL's `:stats` prints [`StatsReport`]'s [`std::fmt::Display`]
//! text, the HTTP API's `GET /stats` serializes
//! [`StatsReport::to_json`], and `GET /metrics` renders
//! [`StatsReport::export_prometheus`] — the same counters in
//! Prometheus text exposition format.  Adding a counter here adds it
//! to all three at once — the surfaces can never drift apart.

use crate::context::EpochContextStats;
use crate::durable::DurabilityStats;
use crate::plan::CacheStats;
use rq_common::{Json, Registry};

/// A point-in-time snapshot of every counter the service exposes.
///
/// Produced by [`crate::QueryService::stats_report`]; the fields are a
/// consistent-enough read for monitoring (each cache's counters are
/// read atomically, but no lock spans the caches).
#[derive(Clone, Debug, PartialEq)]
pub struct StatsReport {
    /// The current snapshot epoch.
    pub epoch: u64,
    /// Plan-cache hit/miss counters.
    pub plans: CacheStats,
    /// Distinct §3 binary-chain programs compiled.
    pub chain_programs: usize,
    /// Distinct §4 `(pred, adornment)` plans compiled.
    pub nary_plans: usize,
    /// Result-cache hit/miss/evict/dedup counters.
    pub results: CacheStats,
    /// Memoized result entries currently held.
    pub result_entries: usize,
    /// Approximate bytes charged to memoized results.
    pub result_bytes: u64,
    /// The current epoch context's counters (machine memo, §4 probe
    /// memo, SCC routing, cross-epoch carries).
    pub context: EpochContextStats,
    /// Compact stores (columnar + CSR) built across every publish so
    /// far, read live from the registry counter.
    pub csr_builds: u64,
    /// Total microseconds publishes spent building compact stores.
    pub csr_build_micros: u64,
    /// Index probes served by a compact store, service lifetime.
    pub csr_probes: u64,
    /// Index probes that walked (or built) a hash-trie index, service
    /// lifetime.
    pub trie_probes: u64,
    /// Dirty plans whose warm memos were repaired in place at publish,
    /// service lifetime.
    pub delta_repairs: u64,
    /// Memo and probe rows added by in-place delta repair, service
    /// lifetime.
    pub delta_repaired_rows: u64,
    /// Dirty plans that fell back to cold re-derivation at publish,
    /// service lifetime.
    pub delta_fallback_cold: u64,
    /// Write-ahead-log/checkpoint totals and the boot-time recovery
    /// outcome; `None` when the service is purely in-memory.
    pub durability: Option<DurabilityStats>,
}

impl StatsReport {
    /// Serialize for the HTTP API's `GET /stats` — the same counters,
    /// same grouping, as the `Display` text.
    pub fn to_json(&self) -> Json {
        let int = |n: u64| Json::Int(n as i64);
        let memo = |hits: u64, misses: u64, entries: usize| {
            Json::object([
                ("hits", int(hits)),
                ("misses", int(misses)),
                ("entries", int(entries as u64)),
            ])
        };
        Json::object([
            ("epoch", int(self.epoch)),
            (
                "plan_cache",
                Json::object([
                    ("hits", int(self.plans.hits)),
                    ("misses", int(self.plans.misses)),
                    ("chain_programs", int(self.chain_programs as u64)),
                    ("nary_plans", int(self.nary_plans as u64)),
                ]),
            ),
            (
                "result_cache",
                Json::object([
                    ("hits", int(self.results.hits)),
                    ("misses", int(self.results.misses)),
                    ("evictions", int(self.results.evictions)),
                    ("deduped", int(self.results.deduped)),
                    ("entries", int(self.result_entries as u64)),
                    ("bytes", int(self.result_bytes)),
                ]),
            ),
            (
                "epoch_context",
                Json::object([
                    (
                        "probe_memo",
                        memo(
                            self.context.probe_hits,
                            self.context.probe_misses,
                            self.context.probe_entries,
                        ),
                    ),
                    (
                        "machine_memo",
                        memo(
                            self.context.eval_hits,
                            self.context.eval_misses,
                            self.context.eval_entries,
                        ),
                    ),
                    ("scc_served", int(self.context.scc_served)),
                    (
                        "carried",
                        Json::object([
                            ("machine_entries", int(self.context.eval_carried)),
                            ("probe_spaces", int(self.context.probe_spaces_carried)),
                        ]),
                    ),
                ]),
            ),
            (
                "storage",
                Json::object([
                    ("csr_builds", int(self.csr_builds)),
                    ("csr_build_micros", int(self.csr_build_micros)),
                    ("csr_probes", int(self.csr_probes)),
                    ("trie_probes", int(self.trie_probes)),
                ]),
            ),
            (
                "delta_repair",
                Json::object([
                    ("repairs", int(self.delta_repairs)),
                    ("repaired_rows", int(self.delta_repaired_rows)),
                    ("fallback_cold", int(self.delta_fallback_cold)),
                ]),
            ),
            (
                "durability",
                match &self.durability {
                    None => Json::Null,
                    Some(d) => Json::object([
                        (
                            "wal",
                            Json::object([
                                ("records", int(d.wal_records)),
                                ("bytes", int(d.wal_bytes)),
                                ("checkpoints", int(d.checkpoints)),
                                ("checkpoint_failures", int(d.checkpoint_failures)),
                            ]),
                        ),
                        (
                            "recovery",
                            Json::object([
                                ("epoch", int(d.recovery.recovered_epoch)),
                                (
                                    "checkpoint_epoch",
                                    d.recovery.checkpoint_epoch.map_or(Json::Null, int),
                                ),
                                ("replayed_records", int(d.recovery.replayed_records)),
                                ("skipped_duplicates", int(d.recovery.skipped_duplicates)),
                                ("dropped_records", int(d.recovery.dropped_records)),
                                ("dropped_bytes", int(d.recovery.dropped_bytes)),
                                (
                                    "checkpoint_dropped",
                                    Json::Bool(d.recovery.checkpoint_dropped),
                                ),
                            ]),
                        ),
                    ]),
                },
            ),
        ])
    }

    /// The third renderer: refresh the report-derived gauges on
    /// `registry` and render the whole registry in Prometheus text
    /// exposition format.
    ///
    /// The cache hit/miss counters are deliberately **not** copied
    /// here — the service adopted the caches' own
    /// [`rq_common::obs::Counter`] cells into the registry at
    /// construction (`rq_plan_cache_*_total`,
    /// `rq_result_cache_*_total`), so those families export live
    /// values with no transcription step.  Only point-in-time values
    /// (sizes, epoch, per-epoch memo counters that reset on publish)
    /// travel through this report as gauges.
    pub fn export_prometheus(&self, registry: &Registry) -> String {
        let gauge = |name, help, v: i64| registry.gauge(name, help).set(v);
        let clamp = |n: u64| n.min(i64::MAX as u64) as i64;
        gauge("rq_epoch", "Current snapshot epoch.", clamp(self.epoch));
        gauge(
            "rq_plan_cache_chain_programs",
            "Distinct §3 binary-chain programs compiled.",
            clamp(self.chain_programs as u64),
        );
        gauge(
            "rq_plan_cache_nary_plans",
            "Distinct §4 (pred, adornment) plans compiled.",
            clamp(self.nary_plans as u64),
        );
        gauge(
            "rq_result_cache_entries",
            "Memoized result entries currently held.",
            clamp(self.result_entries as u64),
        );
        gauge(
            "rq_result_cache_bytes",
            "Approximate bytes charged to memoized results.",
            clamp(self.result_bytes),
        );
        gauge(
            "rq_epoch_context_probe_hits",
            "This epoch's §4 probe-memo hits.",
            clamp(self.context.probe_hits),
        );
        gauge(
            "rq_epoch_context_probe_misses",
            "This epoch's §4 probe-memo misses.",
            clamp(self.context.probe_misses),
        );
        gauge(
            "rq_epoch_context_probe_entries",
            "This epoch's memoized §4 probe results.",
            clamp(self.context.probe_entries as u64),
        );
        gauge(
            "rq_epoch_context_machine_hits",
            "This epoch's machine-memo hits.",
            clamp(self.context.eval_hits),
        );
        gauge(
            "rq_epoch_context_machine_misses",
            "This epoch's machine-memo misses.",
            clamp(self.context.eval_misses),
        );
        gauge(
            "rq_epoch_context_machine_entries",
            "This epoch's memoized machine traversals.",
            clamp(self.context.eval_entries as u64),
        );
        gauge(
            "rq_epoch_context_scc_served",
            "This epoch's all-free queries served through the shared-SCC path.",
            clamp(self.context.scc_served),
        );
        gauge(
            "rq_epoch_context_machine_entries_carried",
            "Machine-memo entries inherited from the previous epoch.",
            clamp(self.context.eval_carried),
        );
        gauge(
            "rq_epoch_context_probe_spaces_carried",
            "Probe spaces inherited from the previous epoch.",
            clamp(self.context.probe_spaces_carried),
        );
        if let Some(d) = &self.durability {
            // The `rq_wal_*_total` counters are live registry cells;
            // only the boot-time recovery outcome travels as gauges.
            gauge(
                "rq_recovery_epoch",
                "Epoch boot-time recovery restored the service to.",
                clamp(d.recovery.recovered_epoch),
            );
            gauge(
                "rq_recovery_checkpoint_epoch",
                "Checkpoint epoch recovery started from (-1 = no checkpoint).",
                d.recovery.checkpoint_epoch.map_or(-1, clamp),
            );
            gauge(
                "rq_recovery_replayed_records",
                "Write-ahead-log records replayed at boot.",
                clamp(d.recovery.replayed_records),
            );
            gauge(
                "rq_recovery_skipped_duplicates",
                "Verified log records skipped as already checkpointed.",
                clamp(d.recovery.skipped_duplicates),
            );
            gauge(
                "rq_recovery_dropped_records",
                "Torn or corrupt trailing log records dropped at boot.",
                clamp(d.recovery.dropped_records),
            );
            gauge(
                "rq_recovery_dropped_bytes",
                "Unverifiable trailing log bytes dropped at boot.",
                clamp(d.recovery.dropped_bytes),
            );
            gauge(
                "rq_recovery_checkpoint_dropped",
                "Whether a checkpoint blob existed but failed verification.",
                i64::from(d.recovery.checkpoint_dropped),
            );
        }
        registry.render()
    }
}

impl std::fmt::Display for StatsReport {
    /// The `:stats` text of the serving REPL — one line per layer.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "epoch {}", self.epoch)?;
        writeln!(
            f,
            "plan cache:   {} hits / {} misses ({} chain program(s), {} §4 plan(s))",
            self.plans.hits, self.plans.misses, self.chain_programs, self.nary_plans,
        )?;
        writeln!(
            f,
            "result cache: {} hits / {} misses / {} evictions / {} deduped ({} entr(ies), ~{} bytes)",
            self.results.hits,
            self.results.misses,
            self.results.evictions,
            self.results.deduped,
            self.result_entries,
            self.result_bytes,
        )?;
        writeln!(
            f,
            "epoch context: probe memo {} hits / {} misses ({} entr(ies)), machine memo {} hits / {} misses ({} entr(ies)), {} scc-served, carried {} machine entr(ies) / {} probe space(s)",
            self.context.probe_hits,
            self.context.probe_misses,
            self.context.probe_entries,
            self.context.eval_hits,
            self.context.eval_misses,
            self.context.eval_entries,
            self.context.scc_served,
            self.context.eval_carried,
            self.context.probe_spaces_carried,
        )?;
        writeln!(
            f,
            "storage:      {} csr build(s) ({} µs), probes {} csr / {} trie",
            self.csr_builds, self.csr_build_micros, self.csr_probes, self.trie_probes,
        )?;
        write!(
            f,
            "delta repair: {} repair(s) / {} row(s) patched / {} cold fallback(s)",
            self.delta_repairs, self.delta_repaired_rows, self.delta_fallback_cold,
        )?;
        if let Some(d) = &self.durability {
            write!(
                f,
                "\ndurability:   {} wal record(s) ({} bytes), {} checkpoint(s) / {} failure(s); recovered epoch {} ({} replayed, {} skipped, {} dropped)",
                d.wal_records,
                d.wal_bytes,
                d.checkpoints,
                d.checkpoint_failures,
                d.recovery.recovered_epoch,
                d.recovery.replayed_records,
                d.recovery.skipped_duplicates,
                d.recovery.dropped_records,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StatsReport {
        StatsReport {
            epoch: 3,
            plans: CacheStats {
                hits: 5,
                misses: 2,
                ..CacheStats::default()
            },
            chain_programs: 1,
            nary_plans: 2,
            results: CacheStats {
                hits: 10,
                misses: 4,
                evictions: 1,
                deduped: 3,
            },
            result_entries: 7,
            result_bytes: 1234,
            context: EpochContextStats {
                eval_hits: 6,
                eval_misses: 2,
                eval_entries: 4,
                probe_hits: 9,
                probe_misses: 3,
                probe_entries: 5,
                scc_served: 1,
                eval_carried: 2,
                probe_spaces_carried: 1,
            },
            csr_builds: 2,
            csr_build_micros: 150,
            csr_probes: 40,
            trie_probes: 8,
            delta_repairs: 3,
            delta_repaired_rows: 12,
            delta_fallback_cold: 1,
            durability: Some(DurabilityStats {
                wal_records: 9,
                wal_bytes: 640,
                checkpoints: 2,
                checkpoint_failures: 0,
                recovery: crate::durable::RecoveryReport {
                    recovered_epoch: 7,
                    checkpoint_epoch: Some(6),
                    replayed_records: 1,
                    skipped_duplicates: 2,
                    dropped_records: 1,
                    dropped_bytes: 33,
                    checkpoint_dropped: false,
                },
            }),
        }
    }

    #[test]
    fn display_covers_every_layer() {
        let text = report().to_string();
        assert!(text.contains("epoch 3"));
        assert!(text.contains("plan cache:   5 hits / 2 misses (1 chain program(s), 2 §4 plan(s))"));
        assert!(text.contains(
            "result cache: 10 hits / 4 misses / 1 evictions / 3 deduped (7 entr(ies), ~1234 bytes)"
        ));
        assert!(text.contains("probe memo 9 hits / 3 misses (5 entr(ies))"));
        assert!(text.contains("machine memo 6 hits / 2 misses (4 entr(ies))"));
        assert!(text.contains("1 scc-served"));
        assert!(text.contains("carried 2 machine entr(ies) / 1 probe space(s)"));
        assert!(text.contains("storage:      2 csr build(s) (150 µs), probes 40 csr / 8 trie"));
        assert!(text.contains("delta repair: 3 repair(s) / 12 row(s) patched / 1 cold fallback(s)"));
        assert!(text.contains(
            "durability:   9 wal record(s) (640 bytes), 2 checkpoint(s) / 0 failure(s); recovered epoch 7 (1 replayed, 2 skipped, 1 dropped)"
        ));
        // An in-memory service's report stays silent about durability.
        let mut memory = report();
        memory.durability = None;
        assert!(!memory.to_string().contains("durability:"));
    }

    #[test]
    fn json_mirrors_the_display_counters() {
        let json = report().to_json();
        assert_eq!(json.get("epoch").and_then(Json::as_i64), Some(3));
        let plans = json.get("plan_cache").unwrap();
        assert_eq!(plans.get("hits").and_then(Json::as_i64), Some(5));
        assert_eq!(plans.get("nary_plans").and_then(Json::as_i64), Some(2));
        let results = json.get("result_cache").unwrap();
        assert_eq!(results.get("deduped").and_then(Json::as_i64), Some(3));
        assert_eq!(results.get("bytes").and_then(Json::as_i64), Some(1234));
        let ctx = json.get("epoch_context").unwrap();
        assert_eq!(
            ctx.get("machine_memo")
                .unwrap()
                .get("hits")
                .and_then(Json::as_i64),
            Some(6)
        );
        assert_eq!(ctx.get("scc_served").and_then(Json::as_i64), Some(1));
        assert_eq!(
            ctx.get("carried")
                .unwrap()
                .get("probe_spaces")
                .and_then(Json::as_i64),
            Some(1)
        );
        let storage = json.get("storage").unwrap();
        assert_eq!(storage.get("csr_builds").and_then(Json::as_i64), Some(2));
        assert_eq!(storage.get("csr_probes").and_then(Json::as_i64), Some(40));
        assert_eq!(storage.get("trie_probes").and_then(Json::as_i64), Some(8));
        let repair = json.get("delta_repair").unwrap();
        assert_eq!(repair.get("repairs").and_then(Json::as_i64), Some(3));
        assert_eq!(repair.get("repaired_rows").and_then(Json::as_i64), Some(12));
        assert_eq!(repair.get("fallback_cold").and_then(Json::as_i64), Some(1));
        let durability = json.get("durability").unwrap();
        let wal = durability.get("wal").unwrap();
        assert_eq!(wal.get("records").and_then(Json::as_i64), Some(9));
        assert_eq!(wal.get("bytes").and_then(Json::as_i64), Some(640));
        assert_eq!(wal.get("checkpoints").and_then(Json::as_i64), Some(2));
        let recovery = durability.get("recovery").unwrap();
        assert_eq!(recovery.get("epoch").and_then(Json::as_i64), Some(7));
        assert_eq!(
            recovery.get("checkpoint_epoch").and_then(Json::as_i64),
            Some(6)
        );
        assert_eq!(
            recovery.get("replayed_records").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(
            recovery.get("dropped_records").and_then(Json::as_i64),
            Some(1)
        );
        assert_eq!(recovery.get("checkpoint_dropped"), Some(&Json::Bool(false)));
        // An in-memory report serializes the section as null.
        let mut memory = report();
        memory.durability = None;
        assert_eq!(memory.to_json().get("durability"), Some(&Json::Null));
        // Round-trips through the shared codec.
        let round = Json::parse(&json.encode()).unwrap();
        assert_eq!(round, json);
    }

    #[test]
    fn prometheus_export_mirrors_the_report() {
        let registry = Registry::new();
        let text = report().export_prometheus(&registry);
        assert!(text.contains("# TYPE rq_epoch gauge\n"), "{text}");
        assert!(text.contains("rq_epoch 3\n"));
        assert!(text.contains("rq_plan_cache_chain_programs 1\n"));
        assert!(text.contains("rq_result_cache_entries 7\n"));
        assert!(text.contains("rq_result_cache_bytes 1234\n"));
        assert!(text.contains("rq_epoch_context_probe_hits 9\n"));
        assert!(text.contains("rq_epoch_context_scc_served 1\n"));
        assert!(text.contains("rq_epoch_context_probe_spaces_carried 1\n"));
        assert!(text.contains("rq_recovery_epoch 7\n"), "{text}");
        assert!(text.contains("rq_recovery_checkpoint_epoch 6\n"));
        assert!(text.contains("rq_recovery_replayed_records 1\n"));
        assert!(text.contains("rq_recovery_dropped_records 1\n"));
        assert!(text.contains("rq_recovery_dropped_bytes 33\n"));
        assert!(text.contains("rq_recovery_checkpoint_dropped 0\n"));
        // A second export refreshes the gauges in place instead of
        // duplicating families.
        let again = report().export_prometheus(&registry);
        assert_eq!(again.matches("\nrq_epoch 3\n").count(), 1);
    }
}
