//! Explicit construction of the automaton hierarchy `EM(p, i)`.
//!
//! `EM(p,1) = M(e_p)`.  For `i > 1`, `EM(p,i)` is obtained from
//! `EM(p,i-1)` by replacing every transition `q --r--> q'` on a *derived*
//! predicate `r` with a fresh copy of `M(e_r)`: the transition is removed
//! and `q --id--> q_s'` and `q_f' --id--> q'` are added, where `q_s'`,
//! `q_f'` are the copy's initial and final states (Figure 2).
//!
//! The traversal engine simulates this expansion lazily; this explicit
//! version exists to validate the lazy encoding (the two must agree
//! node-for-node) and to reproduce Figures 2 and 6.

use crate::nfa::{thompson, Label, Nfa};
use rq_common::{FxHashMap, FxHashSet, Pred};
use rq_relalg::EqSystem;

/// Machines `M(e_r)` for every derived predicate of a system.
pub struct MachineSet {
    /// One Thompson automaton per derived predicate.
    pub machines: FxHashMap<Pred, Nfa>,
    /// The derived predicates (alphabet symbols subject to expansion).
    pub derived: FxHashSet<Pred>,
}

impl MachineSet {
    /// Build `M(e_p)` for every equation of the system.
    pub fn of(system: &EqSystem) -> Self {
        let machines = system
            .lhs
            .iter()
            .map(|&p| (p, thompson(&system.rhs[&p])))
            .collect();
        Self {
            machines,
            derived: system.derived(),
        }
    }

    /// `EM(p, i)`: the i-th automaton of the hierarchy for predicate `p`.
    pub fn em(&self, p: Pred, i: usize) -> Nfa {
        assert!(i >= 1, "EM(p,i) is defined for i >= 1");
        let mut nfa = self.machines[&p].clone();
        for _ in 1..i {
            nfa = self.expand_once(&nfa);
        }
        nfa
    }

    /// One expansion step: splice a fresh copy of `M(e_r)` over every
    /// derived-predicate transition.
    pub fn expand_once(&self, nfa: &Nfa) -> Nfa {
        let mut out = Nfa {
            trans: vec![Vec::new(); nfa.num_states()],
            start: nfa.start,
            finish: nfa.finish,
        };
        for (q, row) in nfa.trans.iter().enumerate() {
            for &(label, to) in row {
                let expandable = match label {
                    Label::Sym(p) | Label::Inv(p) => self.derived.contains(&p),
                    Label::Id => false,
                };
                if !expandable {
                    out.trans[q].push((label, to));
                    continue;
                }
                // Splice a fresh copy.  An inverse derived transition
                // splices the inverse machine (M of the inverted
                // equation); we realize that by inverting the copy.
                let (p, invert) = match label {
                    Label::Sym(p) => (p, false),
                    Label::Inv(p) => (p, true),
                    Label::Id => unreachable!(),
                };
                let copy = if invert {
                    invert_nfa(&self.machines[&p])
                } else {
                    self.machines[&p].clone()
                };
                let offset = out.trans.len();
                for crow in &copy.trans {
                    out.trans
                        .push(crow.iter().map(|&(l, t)| (l, t + offset)).collect());
                }
                out.trans[q].push((Label::Id, copy.start + offset));
                out.trans[copy.finish + offset].push((Label::Id, to));
            }
        }
        out
    }
}

/// Reverse an NFA: flip every transition (inverting its label) and swap
/// start and final states.  Recognizes the reversed language with each
/// letter inverted — the automaton of the inverse expression.
pub fn invert_nfa(nfa: &Nfa) -> Nfa {
    let mut out = Nfa {
        trans: vec![Vec::new(); nfa.num_states()],
        start: nfa.finish,
        finish: nfa.start,
    };
    for (q, row) in nfa.trans.iter().enumerate() {
        for &(label, to) in row {
            let flipped = match label {
                Label::Id => Label::Id,
                Label::Sym(p) => Label::Inv(p),
                Label::Inv(p) => Label::Sym(p),
            };
            out.trans[to].push((flipped, q));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::expr_words_up_to;
    use rq_relalg::{unroll, Expr};

    /// The sg system: sg = flat ∪ up·sg·down.
    fn sg_system() -> (EqSystem, Pred, Pred, Pred, Pred) {
        let sg = Pred(0);
        let flat = Pred(1);
        let up = Pred(2);
        let down = Pred(3);
        let e = Expr::union([
            Expr::Sym(flat),
            Expr::cat([Expr::Sym(up), Expr::Sym(sg), Expr::Sym(down)]),
        ]);
        (EqSystem::new([(sg, e)]), sg, flat, up, down)
    }

    #[test]
    fn em1_is_m() {
        let (sys, sg, ..) = sg_system();
        let ms = MachineSet::of(&sys);
        let em1 = ms.em(sg, 1);
        assert_eq!(em1.num_states(), ms.machines[&sg].num_states());
    }

    #[test]
    fn em_language_equals_unrolling() {
        // Lemma 2's key fact: EM(p,i) with derived transitions removed is
        // equivalent (as a language descriptor) to the unrolled p_i.
        let (sys, sg, ..) = sg_system();
        let ms = MachineSet::of(&sys);
        for i in 1..=4 {
            let em = ms.em(sg, i);
            let stripped = em.strip_preds(&ms.derived);
            let p_i = unroll(&sys, sg, i);
            let max_len = 2 * i + 1;
            assert_eq!(
                stripped.words_up_to(max_len),
                expr_words_up_to(&p_i, max_len),
                "EM(sg,{i}) vs sg_{i}"
            );
        }
    }

    #[test]
    fn figure6_shape_one_sg_transition_per_level() {
        // EM(sg,i) keeps exactly one derived transition (the innermost
        // copy's sg edge), as Figure 6 shows.
        let (sys, sg, ..) = sg_system();
        let ms = MachineSet::of(&sys);
        for i in 1..=4 {
            let em = ms.em(sg, i);
            let derived_edges = em
                .trans
                .iter()
                .flatten()
                .filter(|(l, _)| l.pred() == Some(sg))
                .count();
            assert_eq!(derived_edges, 1, "EM(sg,{i})");
        }
    }

    #[test]
    fn expansion_grows_linearly() {
        let (sys, sg, ..) = sg_system();
        let ms = MachineSet::of(&sys);
        let base = ms.em(sg, 1).num_states();
        let s2 = ms.em(sg, 2).num_states();
        let s3 = ms.em(sg, 3).num_states();
        // Each level adds one copy of M(e_sg): constant increments.
        assert_eq!(s2 - base, s3 - s2);
    }

    #[test]
    fn figure2_expansion_of_figure1() {
        // e_p = (b3·b4* ∪ b2·p)·b1, expanded once: the derived edge is
        // replaced, and the result (with the new inner p edge stripped)
        // accepts b2 (b3 b4^k b1 | b2 ∅ b1 …) b1 words of level 2.
        let p = Pred(0);
        let b = |i: u32| Expr::Sym(Pred(i));
        let e = Expr::cat([
            Expr::union([
                Expr::cat([b(3), Expr::star(b(4))]),
                Expr::cat([b(2), Expr::Sym(p)]),
            ]),
            b(1),
        ]);
        let sys = EqSystem::new([(p, e)]);
        let ms = MachineSet::of(&sys);
        let em2 = ms.em(p, 2);
        let stripped = em2.strip_preds(&ms.derived);
        let p2 = unroll(&sys, p, 2);
        assert_eq!(
            stripped.words_up_to(6),
            expr_words_up_to(&p2, 6),
            "EM(p,2) must match p_2"
        );
    }

    #[test]
    fn invert_nfa_reverses_words() {
        let e = Expr::cat([Expr::Sym(Pred(1)), Expr::Sym(Pred(2))]);
        let nfa = thompson(&e);
        let inv = invert_nfa(&nfa);
        let words = inv.words_up_to(3);
        assert_eq!(words.len(), 1);
        assert!(words.contains(&vec![Label::Inv(Pred(2)), Label::Inv(Pred(1))]));
    }

    #[test]
    fn mutual_system_expansion() {
        // q1 = a·q2, q2 = r2 ∪ a·q2·b (two equations, q2 self-recursive).
        let q1 = Pred(0);
        let q2 = Pred(1);
        let a = Expr::Sym(Pred(10));
        let b = Expr::Sym(Pred(11));
        let r2 = Expr::Sym(Pred(12));
        let sys = EqSystem::new([
            (q1, Expr::cat([a.clone(), Expr::Sym(q2)])),
            (
                q2,
                Expr::union([r2, Expr::cat([a.clone(), Expr::Sym(q2), b])]),
            ),
        ]);
        let ms = MachineSet::of(&sys);
        for i in 1..=3 {
            let em = ms.em(q1, i);
            let stripped = em.strip_preds(&ms.derived);
            let unrolled = unroll(&sys, q1, i);
            let max_len = 2 * i + 2;
            assert_eq!(
                stripped.words_up_to(max_len),
                expr_words_up_to(&unrolled, max_len),
                "EM(q1,{i})"
            );
        }
    }
}
