//! Nondeterministic finite automata over the predicate alphabet.
//!
//! The paper represents each equation `p = e_p` as an NFA `M(e_p)`
//! "obtained by the standard technique from e when we regard e as a
//! regular expression over the alphabet consisting of all predicate
//! symbols appearing in e" (Figure 1).  Transitions are labeled with a
//! predicate symbol (interpreted as the relation it denotes), an inverted
//! predicate symbol, or `id` (interpreted as the identity relation, i.e.
//! an ε-move of the traversal).

use rq_common::{FxHashSet, Pred};
use rq_relalg::Expr;

/// A transition label.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Label {
    /// The identity relation (ε).
    Id,
    /// A predicate symbol, forward direction.
    Sym(Pred),
    /// A predicate symbol, inverse direction.
    Inv(Pred),
}

impl Label {
    /// The predicate behind the label, if any.
    pub fn pred(self) -> Option<Pred> {
        match self {
            Label::Id => None,
            Label::Sym(p) | Label::Inv(p) => Some(p),
        }
    }
}

/// An ε-NFA with a single start and a single final state.
#[derive(Clone, Debug, Default)]
pub struct Nfa {
    /// Outgoing transitions per state.
    pub trans: Vec<Vec<(Label, usize)>>,
    /// The initial state `q_s`.
    pub start: usize,
    /// The final state `q_f`.
    pub finish: usize,
}

impl Nfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    fn add_state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.trans.len() - 1
    }

    fn add_transition(&mut self, from: usize, label: Label, to: usize) {
        self.trans[from].push((label, to));
    }

    /// The distinct predicates labeling transitions.
    pub fn alphabet(&self) -> FxHashSet<Pred> {
        let mut out = FxHashSet::default();
        for row in &self.trans {
            for (label, _) in row {
                if let Some(p) = label.pred() {
                    out.insert(p);
                }
            }
        }
        out
    }

    /// States reachable from the start through any transitions.
    pub fn reachable_states(&self) -> FxHashSet<usize> {
        let mut seen = FxHashSet::default();
        let mut stack = vec![self.start];
        while let Some(q) = stack.pop() {
            if !seen.insert(q) {
                continue;
            }
            for &(_, to) in &self.trans[q] {
                stack.push(to);
            }
        }
        seen
    }

    /// ε-closure (closure under `id` transitions) of a set of states.
    pub fn epsilon_closure(&self, states: impl IntoIterator<Item = usize>) -> FxHashSet<usize> {
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        let mut stack: Vec<usize> = states.into_iter().collect();
        while let Some(q) = stack.pop() {
            if !seen.insert(q) {
                continue;
            }
            for &(label, to) in &self.trans[q] {
                if label == Label::Id {
                    stack.push(to);
                }
            }
        }
        seen
    }

    /// Enumerate all label-words of length ≤ `max_len` accepted by the
    /// automaton (ε-transitions contribute no letter).  Exponential; for
    /// tests only.
    pub fn words_up_to(&self, max_len: usize) -> FxHashSet<Vec<Label>> {
        let mut out = FxHashSet::default();
        // BFS over (state set, word) — since the automaton may have
        // ε-cycles we work with closed state sets.
        let mut layer: Vec<(FxHashSet<usize>, Vec<Label>)> =
            vec![(self.epsilon_closure([self.start]), Vec::new())];
        for _ in 0..=max_len {
            let mut next: Vec<(FxHashSet<usize>, Vec<Label>)> = Vec::new();
            let mut seen_words: FxHashSet<Vec<Label>> = FxHashSet::default();
            for (states, word) in &layer {
                if states.contains(&self.finish) {
                    out.insert(word.clone());
                }
                if word.len() == max_len {
                    continue;
                }
                // Group successor states by letter.
                let mut by_letter: rq_common::FxHashMap<Label, FxHashSet<usize>> =
                    rq_common::FxHashMap::default();
                for &q in states {
                    for &(label, to) in &self.trans[q] {
                        if label != Label::Id {
                            by_letter.entry(label).or_default().insert(to);
                        }
                    }
                }
                for (letter, tos) in by_letter {
                    let mut w = word.clone();
                    w.push(letter);
                    if seen_words.insert(w.clone()) {
                        next.push((self.epsilon_closure(tos), w));
                    }
                }
            }
            layer = next;
            if layer.is_empty() {
                break;
            }
        }
        out
    }

    /// Remove every transition labeled with one of `preds`, returning the
    /// stripped automaton.  The paper's Lemma 2 proof considers exactly
    /// this: `EM(p,i)` with derived-relation transitions removed.
    pub fn strip_preds(&self, preds: &FxHashSet<Pred>) -> Nfa {
        let mut out = self.clone();
        for row in &mut out.trans {
            row.retain(|(label, _)| match label.pred() {
                Some(p) => !preds.contains(&p),
                None => true,
            });
        }
        out
    }

    /// GraphViz DOT rendering (state ids; labels via `name`).
    pub fn to_dot(&self, name: &impl Fn(Pred) -> String) -> String {
        let mut out = String::from("digraph nfa {\n  rankdir=LR;\n");
        out.push_str(&format!(
            "  q{} [shape=circle, style=bold];\n  q{} [shape=doublecircle];\n",
            self.start, self.finish
        ));
        for (q, row) in self.trans.iter().enumerate() {
            for (label, to) in row {
                let l = match label {
                    Label::Id => "id".to_string(),
                    Label::Sym(p) => name(*p),
                    Label::Inv(p) => format!("{}^-1", name(*p)),
                };
                out.push_str(&format!("  q{q} -> q{to} [label=\"{l}\"];\n"));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Thompson construction: build `M(e)` with one start and one final state.
/// Derived predicates are ordinary letters here; the traversal engine (or
/// [`crate::expand`]) gives them their recursive meaning.
pub fn thompson(e: &Expr) -> Nfa {
    let mut nfa = Nfa::default();
    let start = nfa.add_state();
    let finish = nfa.add_state();
    nfa.start = start;
    nfa.finish = finish;
    build(&mut nfa, e, start, finish);
    nfa
}

fn build(nfa: &mut Nfa, e: &Expr, from: usize, to: usize) {
    match e {
        Expr::Empty => {}
        Expr::Id => nfa.add_transition(from, Label::Id, to),
        Expr::Sym(p) => nfa.add_transition(from, Label::Sym(*p), to),
        Expr::Inv(p) => nfa.add_transition(from, Label::Inv(*p), to),
        Expr::Union(parts) => {
            for part in parts {
                // Branch through fresh states so fragments stay disjoint.
                let s = nfa.add_state();
                let f = nfa.add_state();
                nfa.add_transition(from, Label::Id, s);
                build(nfa, part, s, f);
                nfa.add_transition(f, Label::Id, to);
            }
        }
        Expr::Cat(parts) => {
            let mut cur = from;
            for (i, part) in parts.iter().enumerate() {
                let next = if i + 1 == parts.len() {
                    to
                } else {
                    nfa.add_state()
                };
                build(nfa, part, cur, next);
                cur = next;
            }
            if parts.is_empty() {
                nfa.add_transition(from, Label::Id, to);
            }
        }
        Expr::Star(inner) => {
            let s = nfa.add_state();
            let f = nfa.add_state();
            nfa.add_transition(from, Label::Id, s);
            build(nfa, inner, s, f);
            nfa.add_transition(f, Label::Id, s);
            nfa.add_transition(from, Label::Id, to);
            nfa.add_transition(f, Label::Id, to);
        }
    }
}

/// Enumerate the label-words of length ≤ `max_len` denoted by an
/// expression, treating every symbol (base or derived) as a letter.
/// The test oracle paired with [`Nfa::words_up_to`].
pub fn expr_words_up_to(e: &Expr, max_len: usize) -> FxHashSet<Vec<Label>> {
    match e {
        Expr::Empty => FxHashSet::default(),
        Expr::Id => [Vec::new()].into_iter().collect(),
        Expr::Sym(p) => [vec![Label::Sym(*p)]].into_iter().collect(),
        Expr::Inv(p) => [vec![Label::Inv(*p)]].into_iter().collect(),
        Expr::Union(parts) => {
            let mut out = FxHashSet::default();
            for part in parts {
                out.extend(expr_words_up_to(part, max_len));
            }
            out
        }
        Expr::Cat(parts) => {
            let mut acc: FxHashSet<Vec<Label>> = [Vec::new()].into_iter().collect();
            for part in parts {
                let words = expr_words_up_to(part, max_len);
                let mut next = FxHashSet::default();
                for a in &acc {
                    for w in &words {
                        if a.len() + w.len() <= max_len {
                            let mut v = a.clone();
                            v.extend_from_slice(w);
                            next.insert(v);
                        }
                    }
                }
                acc = next;
                if acc.is_empty() {
                    break;
                }
            }
            acc
        }
        Expr::Star(inner) => {
            let words = expr_words_up_to(inner, max_len);
            let mut acc: FxHashSet<Vec<Label>> = [Vec::new()].into_iter().collect();
            let mut frontier = acc.clone();
            loop {
                let mut next = FxHashSet::default();
                for a in &frontier {
                    for w in &words {
                        if a.len() + w.len() <= max_len {
                            let mut v = a.clone();
                            v.extend_from_slice(w);
                            if !acc.contains(&v) {
                                next.insert(v);
                            }
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                acc.extend(next.iter().cloned());
                frontier = next;
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> Expr {
        Expr::Sym(Pred(i))
    }

    fn assert_language_eq(e: &Expr, max_len: usize) {
        let nfa = thompson(e);
        assert_eq!(
            nfa.words_up_to(max_len),
            expr_words_up_to(e, max_len),
            "language mismatch for {e:?}"
        );
    }

    #[test]
    fn thompson_matches_expression_language() {
        assert_language_eq(&Expr::Empty, 3);
        assert_language_eq(&Expr::Id, 3);
        assert_language_eq(&p(1), 3);
        assert_language_eq(&Expr::union([p(1), p(2)]), 3);
        assert_language_eq(&Expr::cat([p(1), p(2), p(3)]), 4);
        assert_language_eq(&Expr::star(p(1)), 5);
        assert_language_eq(
            &Expr::cat([
                Expr::union([Expr::cat([p(3), Expr::star(p(4))]), Expr::cat([p(2), p(5)])]),
                p(1),
            ]),
            5,
        );
        assert_language_eq(&Expr::star(Expr::union([p(1), Expr::cat([p(2), p(3)])])), 5);
        assert_language_eq(&Expr::Inv(Pred(7)), 2);
    }

    #[test]
    fn figure1_automaton_language() {
        // e_p = (b3·b4* ∪ b2·p)·b1 — Figure 1.  With p treated as a
        // letter, the bounded language must be exactly
        // { b3 b4^k b1 } ∪ { b2 p b1 }.
        let b = |i: u32| p(i);
        let e = Expr::cat([
            Expr::union([
                Expr::cat([b(3), Expr::star(b(4))]),
                Expr::cat([b(2), b(5)]), // Pred(5) plays the role of p
            ]),
            b(1),
        ]);
        let nfa = thompson(&e);
        let words = nfa.words_up_to(4);
        let s =
            |v: Vec<u32>| -> Vec<Label> { v.into_iter().map(|i| Label::Sym(Pred(i))).collect() };
        let expected: FxHashSet<Vec<Label>> = [
            s(vec![3, 1]),
            s(vec![3, 4, 1]),
            s(vec![3, 4, 4, 1]),
            s(vec![2, 5, 1]),
        ]
        .into_iter()
        .collect();
        assert_eq!(words, expected);
        // The automaton has exactly one transition on the derived symbol.
        let derived_edges: usize = nfa
            .trans
            .iter()
            .flatten()
            .filter(|(l, _)| *l == Label::Sym(Pred(5)))
            .count();
        assert_eq!(derived_edges, 1);
    }

    #[test]
    fn epsilon_closure_follows_id_chains() {
        let e = Expr::star(p(1));
        let nfa = thompson(&e);
        let closure = nfa.epsilon_closure([nfa.start]);
        // Start's closure must include the final state (ε-accept).
        assert!(closure.contains(&nfa.finish));
    }

    #[test]
    fn strip_preds_removes_only_those() {
        let e = Expr::union([p(1), p(2)]);
        let nfa = thompson(&e);
        let stripped = nfa.strip_preds(&[Pred(1)].into_iter().collect());
        let words = stripped.words_up_to(2);
        assert_eq!(words.len(), 1);
        assert!(words.contains(&vec![Label::Sym(Pred(2))]));
    }

    #[test]
    fn reachable_states_cover_thompson_fragments() {
        let e = Expr::cat([p(1), Expr::star(p(2))]);
        let nfa = thompson(&e);
        // Every state of a Thompson automaton for a cat/star expression is
        // reachable from the start.
        assert_eq!(nfa.reachable_states().len(), nfa.num_states());
    }

    #[test]
    fn dot_export_mentions_labels() {
        let e = Expr::cat([p(1), p(2)]);
        let nfa = thompson(&e);
        let dot = nfa.to_dot(&|q: Pred| format!("b{}", q.0));
        assert!(dot.contains("b1"));
        assert!(dot.contains("b2"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn empty_expression_accepts_nothing() {
        let nfa = thompson(&Expr::Empty);
        assert!(nfa.words_up_to(3).is_empty());
    }

    #[test]
    fn words_up_to_respects_bound() {
        let nfa = thompson(&Expr::star(p(1)));
        let words = nfa.words_up_to(2);
        assert_eq!(words.len(), 3); // ε, b1, b1 b1
    }
}
