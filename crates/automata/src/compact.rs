//! ε-compaction of Thompson automata.
//!
//! The standard construction behind `M(e_p)` is deliberately ε-heavy:
//! every union branch and star adds glue states whose only behavior is a
//! silent move.  In the traversal engine each `id` transition is not
//! free — it materializes an extra `(state, term)` node in `G(p, a, i)`
//! per term that passes through it, so glue states inflate the very
//! quantity (graph nodes) the paper's complexity bounds count.
//!
//! [`compact`] contracts the harmless part of that overhead while
//! preserving the single-start/single-final shape the engine's machine
//! splicing relies on:
//!
//! * pure ε self-loops are dropped;
//! * duplicate transitions are deduplicated;
//! * a state whose *only* outgoing transition is a single ε-move (and
//!   which is not the final state) is merged into its successor;
//! * states unreachable from the start, or from which the final state is
//!   unreachable, are pruned.
//!
//! Each rewrite preserves the accepted language exactly (tested by
//! bounded language enumeration and by a proptest over random
//! expressions).  The ablation benchmark `bench/benches/compact.rs`
//! measures the effect on traversal node counts.

use crate::nfa::{Label, Nfa};
use rq_common::FxHashSet;

/// Size accounting for one compaction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// States before.
    pub states_before: usize,
    /// States after.
    pub states_after: usize,
    /// Transitions before.
    pub trans_before: usize,
    /// Transitions after.
    pub trans_after: usize,
    /// `id` transitions before.
    pub id_before: usize,
    /// `id` transitions after.
    pub id_after: usize,
}

fn count_id(nfa: &Nfa) -> usize {
    nfa.trans
        .iter()
        .flatten()
        .filter(|(l, _)| *l == Label::Id)
        .count()
}

/// Compact an automaton.  The result accepts exactly the same language
/// and still has a single start and a single final state.
pub fn compact(nfa: &Nfa) -> (Nfa, CompactionStats) {
    let mut out = nfa.clone();
    let stats_before = (out.num_states(), out.num_transitions(), count_id(&out));

    loop {
        let mut changed = false;
        changed |= drop_epsilon_self_loops(&mut out);
        changed |= dedupe_transitions(&mut out);
        changed |= contract_single_epsilon_states(&mut out);
        if !changed {
            break;
        }
    }
    prune(&mut out);

    let stats = CompactionStats {
        states_before: stats_before.0,
        trans_before: stats_before.1,
        id_before: stats_before.2,
        states_after: out.num_states(),
        trans_after: out.num_transitions(),
        id_after: count_id(&out),
    };
    (out, stats)
}

fn drop_epsilon_self_loops(nfa: &mut Nfa) -> bool {
    let mut changed = false;
    for (q, row) in nfa.trans.iter_mut().enumerate() {
        let before = row.len();
        row.retain(|&(l, to)| !(l == Label::Id && to == q));
        changed |= row.len() != before;
    }
    changed
}

fn dedupe_transitions(nfa: &mut Nfa) -> bool {
    let mut changed = false;
    let mut seen: FxHashSet<(Label, usize)> = FxHashSet::default();
    for row in &mut nfa.trans {
        seen.clear();
        let before = row.len();
        row.retain(|&t| seen.insert(t));
        changed |= row.len() != before;
    }
    changed
}

/// Merge every state whose only outgoing transition is one ε-move into
/// its successor (the final state is kept, it must remain addressable).
fn contract_single_epsilon_states(nfa: &mut Nfa) -> bool {
    let mut changed = false;
    for q in 0..nfa.num_states() {
        if q == nfa.finish {
            continue;
        }
        let [(Label::Id, to)] = nfa.trans[q][..] else {
            continue;
        };
        if to == q {
            continue; // self-loop, handled elsewhere
        }
        // Redirect every in-edge of q to `to`, then orphan q.
        for row in &mut nfa.trans {
            for t in row.iter_mut() {
                if t.1 == q {
                    t.1 = to;
                }
            }
        }
        if nfa.start == q {
            nfa.start = to;
        }
        nfa.trans[q].clear();
        changed = true;
    }
    changed
}

/// Drop states that are unreachable from the start or cannot reach the
/// final state, and renumber.  Start and finish survive regardless (an
/// automaton for `∅` keeps its two bare states).
fn prune(nfa: &mut Nfa) {
    let n = nfa.num_states();
    // Forward reachability.
    let mut fwd = vec![false; n];
    let mut stack = vec![nfa.start];
    while let Some(q) = stack.pop() {
        if std::mem::replace(&mut fwd[q], true) {
            continue;
        }
        for &(_, to) in &nfa.trans[q] {
            if !fwd[to] {
                stack.push(to);
            }
        }
    }
    // Backward reachability from finish.
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (q, row) in nfa.trans.iter().enumerate() {
        for &(_, to) in row {
            pred[to].push(q);
        }
    }
    let mut bwd = vec![false; n];
    stack.push(nfa.finish);
    while let Some(q) = stack.pop() {
        if std::mem::replace(&mut bwd[q], true) {
            continue;
        }
        for &from in &pred[q] {
            if !bwd[from] {
                stack.push(from);
            }
        }
    }

    let keep: Vec<bool> = (0..n)
        .map(|q| (fwd[q] && bwd[q]) || q == nfa.start || q == nfa.finish)
        .collect();
    let mut remap = vec![usize::MAX; n];
    let mut next = 0usize;
    for q in 0..n {
        if keep[q] {
            remap[q] = next;
            next += 1;
        }
    }
    let mut trans: Vec<Vec<(Label, usize)>> = Vec::with_capacity(next);
    for q in 0..n {
        if !keep[q] {
            continue;
        }
        trans.push(
            nfa.trans[q]
                .iter()
                .filter(|&&(_, to)| keep[to])
                .map(|&(l, to)| (l, remap[to]))
                .collect(),
        );
    }
    nfa.trans = trans;
    nfa.start = remap[nfa.start];
    nfa.finish = remap[nfa.finish];
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{expr_words_up_to, thompson};
    use rq_common::Pred;
    use rq_relalg::Expr;

    fn p(i: u32) -> Expr {
        Expr::Sym(Pred(i))
    }

    fn assert_compaction_preserves(e: &Expr, max_len: usize) {
        let nfa = thompson(e);
        let (small, stats) = compact(&nfa);
        assert_eq!(
            small.words_up_to(max_len),
            expr_words_up_to(e, max_len),
            "language changed for {e:?}"
        );
        assert!(stats.states_after <= stats.states_before);
        assert!(stats.trans_after <= stats.trans_before);
        assert!(stats.id_after <= stats.id_before);
    }

    #[test]
    fn compaction_preserves_language() {
        assert_compaction_preserves(&Expr::Empty, 3);
        assert_compaction_preserves(&Expr::Id, 3);
        assert_compaction_preserves(&p(1), 3);
        assert_compaction_preserves(&Expr::union([p(1), p(2)]), 3);
        assert_compaction_preserves(&Expr::cat([p(1), p(2), p(3)]), 4);
        assert_compaction_preserves(&Expr::star(p(1)), 5);
        assert_compaction_preserves(&Expr::Inv(Pred(3)), 2);
        // Figure 1's e_p with p-as-letter.
        assert_compaction_preserves(
            &Expr::cat([
                Expr::union([Expr::cat([p(3), Expr::star(p(4))]), Expr::cat([p(2), p(5)])]),
                p(1),
            ]),
            5,
        );
        assert_compaction_preserves(&Expr::star(Expr::union([p(1), Expr::cat([p(2), p(3)])])), 5);
        // Nested stars generate ε-chains and ε-self-loop opportunities.
        assert_compaction_preserves(&Expr::star(Expr::star(p(1))), 4);
        assert_compaction_preserves(&Expr::star(Expr::Id), 3);
        assert_compaction_preserves(&Expr::union([Expr::Id, p(1)]), 3);
        assert_compaction_preserves(&Expr::cat([Expr::star(p(1)), Expr::star(p(2))]), 4);
    }

    #[test]
    fn compaction_shrinks_union_glue() {
        // (a ∪ b ∪ c)·d: Thompson adds two glue states per branch.
        let e = Expr::cat([Expr::union([p(1), p(2), p(3)]), p(4)]);
        let nfa = thompson(&e);
        let (small, stats) = compact(&nfa);
        assert!(
            small.num_states() < nfa.num_states(),
            "no shrink: {} -> {}",
            nfa.num_states(),
            small.num_states()
        );
        assert!(stats.id_after < stats.id_before);
    }

    #[test]
    fn compaction_reaches_a_fixpoint() {
        let e = Expr::star(Expr::union([p(1), Expr::cat([p(2), Expr::star(p(3))])]));
        let (small, _) = compact(&thompson(&e));
        let (again, stats) = compact(&small);
        assert_eq!(again.num_states(), small.num_states());
        assert_eq!(stats.states_before, stats.states_after);
        assert_eq!(stats.trans_before, stats.trans_after);
    }

    #[test]
    fn no_single_epsilon_states_remain() {
        let e = Expr::cat([
            Expr::union([p(1), Expr::star(p(2))]),
            Expr::union([p(3), p(4)]),
        ]);
        let (small, _) = compact(&thompson(&e));
        for (q, row) in small.trans.iter().enumerate() {
            if q == small.finish {
                continue;
            }
            assert!(
                !matches!(row[..], [(Label::Id, to)] if to != q),
                "state {q} still has a single ε-out"
            );
        }
    }

    #[test]
    fn prune_keeps_empty_automaton_shape() {
        let (small, _) = compact(&thompson(&Expr::Empty));
        assert!(small.words_up_to(2).is_empty());
        assert!(small.start < small.num_states());
        assert!(small.finish < small.num_states());
    }

    #[test]
    fn compacted_id_may_merge_start_into_finish() {
        let (small, _) = compact(&thompson(&Expr::Id));
        // `id` accepts exactly ε; whatever the shape, the language holds.
        let words = small.words_up_to(2);
        assert_eq!(words.len(), 1);
        assert!(words.contains(&Vec::new()));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_expr() -> impl Strategy<Value = Expr> {
            let leaf = prop_oneof![
                Just(Expr::Empty),
                Just(Expr::Id),
                (1u32..5).prop_map(|i| Expr::Sym(Pred(i))),
                (1u32..5).prop_map(|i| Expr::Inv(Pred(i))),
            ];
            leaf.prop_recursive(4, 24, 3, |inner| {
                prop_oneof![
                    prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::union),
                    prop::collection::vec(inner.clone(), 1..4).prop_map(Expr::cat),
                    inner.prop_map(Expr::star),
                ]
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            #[test]
            fn compaction_preserves_random_languages(e in arb_expr()) {
                assert_compaction_preserves(&e, 4);
            }

            #[test]
            fn compaction_is_idempotent(e in arb_expr()) {
                let (once, _) = compact(&thompson(&e));
                let (twice, stats) = compact(&once);
                prop_assert_eq!(once.num_states(), twice.num_states());
                prop_assert_eq!(stats.trans_before, stats.trans_after);
            }
        }
    }
}
