//! ε-NFAs over predicate alphabets (§3, Figures 1, 2, 6 of the paper):
//! the Thompson construction `M(e)` of an equation's right-hand side and
//! the explicit expansion hierarchy `EM(p, i)` in which derived-predicate
//! transitions are spliced with fresh copies of their machines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod expand;
pub mod nfa;

pub use compact::{compact, CompactionStats};
pub use expand::{invert_nfa, MachineSet};
pub use nfa::{expr_words_up_to, thompson, Label, Nfa};
