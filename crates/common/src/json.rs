//! A tiny hand-rolled JSON value type with an encoder and a decoder.
//!
//! The build environment has no registry access, so no serde; this
//! module is the one JSON implementation the workspace shares — the
//! `rq-wire` HTTP API encodes requests and responses through it, and
//! the bench harness writes its committed `BENCH_<name>.json` summaries
//! with the same encoder.  It covers exactly the JSON the workspace
//! speaks: objects with string keys (insertion-ordered), arrays,
//! strings, integers, floats, booleans, and `null`.
//!
//! Encoding is available compact ([`Json::encode`]) and pretty
//! ([`Json::encode_pretty`]); decoding ([`Json::parse`]) is a
//! recursive-descent parser with a nesting-depth limit so untrusted
//! network bodies cannot overflow the stack.
//!
//! ```
//! use rq_common::json::Json;
//!
//! let value = Json::parse(r#"{"query": "tc(a, Y)", "rows": [["b"], [7]]}"#).unwrap();
//! assert_eq!(value.get("query").and_then(Json::as_str), Some("tc(a, Y)"));
//! let rows = value.get("rows").and_then(Json::as_array).unwrap();
//! assert_eq!(rows[1].as_array().unwrap()[0].as_i64(), Some(7));
//! let round = Json::parse(&value.encode()).unwrap();
//! assert_eq!(round, value);
//! ```

use std::fmt::Write as _;

/// Maximum nesting depth [`Json::parse`] accepts.  Deeper documents are
/// rejected with [`JsonError::TooDeep`] — a recursive-descent parser
/// must bound recursion before it trusts network input.
pub const MAX_DEPTH: usize = 64;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.  Keys keep insertion order and are not deduplicated;
    /// [`Json::get`] returns the first occurrence.
    Object(Vec<(String, Json)>),
}

/// A decode failure: what went wrong and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JsonError {
    /// The input ended inside a value.
    UnexpectedEnd,
    /// An unexpected byte at this offset.
    Unexpected(usize, char),
    /// A number failed to parse at this offset.
    BadNumber(usize),
    /// A malformed string escape at this offset.
    BadEscape(usize),
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// Valid JSON followed by trailing garbage at this offset.
    Trailing(usize),
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::UnexpectedEnd => write!(f, "unexpected end of JSON input"),
            JsonError::Unexpected(at, c) => write!(f, "unexpected `{c}` at byte {at}"),
            JsonError::BadNumber(at) => write!(f, "malformed number at byte {at}"),
            JsonError::BadEscape(at) => write!(f, "malformed string escape at byte {at}"),
            JsonError::TooDeep => write!(f, "nesting deeper than {MAX_DEPTH} levels"),
            JsonError::Trailing(at) => write!(f, "trailing characters at byte {at}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs (a small ergonomic helper
    /// for encoder call sites).
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// The value under `key`, when `self` is an object holding one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, when `self` is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric payload as a float (integers convert losslessly for
    /// |i| < 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean payload, when `self` is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, when `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact encoding (no whitespace).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty encoding: two-space indentation, one element per line —
    /// the format of the committed `BENCH_<name>.json` files.
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips and always keeps a `.0` on integral
                    // values, so the output stays a JSON *number* that
                    // reads back as a float.
                    let _ = write!(out, "{x:?}");
                } else {
                    // JSON has no NaN/Infinity; `null` is the honest
                    // encoding of an unrepresentable measurement.
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_str_into(s, out),
            Json::Array(items) => write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, level + 1)
            }),
            Json::Object(pairs) => {
                write_seq(out, indent, level, '{', '}', pairs.len(), |out, i| {
                    let (key, value) = &pairs[i];
                    escape_str_into(key, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1)
                })
            }
        }
    }

    /// Decode one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut at = 0;
        let value = parse_value(bytes, &mut at, 0)?;
        skip_ws(bytes, &mut at);
        if at < bytes.len() {
            return Err(JsonError::Trailing(at));
        }
        Ok(value)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (level + 1) {
                out.push(' ');
            }
        }
        item(out, i);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
    out.push(close);
}

/// JSON-escape `s` (with the surrounding quotes) into `out`.
fn escape_str_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON-escape `s`, returning the quoted string.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_str_into(s, &mut out);
    out
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn parse_value(bytes: &[u8], at: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::TooDeep);
    }
    skip_ws(bytes, at);
    let Some(&b) = bytes.get(*at) else {
        return Err(JsonError::UnexpectedEnd);
    };
    match b {
        b'n' => parse_lit(bytes, at, "null", Json::Null),
        b't' => parse_lit(bytes, at, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, at, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, at).map(Json::Str),
        b'[' => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, at, depth + 1)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Array(items));
                    }
                    Some(&c) => return Err(JsonError::Unexpected(*at, c as char)),
                    None => return Err(JsonError::UnexpectedEnd),
                }
            }
        }
        b'{' => {
            *at += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Object(pairs));
            }
            loop {
                skip_ws(bytes, at);
                if bytes.get(*at) != Some(&b'"') {
                    return match bytes.get(*at) {
                        Some(&c) => Err(JsonError::Unexpected(*at, c as char)),
                        None => Err(JsonError::UnexpectedEnd),
                    };
                }
                let key = parse_string(bytes, at)?;
                skip_ws(bytes, at);
                if bytes.get(*at) != Some(&b':') {
                    return match bytes.get(*at) {
                        Some(&c) => Err(JsonError::Unexpected(*at, c as char)),
                        None => Err(JsonError::UnexpectedEnd),
                    };
                }
                *at += 1;
                let value = parse_value(bytes, at, depth + 1)?;
                pairs.push((key, value));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Object(pairs));
                    }
                    Some(&c) => return Err(JsonError::Unexpected(*at, c as char)),
                    None => return Err(JsonError::UnexpectedEnd),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, at),
        c => Err(JsonError::Unexpected(*at, c as char)),
    }
}

fn parse_lit(bytes: &[u8], at: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*at..].starts_with(lit.as_bytes()) {
        *at += lit.len();
        Ok(value)
    } else {
        Err(JsonError::Unexpected(*at, bytes[*at] as char))
    }
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<Json, JsonError> {
    let start = *at;
    if bytes.get(*at) == Some(&b'-') {
        *at += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*at) {
        match b {
            b'0'..=b'9' => *at += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *at += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*at]).expect("ASCII slice");
    if !fractional {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| JsonError::BadNumber(start))
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*at], b'"');
    *at += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*at) else {
            return Err(JsonError::UnexpectedEnd);
        };
        match b {
            b'"' => {
                *at += 1;
                return Ok(out);
            }
            b'\\' => {
                let esc_at = *at;
                *at += 1;
                let Some(&e) = bytes.get(*at) else {
                    return Err(JsonError::UnexpectedEnd);
                };
                *at += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000c}'),
                    b'u' => {
                        let code = parse_hex4(bytes, at).ok_or(JsonError::BadEscape(esc_at))?;
                        let c = if (0xd800..0xdc00).contains(&code) {
                            // High surrogate: require the paired low
                            // surrogate escape.
                            if bytes.get(*at) != Some(&b'\\') || bytes.get(*at + 1) != Some(&b'u') {
                                return Err(JsonError::BadEscape(esc_at));
                            }
                            *at += 2;
                            let low = parse_hex4(bytes, at).ok_or(JsonError::BadEscape(esc_at))?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err(JsonError::BadEscape(esc_at));
                            }
                            let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                            char::from_u32(combined).ok_or(JsonError::BadEscape(esc_at))?
                        } else {
                            char::from_u32(code).ok_or(JsonError::BadEscape(esc_at))?
                        };
                        out.push(c);
                    }
                    _ => return Err(JsonError::BadEscape(esc_at)),
                }
            }
            0x00..=0x1f => return Err(JsonError::Unexpected(*at, b as char)),
            _ => {
                // Consume one UTF-8 scalar (the input is a &str, so the
                // encoding is already valid).
                let rest = std::str::from_utf8(&bytes[*at..]).expect("valid UTF-8 tail");
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: &mut usize) -> Option<u32> {
    let slice = bytes.get(*at..*at + 4)?;
    let text = std::str::from_utf8(slice).ok()?;
    let code = u32::from_str_radix(text, 16).ok()?;
    *at += 4;
    Some(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("3.5", Json::Float(3.5)),
            ("-0.25", Json::Float(-0.25)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), value, "{text}");
            assert_eq!(Json::parse(&value.encode()).unwrap(), value);
        }
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let text = r#"{"b": [1, 2, {"x": null}], "a": "z", "nested": {"k": [true, false]}}"#;
        let value = Json::parse(text).unwrap();
        let keys: Vec<&str> = value
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["b", "a", "nested"]);
        assert_eq!(Json::parse(&value.encode()).unwrap(), value);
        assert_eq!(Json::parse(&value.encode_pretty()).unwrap(), value);
    }

    #[test]
    fn string_escapes_decode_and_encode() {
        let value = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(value, Json::Str("a\"b\\c\ndAé".into()));
        assert_eq!(Json::parse(&value.encode()).unwrap(), value);
        // Surrogate pair.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\uZZZZ""#).is_err());
        assert_eq!(escape_str("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(Json::parse(""), Err(JsonError::UnexpectedEnd));
        assert_eq!(Json::parse("{"), Err(JsonError::UnexpectedEnd));
        assert!(matches!(Json::parse("nul"), Err(JsonError::Unexpected(..))));
        assert!(matches!(Json::parse("1 2"), Err(JsonError::Trailing(_))));
        assert!(matches!(
            Json::parse("[1,]"),
            Err(JsonError::Unexpected(..))
        ));
        assert!(matches!(
            Json::parse("{\"a\" 1}"),
            Err(JsonError::Unexpected(..))
        ));
        assert!(matches!(Json::parse("1.2.3"), Err(JsonError::BadNumber(_))));
    }

    #[test]
    fn depth_limit_rejects_bombs() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep));
        let fine = "[".repeat(8) + "1" + &"]".repeat(8);
        assert!(Json::parse(&fine).is_ok());
    }

    #[test]
    fn depth_limit_is_exact() {
        // Exactly MAX_DEPTH levels of nesting parse; one more is
        // rejected — and the boundary holds for mixed object/array
        // nesting, the shape trace payloads take.
        let at_limit = "[".repeat(MAX_DEPTH) + "1" + &"]".repeat(MAX_DEPTH);
        assert!(Json::parse(&at_limit).is_ok());
        let over = "[".repeat(MAX_DEPTH + 1) + "1" + &"]".repeat(MAX_DEPTH + 1);
        assert_eq!(Json::parse(&over), Err(JsonError::TooDeep));
        let mixed_over = r#"{"a":"#.repeat(MAX_DEPTH) + "[1]" + &"}".repeat(MAX_DEPTH);
        assert_eq!(Json::parse(&mixed_over), Err(JsonError::TooDeep));
    }

    #[test]
    fn surrogate_and_escape_round_trips() {
        // A surrogate-pair escape decodes to the astral scalar, and
        // the encoder's output (raw UTF-8) re-parses to the same value.
        let from_escape = Json::parse(r#""😀""#).unwrap();
        assert_eq!(from_escape, Json::Str("😀".into()));
        assert_eq!(Json::parse(&from_escape.encode()).unwrap(), from_escape);
        // Low surrogate without a preceding high one is rejected, as
        // is a high surrogate followed by a non-surrogate escape.
        assert!(Json::parse(r#""\udc00""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
        // Control characters encode as \u escapes and round-trip.
        let control = Json::Str("\u{0001}\u{001f}bell\u{0007}".into());
        let encoded = control.encode();
        assert!(encoded.contains("\\u0001") && encoded.contains("\\u001f"));
        assert_eq!(Json::parse(&encoded).unwrap(), control);
        // Every named escape survives a double round-trip.
        let named = Json::parse(r#""\"\\\/\b\f\n\r\t""#).unwrap();
        assert_eq!(named, Json::Str("\"\\/\u{8}\u{c}\n\r\t".into()));
        assert_eq!(Json::parse(&named.encode()).unwrap(), named);
    }

    #[test]
    fn large_integers_keep_fidelity() {
        // i64 extremes stay exact integers through parse and encode —
        // metric counters ride this codec.
        for i in [i64::MAX, i64::MIN, (1i64 << 53) + 1, -(1i64 << 53) - 1] {
            let parsed = Json::parse(&i.to_string()).unwrap();
            assert_eq!(parsed, Json::Int(i), "{i}");
            assert_eq!(parsed.encode(), i.to_string());
        }
        // Beyond i64, the value degrades to a float rather than
        // erroring (matching other lenient decoders).
        let over = "9223372036854775808"; // i64::MAX + 1
        assert_eq!(
            Json::parse(over).unwrap(),
            Json::Float(9.223372036854776e18)
        );
        // An exponent forces float even for integral values.
        assert_eq!(Json::parse("5e0").unwrap(), Json::Float(5.0));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::Float(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn object_helpers() {
        let value = Json::object([("a", Json::Int(1)), ("b", Json::Bool(true))]);
        assert_eq!(value.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(value.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(value.get("c"), None);
        assert_eq!(Json::Int(5).get("a"), None);
        assert_eq!(Json::Int(5).as_f64(), Some(5.0));
    }

    #[test]
    fn pretty_format_shape() {
        let value = Json::object([
            ("bench", Json::Str("t".into())),
            ("entries", Json::Array(vec![Json::Int(1)])),
        ]);
        assert_eq!(
            value.encode_pretty(),
            "{\n  \"bench\": \"t\",\n  \"entries\": [\n    1\n  ]\n}\n"
        );
    }
}
