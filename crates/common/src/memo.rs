//! A bounded, thread-safe memo: the shared machinery behind the
//! epoch-scoped evaluation caches (the engine's machine-traversal memo
//! and the §4 virtual-probe memo).
//!
//! Values are `Arc`-shared, lookups count hits/misses atomically, and
//! the map carries an **entry cap**: once full, `insert` refuses new
//! keys instead of evicting.  Refusal is always sound for a memo — a
//! miss just re-derives — and keeps the steady-state cost of a
//! saturated memo at one read-lock probe ([`BoundedMemo::would_refuse`]
//! lets callers skip preparing a value that would be thrown away).

use crate::hash::FxHashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Hit/miss/entry counts of one [`BoundedMemo`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Stored entries.
    pub entries: usize,
}

/// A concurrent `K → Arc<V>` map bounded by an entry cap.
pub struct BoundedMemo<K, V> {
    map: RwLock<FxHashMap<K, Arc<V>>>,
    max_entries: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V> BoundedMemo<K, V> {
    /// Empty memo holding at most `max_entries` entries.
    pub fn new(max_entries: usize) -> Self {
        Self {
            map: RwLock::new(FxHashMap::default()),
            max_entries,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        let hit = self
            .map
            .read()
            .expect("memo lock poisoned")
            .get(key)
            .cloned();
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Look up `key` **without** touching the hit/miss counters.  The
    /// delta-repair path reads entries to patch them; those reads are
    /// maintenance, not serving traffic, and must not skew the cache's
    /// observed hit rate.
    pub fn peek(&self, key: &K) -> Option<Arc<V>> {
        self.map
            .read()
            .expect("memo lock poisoned")
            .get(key)
            .cloned()
    }

    /// Whether an insert of `key` would be refused (memo full and the
    /// key absent).  A cheap read-lock probe callers use to skip
    /// preparing values a saturated memo would discard.
    pub fn would_refuse(&self, key: &K) -> bool {
        let map = self.map.read().expect("memo lock poisoned");
        map.len() >= self.max_entries && !map.contains_key(key)
    }

    /// Store `value` under `key` unless the cap refuses it.  Existing
    /// keys are overwritten (memo writers race only with identical
    /// values for the same key, so last-write-wins is safe).
    pub fn insert(&self, key: K, value: Arc<V>) {
        let mut map = self.map.write().expect("memo lock poisoned");
        if map.len() >= self.max_entries && !map.contains_key(&key) {
            return;
        }
        map.insert(key, value);
    }

    /// Copy every entry of `src` whose key satisfies `keep` into this
    /// memo (values are `Arc`-shared, not cloned), respecting this
    /// memo's entry cap.  Returns how many entries were carried.
    ///
    /// This is the cross-epoch carry-forward primitive: a fresh epoch's
    /// memo inherits the previous epoch's entries that are still valid
    /// (the serving layer decides validity from plan read-sets vs. the
    /// publish's dirty shards).
    pub fn carry_from(&self, src: &Self, mut keep: impl FnMut(&K) -> bool) -> usize
    where
        K: Clone,
    {
        let survivors: Vec<(K, Arc<V>)> = {
            let src_map = src.map.read().expect("memo lock poisoned");
            src_map
                .iter()
                .filter(|(k, _)| keep(k))
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        let mut map = self.map.write().expect("memo lock poisoned");
        let mut carried = 0;
        for (key, value) in survivors {
            if map.len() >= self.max_entries && !map.contains_key(&key) {
                break;
            }
            map.insert(key, value);
            carried += 1;
        }
        carried
    }

    /// Visit every entry under the read lock.  `f` must not call back
    /// into the memo (the lock is held for the whole walk).
    pub fn for_each(&self, mut f: impl FnMut(&K, &Arc<V>)) {
        for (k, v) in self.map.read().expect("memo lock poisoned").iter() {
            f(k, v);
        }
    }

    /// Drop every entry whose key fails `keep`; returns how many were
    /// removed.  This is the delta-repair purge primitive: entries a
    /// publish made stale (and that could not be patched) are removed
    /// so later lookups miss and re-derive against the new data.
    pub fn retain(&self, mut keep: impl FnMut(&K) -> bool) -> usize {
        let mut map = self.map.write().expect("memo lock poisoned");
        let before = map.len();
        map.retain(|k, _| keep(k));
        before - map.len()
    }

    /// The entry cap this memo was built with.
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.map.read().expect("memo lock poisoned").len()
    }

    /// Whether nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss/entry counts.
    pub fn stats(&self) -> MemoStats {
        MemoStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl<K, V> std::fmt::Debug for BoundedMemo<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedMemo")
            .field(
                "entries",
                &self.map.read().expect("memo lock poisoned").len(),
            )
            .field("max_entries", &self.max_entries)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_and_stats() {
        let memo: BoundedMemo<u32, Vec<u32>> = BoundedMemo::new(8);
        assert!(memo.get(&1).is_none());
        memo.insert(1, Arc::new(vec![7]));
        assert_eq!(*memo.get(&1).unwrap(), vec![7]);
        assert_eq!(
            memo.stats(),
            MemoStats {
                hits: 1,
                misses: 1,
                entries: 1
            }
        );
    }

    #[test]
    fn cap_refuses_new_keys_but_allows_overwrites() {
        let memo: BoundedMemo<u32, u32> = BoundedMemo::new(2);
        memo.insert(1, Arc::new(10));
        memo.insert(2, Arc::new(20));
        assert!(!memo.would_refuse(&1));
        assert!(memo.would_refuse(&3));
        memo.insert(3, Arc::new(30));
        assert!(memo.get(&3).is_none(), "cap refuses new keys");
        memo.insert(1, Arc::new(11));
        assert_eq!(*memo.get(&1).unwrap(), 11, "existing keys overwrite");
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn carry_from_filters_shares_and_respects_the_cap() {
        let old: BoundedMemo<(u32, u32), Vec<u32>> = BoundedMemo::new(8);
        old.insert((1, 0), Arc::new(vec![10]));
        old.insert((1, 1), Arc::new(vec![11]));
        old.insert((2, 0), Arc::new(vec![20]));
        let fresh: BoundedMemo<(u32, u32), Vec<u32>> = BoundedMemo::new(8);
        let carried = fresh.carry_from(&old, |k| k.0 == 1);
        assert_eq!(carried, 2);
        assert_eq!(fresh.len(), 2);
        // Values are Arc-shared, not cloned.
        assert!(Arc::ptr_eq(
            &old.get(&(1, 0)).unwrap(),
            &fresh.get(&(1, 0)).unwrap()
        ));
        assert!(fresh.get(&(2, 0)).is_none(), "filtered keys do not carry");
        // A tiny destination caps what carries.
        let tiny: BoundedMemo<(u32, u32), Vec<u32>> = BoundedMemo::new(1);
        let carried = tiny.carry_from(&old, |_| true);
        assert_eq!(carried, 1);
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn for_each_and_retain_enumerate_and_purge() {
        let memo: BoundedMemo<(u32, u32), Vec<u32>> = BoundedMemo::new(8);
        memo.insert((1, 0), Arc::new(vec![10]));
        memo.insert((1, 1), Arc::new(vec![11]));
        memo.insert((2, 0), Arc::new(vec![20]));
        let mut seen: Vec<(u32, u32)> = Vec::new();
        memo.for_each(|k, _| seen.push(*k));
        seen.sort_unstable();
        assert_eq!(seen, vec![(1, 0), (1, 1), (2, 0)]);
        let removed = memo.retain(|k| k.0 != 1);
        assert_eq!(removed, 2);
        assert_eq!(memo.len(), 1);
        assert!(memo.get(&(2, 0)).is_some());
        // A purge frees capacity: new keys are accepted again.
        memo.insert((3, 0), Arc::new(vec![30]));
        assert!(memo.get(&(3, 0)).is_some());
    }

    #[test]
    fn memo_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BoundedMemo<u32, Vec<u32>>>();
    }
}
