//! Dependency-free observability: a sharded metrics registry and
//! lightweight structured spans.
//!
//! The registry holds three metric kinds, all cheap enough for hot
//! paths and all lock-free after creation:
//!
//! * [`Counter`] — a monotone `u64` split across cache-line-padded
//!   shards so concurrent workers do not bounce one cache line; reads
//!   sum the shards with saturating arithmetic.
//! * [`Gauge`] — a point-in-time `i64` (in-flight requests, cache
//!   entries, current epoch).
//! * [`Histogram`] — fixed log₂ buckets from 1µs to ~16.8s plus
//!   `+Inf`, with nanosecond sum and count; snapshots derive
//!   p50/p90/p99 from the cumulative buckets.
//!
//! [`Registry::render`] emits the whole registry in Prometheus text
//! exposition format (`# HELP` / `# TYPE` / sample lines), which is
//! what `GET /metrics` serves.
//!
//! Spans are thread-local and cost one thread-local check when no
//! trace is active: [`trace_start`] arms the current thread,
//! [`span`] records a named node under the innermost open span, and
//! [`trace_finish`] returns the completed records.  [`trace_mark`] /
//! [`trace_since`] extract a subtree without consuming an enclosing
//! trace, so a `"trace": true` query response and a server-level
//! slow-query log can share one recording.
//!
//! ```
//! use rq_common::obs::{self, Registry};
//! use std::time::Duration;
//!
//! let registry = Registry::new();
//! let hits = registry.counter("rq_cache_hits_total", "Cache hits.");
//! hits.inc();
//! let latency = registry.histogram_with(
//!     "rq_request_seconds",
//!     "Request latency.",
//!     &[("endpoint", "/query")],
//! );
//! latency.observe(Duration::from_micros(250));
//! let text = registry.render();
//! assert!(text.contains("rq_cache_hits_total 1"));
//! assert!(text.contains("rq_request_seconds_bucket{endpoint=\"/query\",le=\"+Inf\"} 1"));
//!
//! obs::trace_start();
//! {
//!     let root = obs::span("root");
//!     root.note("answer", 42);
//!     let _child = obs::span("child");
//! }
//! let spans = obs::trace_finish();
//! assert_eq!(spans[0].name, "root");
//! assert_eq!(spans[1].parent, Some(0));
//! ```

use crate::json::Json;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// How many cache-line-padded shards a [`Counter`] spreads over.
const COUNTER_SHARDS: usize = 8;

/// One `AtomicU64` alone on its cache line, so two shards never share
/// a line and `fetch_add` from different threads never false-shares.
#[derive(Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// The thread's shard index: assigned round-robin on first use, fixed
/// for the thread's lifetime.
fn shard_index() -> usize {
    static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|slot| {
        let mut index = slot.get();
        if index == usize::MAX {
            index = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            slot.set(index);
        }
        index
    })
}

/// A monotone counter.  Cloning shares the underlying shards, so a
/// cache can own a counter and a registry can export the same one —
/// the "one source of truth" behind `:stats`, `/stats`, and
/// `/metrics`.
#[derive(Clone, Default)]
pub struct Counter {
    shards: Arc<[PaddedU64; COUNTER_SHARDS]>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total: a saturating sum over the shards, so a
    /// (pathological) wrapped shard cannot panic a debug build or
    /// produce a nonsense negative-looking total.
    pub fn value(&self) -> u64 {
        self.shards.iter().fold(0u64, |sum, shard| {
            sum.saturating_add(shard.0.load(Ordering::Relaxed))
        })
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// A point-in-time value (in-flight requests, cache entries, epoch).
/// Cloning shares the underlying cell.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (e.g. a request entering flight).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (e.g. a request leaving flight).
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Bucket count: upper bounds `2^i` microseconds for `i` in `0..25`
/// (1µs … ~16.8s), plus a final `+Inf` bucket.
pub const HISTOGRAM_BUCKETS: usize = 26;

struct HistogramInner {
    /// Per-bucket (non-cumulative) observation counts.
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

/// A latency histogram with fixed log₂ buckets.  Cloning shares the
/// underlying buckets.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            inner: Arc::new(HistogramInner {
                buckets: Default::default(),
                sum_nanos: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }
}

/// The upper bound of bucket `i`, in seconds (`f64::INFINITY` for the
/// last bucket).
fn bucket_bound_seconds(i: usize) -> f64 {
    if i + 1 == HISTOGRAM_BUCKETS {
        f64::INFINITY
    } else {
        (1u64 << i) as f64 * 1e-6
    }
}

impl Histogram {
    /// A fresh histogram with no observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration.
    pub fn observe(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let micros = nanos / 1_000;
        // Smallest i with micros <= 2^i, i.e. ceil(log2(micros)).
        let index = if micros <= 1 {
            0
        } else {
            (64 - (micros - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
        };
        let index = if index + 1 >= HISTOGRAM_BUCKETS {
            HISTOGRAM_BUCKETS - 1
        } else {
            index
        };
        self.inner.buckets[index].fetch_add(1, Ordering::Relaxed);
        self.inner.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for rendering (buckets are read
    /// one by one; a racing `observe` may straddle the read, which is
    /// the usual Prometheus-client tolerance).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut cumulative = 0u64;
        let buckets = (0..HISTOGRAM_BUCKETS)
            .map(|i| {
                cumulative =
                    cumulative.saturating_add(self.inner.buckets[i].load(Ordering::Relaxed));
                (bucket_bound_seconds(i), cumulative)
            })
            .collect();
        HistogramSnapshot {
            count: self.inner.count.load(Ordering::Relaxed),
            sum_seconds: self.inner.sum_nanos.load(Ordering::Relaxed) as f64 * 1e-9,
            buckets,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("sum_seconds", &snap.sum_seconds)
            .finish()
    }
}

/// A read-out of a [`Histogram`]: total count, sum in seconds, and
/// `(upper_bound_seconds, cumulative_count)` per bucket (the last
/// bound is `+Inf`).
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed durations, in seconds.
    pub sum_seconds: f64,
    /// `(le_seconds, cumulative_count)` pairs, cumulative and
    /// monotone; the final entry's bound is `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// The upper bound (seconds) of the bucket holding the `q`-th
    /// quantile observation — e.g. `quantile(0.99)` is the p99 bucket
    /// bound.  Returns `0.0` for an empty histogram; observations in
    /// the `+Inf` bucket report the largest finite bound (the best
    /// known lower bound).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        for &(bound, cumulative) in &self.buckets {
            if cumulative >= rank {
                return if bound.is_finite() {
                    bound
                } else {
                    bucket_bound_seconds(HISTOGRAM_BUCKETS - 2)
                };
            }
        }
        bucket_bound_seconds(HISTOGRAM_BUCKETS - 2)
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One registered metric (any kind).
#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A metric family: one name and help string, one series per label
/// set.
struct Family {
    help: &'static str,
    /// Keyed by the rendered label set (e.g. `endpoint="/query"`),
    /// empty string for the unlabeled series.  Sorted for stable
    /// render order.
    series: BTreeMap<String, Metric>,
}

/// A metrics registry: named families of counters, gauges, and
/// histograms, rendered in Prometheus text exposition format.
///
/// The registry is instance-scoped (no globals): each `QueryService`
/// owns one, so tests and embedded services never share counters.
/// `get-or-create` accessors return clones that share the underlying
/// cells, so callers keep handles and never touch the lock on the hot
/// path.
#[derive(Default)]
pub struct Registry {
    families: RwLock<BTreeMap<&'static str, Family>>,
}

/// `label_key(&[("a", "x"), ("b", "y")])` → `a="x",b="y"` — the
/// stable series key and rendered label body.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (name, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{name}=\"{}\"", escape_label(value));
    }
    out
}

/// Escape a label value per the Prometheus text format (`\\`, `\"`,
/// `\n`).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(
        &self,
        name: &'static str,
        help: &'static str,
        key: String,
        make: Metric,
    ) -> Metric {
        let mut families = self.families.write().expect("registry lock");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            series: BTreeMap::new(),
        });
        let metric = family.series.entry(key).or_insert(make);
        metric.clone()
    }

    /// The unlabeled counter `name`, created on first use.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// The counter `name{labels}`, created on first use.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.get_or_insert(
            name,
            help,
            label_key(labels),
            Metric::Counter(Counter::new()),
        ) {
            Metric::Counter(c) => c,
            other => {
                debug_assert!(false, "metric `{name}` registered as {}", other.type_name());
                Counter::new()
            }
        }
    }

    /// Register an existing counter under `name{labels}` — the adopt
    /// path for cache-owned counters, so the cache's own reads and the
    /// Prometheus export observe the same cells.  If the series
    /// already exists, the registered counter wins and is returned.
    pub fn adopt_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) -> Counter {
        match self.get_or_insert(
            name,
            help,
            label_key(labels),
            Metric::Counter(counter.clone()),
        ) {
            Metric::Counter(c) => c,
            other => {
                debug_assert!(false, "metric `{name}` registered as {}", other.type_name());
                counter.clone()
            }
        }
    }

    /// The unlabeled gauge `name`, created on first use.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// The gauge `name{labels}`, created on first use.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Gauge {
        match self.get_or_insert(name, help, label_key(labels), Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => {
                debug_assert!(false, "metric `{name}` registered as {}", other.type_name());
                Gauge::new()
            }
        }
    }

    /// The unlabeled histogram `name`, created on first use.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// The histogram `name{labels}`, created on first use.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.get_or_insert(
            name,
            help,
            label_key(labels),
            Metric::Histogram(Histogram::new()),
        ) {
            Metric::Histogram(h) => h,
            other => {
                debug_assert!(false, "metric `{name}` registered as {}", other.type_name());
                Histogram::new()
            }
        }
    }

    /// Render every family in Prometheus text exposition format:
    /// `# HELP` and `# TYPE` lines followed by one sample line per
    /// series (histograms expand to `_bucket`/`_sum`/`_count`).
    pub fn render(&self) -> String {
        let families = self.families.read().expect("registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let Some(first) = family.series.values().next() else {
                continue;
            };
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", first.type_name());
            for (key, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", braced(key), c.value());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", braced(key), g.value());
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        for &(bound, cumulative) in &snap.buckets {
                            let le = if bound.is_finite() {
                                format!("{bound:?}")
                            } else {
                                "+Inf".to_string()
                            };
                            let labels = if key.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{{{key},le=\"{le}\"}}")
                            };
                            let _ = writeln!(out, "{name}_bucket{labels} {cumulative}");
                        }
                        let _ = writeln!(out, "{name}_sum{} {:?}", braced(key), snap.sum_seconds);
                        let _ = writeln!(out, "{name}_count{} {}", braced(key), snap.count);
                    }
                }
            }
        }
        out
    }
}

/// Wrap a non-empty label body in braces.
fn braced(key: &str) -> String {
    if key.is_empty() {
        String::new()
    } else {
        format!("{{{key}}}")
    }
}

// ---------------------------------------------------------------------------
// Request ids
// ---------------------------------------------------------------------------

/// The next process-unique request id (monotone from 1).
pub fn next_request_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed (or still-open) span record.  Indices — `parent` and
/// positions in the vector [`trace_finish`] returns — are in span
/// *open* order.
#[derive(Clone, Debug)]
pub struct SpanRec {
    /// The span's name, e.g. `service.query`.
    pub name: &'static str,
    /// Index of the enclosing span, `None` for a root.
    pub parent: Option<u32>,
    /// Nanoseconds from trace start to span open.
    pub start_ns: u64,
    /// Wall-clock nanoseconds the span was open (0 while open).
    pub dur_ns: u64,
    /// `key=value` annotations added via [`Span::note`].
    pub notes: Vec<(&'static str, String)>,
}

struct TraceBuf {
    t0: Instant,
    spans: Vec<SpanRec>,
    /// Indices of currently-open spans, innermost last.
    open: Vec<u32>,
}

thread_local! {
    static TRACE: RefCell<Option<TraceBuf>> = const { RefCell::new(None) };
}

/// Whether this thread is currently recording spans.
pub fn trace_active() -> bool {
    TRACE.with(|t| t.borrow().is_some())
}

/// Arm span recording on this thread.  A no-op if a trace is already
/// active (the outer owner keeps it; see [`trace_mark`] for subtree
/// extraction).
pub fn trace_start() {
    TRACE.with(|t| {
        let mut buf = t.borrow_mut();
        if buf.is_none() {
            *buf = Some(TraceBuf {
                t0: Instant::now(),
                spans: Vec::new(),
                open: Vec::new(),
            });
        }
    });
}

/// Disarm recording and return every span recorded since
/// [`trace_start`] (empty if no trace was active).
pub fn trace_finish() -> Vec<SpanRec> {
    TRACE
        .with(|t| t.borrow_mut().take())
        .map(|buf| buf.spans)
        .unwrap_or_default()
}

/// The current span count — a cursor for [`trace_since`].
pub fn trace_mark() -> usize {
    TRACE.with(|t| t.borrow().as_ref().map_or(0, |buf| buf.spans.len()))
}

/// The spans recorded since `mark`, with parent indices rebased to the
/// returned slice (parents opened before `mark` become roots).  The
/// trace stays active — this is how a request handler extracts its
/// own subtree out of a server-owned trace.
pub fn trace_since(mark: usize) -> Vec<SpanRec> {
    TRACE.with(|t| {
        t.borrow().as_ref().map_or_else(Vec::new, |buf| {
            buf.spans
                .get(mark..)
                .unwrap_or_default()
                .iter()
                .map(|span| {
                    let mut span = span.clone();
                    span.parent = span
                        .parent
                        .and_then(|p| (p as usize).checked_sub(mark).map(|p| p as u32));
                    span
                })
                .collect()
        })
    })
}

/// A guard for one span: created by [`span`], closed (duration
/// stamped) on drop.  Inert when no trace is active.
#[must_use = "a span measures the scope it is alive in"]
pub struct Span {
    idx: Option<u32>,
}

/// Open a span named `name` under the innermost open span of this
/// thread's trace.  When no trace is active this is one thread-local
/// check and the returned guard does nothing.
pub fn span(name: &'static str) -> Span {
    TRACE.with(|t| {
        let mut slot = t.borrow_mut();
        let Some(buf) = slot.as_mut() else {
            return Span { idx: None };
        };
        let idx = buf.spans.len() as u32;
        let start_ns = u64::try_from(buf.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        buf.spans.push(SpanRec {
            name,
            parent: buf.open.last().copied(),
            start_ns,
            dur_ns: 0,
            notes: Vec::new(),
        });
        buf.open.push(idx);
        Span { idx: Some(idx) }
    })
}

impl Span {
    /// Whether this guard is recording (a trace was active at open).
    pub fn active(&self) -> bool {
        self.idx.is_some()
    }

    /// Attach a `key=value` annotation.  `value` is only formatted
    /// when the span is recording.
    pub fn note(&self, key: &'static str, value: impl std::fmt::Display) {
        let Some(idx) = self.idx else { return };
        let text = value.to_string();
        TRACE.with(|t| {
            if let Some(buf) = t.borrow_mut().as_mut() {
                if let Some(span) = buf.spans.get_mut(idx as usize) {
                    span.notes.push((key, text));
                }
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(idx) = self.idx else { return };
        TRACE.with(|t| {
            if let Some(buf) = t.borrow_mut().as_mut() {
                let elapsed = u64::try_from(buf.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
                if let Some(span) = buf.spans.get_mut(idx as usize) {
                    span.dur_ns = elapsed.saturating_sub(span.start_ns);
                }
                buf.open.retain(|&i| i != idx);
            }
        });
    }
}

/// Render spans as a JSON tree: each node carries `name`, `start_ns`,
/// `dur_ns`, `notes` (object), and `children` (array).  A single root
/// renders as an object, several as an array.
pub fn trace_to_json(spans: &[SpanRec]) -> Json {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.parent {
            Some(p) if (p as usize) < i => children[p as usize].push(i),
            _ => roots.push(i),
        }
    }
    fn node(spans: &[SpanRec], children: &[Vec<usize>], i: usize) -> Json {
        let span = &spans[i];
        Json::object([
            ("name", Json::Str(span.name.to_string())),
            (
                "start_ns",
                Json::Int(span.start_ns.min(i64::MAX as u64) as i64),
            ),
            ("dur_ns", Json::Int(span.dur_ns.min(i64::MAX as u64) as i64)),
            (
                "notes",
                Json::Object(
                    span.notes
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::Str(v.clone())))
                        .collect(),
                ),
            ),
            (
                "children",
                Json::Array(
                    children[i]
                        .iter()
                        .map(|&c| node(spans, children, c))
                        .collect(),
                ),
            ),
        ])
    }
    if roots.len() == 1 {
        node(spans, &children, roots[0])
    } else {
        Json::Array(roots.iter().map(|&r| node(spans, &children, r)).collect())
    }
}

/// Render spans as an indented text tree (`name 123µs (k=v, …)` per
/// line) — the `:trace` REPL view.
pub fn trace_text(spans: &[SpanRec]) -> String {
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots = Vec::new();
    for (i, span) in spans.iter().enumerate() {
        match span.parent {
            Some(p) if (p as usize) < i => children[p as usize].push(i),
            _ => roots.push(i),
        }
    }
    fn write_node(
        out: &mut String,
        spans: &[SpanRec],
        children: &[Vec<usize>],
        i: usize,
        depth: usize,
    ) {
        let span = &spans[i];
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "{} {}µs", span.name, span.dur_ns / 1_000);
        if !span.notes.is_empty() {
            out.push_str(" (");
            for (j, (key, value)) in span.notes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{key}={value}");
            }
            out.push(')');
        }
        out.push('\n');
        for &c in &children[i] {
            write_node(out, spans, children, c, depth + 1);
        }
    }
    let mut out = String::new();
    for &r in &roots {
        write_node(&mut out, spans, &children, r, 0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_across_threads() {
        let counter = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..1_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.value(), 4_000);
        counter.add(5);
        assert_eq!(counter.value(), 4_005);
    }

    #[test]
    fn gauge_tracks_flight() {
        let gauge = Gauge::new();
        gauge.add(3);
        gauge.sub(1);
        assert_eq!(gauge.value(), 2);
        gauge.set(-7);
        assert_eq!(gauge.value(), -7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        // 10 fast (≤ 2µs bucket) and 2 slow (~1ms) observations.
        for _ in 0..10 {
            h.observe(Duration::from_micros(2));
        }
        for _ in 0..2 {
            h.observe(Duration::from_micros(1_000));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 12);
        assert!(
            (snap.sum_seconds - 0.00202).abs() < 1e-9,
            "{}",
            snap.sum_seconds
        );
        // Cumulative buckets are monotone and end at the total count.
        assert!(snap.buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(snap.buckets.last().unwrap().1, 12);
        assert_eq!(snap.buckets.last().unwrap().0, f64::INFINITY);
        // p50 lands in the 2µs bucket, p99 in the 1024µs bucket.
        assert!((snap.quantile(0.5) - 2e-6).abs() < 1e-12);
        assert!((snap.quantile(0.99) - 1.024e-3).abs() < 1e-9);
        // Empty histogram quantiles are 0.
        assert_eq!(Histogram::new().snapshot().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_extremes_land_in_end_buckets() {
        let h = Histogram::new();
        h.observe(Duration::from_nanos(1));
        h.observe(Duration::from_secs(3_600));
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0].1, 1, "sub-µs goes to the first bucket");
        assert_eq!(snap.buckets.last().unwrap().1, 2, "an hour goes to +Inf");
        // The +Inf observation reports the largest finite bound.
        assert!(snap.quantile(1.0).is_finite());
    }

    #[test]
    fn registry_renders_prometheus_text() {
        let registry = Registry::new();
        let hits = registry.counter("rq_hits_total", "Hits.");
        hits.add(3);
        // A second handle to the same series shares the cells.
        registry.counter("rq_hits_total", "Hits.").inc();
        assert_eq!(hits.value(), 4);
        registry.gauge("rq_in_flight", "In flight.").set(2);
        registry
            .histogram_with("rq_seconds", "Latency.", &[("endpoint", "/query")])
            .observe(Duration::from_micros(3));
        let owned = Counter::new();
        owned.add(9);
        registry.adopt_counter("rq_cache_hits_total", "Cache hits.", &[], &owned);
        owned.inc();

        let text = registry.render();
        assert!(text.contains("# HELP rq_hits_total Hits.\n"), "{text}");
        assert!(text.contains("# TYPE rq_hits_total counter\n"));
        assert!(text.contains("rq_hits_total 4\n"));
        assert!(text.contains("# TYPE rq_in_flight gauge\n"));
        assert!(text.contains("rq_in_flight 2\n"));
        assert!(text.contains("# TYPE rq_seconds histogram\n"));
        assert!(text.contains("rq_seconds_bucket{endpoint=\"/query\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("rq_seconds_count{endpoint=\"/query\"} 1\n"));
        assert!(
            text.contains("rq_cache_hits_total 10\n"),
            "adopted counter exports the cache's own cells: {text}"
        );
        // Families render in sorted order: HELP precedes TYPE precedes
        // samples for each family.
        let help_at = text.find("# HELP rq_seconds ").unwrap();
        let type_at = text.find("# TYPE rq_seconds ").unwrap();
        assert!(help_at < type_at);
    }

    #[test]
    fn label_values_escape() {
        assert_eq!(label_key(&[("q", "a\"b\\c\nd")]), "q=\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn spans_record_nesting_and_notes() {
        assert!(!trace_active());
        trace_start();
        assert!(trace_active());
        {
            let root = span("root");
            root.note("answers", 3);
            {
                let child = span("child");
                assert!(child.active());
                std::thread::sleep(Duration::from_millis(1));
            }
            let _sibling = span("sibling");
        }
        let spans = trace_finish();
        assert!(!trace_active());
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].notes, vec![("answers", "3".to_string())]);
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(0));
        // The root was open across both children: its duration bounds
        // the sum of theirs.
        assert!(spans[0].dur_ns >= spans[1].dur_ns + spans[2].dur_ns);
        assert!(spans[1].dur_ns >= 1_000_000, "slept a millisecond");
    }

    #[test]
    fn spans_are_inert_without_a_trace() {
        let guard = span("nothing");
        assert!(!guard.active());
        guard.note("ignored", 1);
        drop(guard);
        assert!(trace_finish().is_empty());
    }

    #[test]
    fn trace_since_rebases_parents() {
        trace_start();
        let outer = span("outer");
        let mark = trace_mark();
        {
            let _inner = span("inner");
            let _leaf = span("leaf");
        }
        let subtree = trace_since(mark);
        drop(outer);
        let all = trace_finish();
        assert_eq!(subtree.len(), 2);
        assert_eq!(subtree[0].name, "inner");
        assert_eq!(
            subtree[0].parent, None,
            "parent before the mark becomes a root"
        );
        assert_eq!(subtree[1].parent, Some(0), "in-subtree parents rebase");
        assert_eq!(all.len(), 3, "the outer trace kept everything");
    }

    #[test]
    fn trace_json_and_text_render_trees() {
        trace_start();
        {
            let root = span("root");
            root.note("k", "v");
            let _child = span("child");
        }
        let spans = trace_finish();
        let json = trace_to_json(&spans);
        assert_eq!(json.get("name").and_then(Json::as_str), Some("root"));
        let kids = json.get("children").and_then(Json::as_array).unwrap();
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].get("name").and_then(Json::as_str), Some("child"));
        assert_eq!(
            json.get("notes").unwrap().get("k").and_then(Json::as_str),
            Some("v")
        );
        let root_dur = json.get("dur_ns").and_then(Json::as_i64).unwrap();
        let child_dur = kids[0].get("dur_ns").and_then(Json::as_i64).unwrap();
        assert!(root_dur >= child_dur);

        let text = trace_text(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("root "), "{text}");
        assert!(lines[0].contains("(k=v)"));
        assert!(lines[1].starts_with("  child "));
    }

    #[test]
    fn request_ids_are_unique_and_monotone() {
        let a = next_request_id();
        let b = next_request_id();
        assert!(b > a);
    }
}
