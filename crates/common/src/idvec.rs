//! Dense vectors indexed by interned ids.
//!
//! Interners hand out dense `u32` ids, so per-id tables are best stored as
//! plain vectors rather than hash maps.  `IdVec` wraps that pattern with the
//! id newtype as the index type, preventing accidental cross-indexing (e.g.
//! indexing a per-predicate table with a constant id).

use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// Types usable as an [`IdVec`] index.
pub trait IdLike: Copy {
    /// The raw index.
    fn index(self) -> usize;
    /// Build from a raw index.
    fn from_index(i: usize) -> Self;
}

macro_rules! impl_idlike {
    ($($t:ty),*) => {
        $(impl IdLike for $t {
            #[inline]
            fn index(self) -> usize { self.index() }
            #[inline]
            fn from_index(i: usize) -> Self { <$t>::from_index(i) }
        })*
    };
}

impl_idlike!(
    crate::intern::Const,
    crate::intern::Pred,
    crate::intern::Var
);

impl IdLike for usize {
    #[inline]
    fn index(self) -> usize {
        self
    }
    #[inline]
    fn from_index(i: usize) -> Self {
        i
    }
}

/// A `Vec<T>` that can only be indexed by `I`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdVec<I: IdLike, T> {
    raw: Vec<T>,
    _marker: PhantomData<fn(I)>,
}

impl<I: IdLike, T> Default for IdVec<I, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<I: IdLike, T> IdVec<I, T> {
    /// New, empty table.
    pub fn new() -> Self {
        Self {
            raw: Vec::new(),
            _marker: PhantomData,
        }
    }

    /// New table with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            raw: Vec::with_capacity(cap),
            _marker: PhantomData,
        }
    }

    /// Append a value, returning the id it was stored under.
    pub fn push(&mut self, value: T) -> I {
        let id = I::from_index(self.raw.len());
        self.raw.push(value);
        id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Iterate over `(id, &value)` pairs.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw
            .iter()
            .enumerate()
            .map(|(i, v)| (I::from_index(i), v))
    }

    /// Iterate over values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterate over values mutably.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.raw.iter_mut()
    }

    /// Iterate over the ids only.
    pub fn ids(&self) -> impl Iterator<Item = I> + '_ {
        (0..self.raw.len()).map(I::from_index)
    }

    /// Get without panicking.
    pub fn get(&self, id: I) -> Option<&T> {
        self.raw.get(id.index())
    }

    /// Grow the table to hold `id`, filling gaps with `fill()`.
    pub fn ensure(&mut self, id: I, mut fill: impl FnMut() -> T) {
        while self.raw.len() <= id.index() {
            self.raw.push(fill());
        }
    }

    /// Borrow the backing slice.
    pub fn raw(&self) -> &[T] {
        &self.raw
    }
}

impl<I: IdLike, T> Index<I> for IdVec<I, T> {
    type Output = T;
    #[inline]
    fn index(&self, id: I) -> &T {
        &self.raw[id.index()]
    }
}

impl<I: IdLike, T> IndexMut<I> for IdVec<I, T> {
    #[inline]
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.raw[id.index()]
    }
}

impl<I: IdLike, T> FromIterator<T> for IdVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self {
            raw: iter.into_iter().collect(),
            _marker: PhantomData,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::Pred;

    #[test]
    fn push_returns_sequential_ids() {
        let mut v: IdVec<Pred, &str> = IdVec::new();
        let a = v.push("up");
        let b = v.push("down");
        assert_eq!(a, Pred(0));
        assert_eq!(b, Pred(1));
        assert_eq!(v[a], "up");
        assert_eq!(v[b], "down");
    }

    #[test]
    fn ensure_fills_gaps() {
        let mut v: IdVec<Pred, u32> = IdVec::new();
        v.ensure(Pred(3), || 7);
        assert_eq!(v.len(), 4);
        assert_eq!(v[Pred(2)], 7);
    }

    #[test]
    fn iter_enumerated_pairs_ids() {
        let v: IdVec<usize, char> = "abc".chars().collect();
        let pairs: Vec<(usize, char)> = v.iter_enumerated().map(|(i, &c)| (i, c)).collect();
        assert_eq!(pairs, vec![(0, 'a'), (1, 'b'), (2, 'c')]);
    }
}
