//! Instrumentation counters shared by every evaluation strategy.
//!
//! The paper's complexity table compares strategies under a unit-cost model:
//! "we assume that any tuple in a base relation can be retrieved in constant
//! time".  These counters measure exactly the quantities that model charges
//! for, so the benchmark harness can reproduce the table as operation counts
//! rather than unportable wall-clock numbers.

use std::fmt;
use std::ops::AddAssign;

/// Operation counts accumulated during one query evaluation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Tuples fetched from base relations (the `t` of Theorems 3–4).
    pub tuples_retrieved: u64,
    /// Nodes inserted into the traversal graph `G` (or, for bottom-up
    /// strategies, facts inserted into derived relations).
    pub nodes_inserted: u64,
    /// Arcs followed / rule instantiations fired.
    pub rule_firings: u64,
    /// Iterations of the strategy's main loop (the `h` of Theorem 4).
    pub iterations: u64,
    /// Index probes made against the extensional database.
    pub index_probes: u64,
    /// Of the index probes, those served by a publish-time compact
    /// store (CSR slice or columnar scan) — contiguous reads, no trie
    /// walk.
    pub csr_probes: u64,
    /// Of the index probes, those that walked a hash-trie index (or
    /// built one on the spot).
    pub trie_probes: u64,
}

impl Counters {
    /// Fresh, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total work under the unit-cost model: every counted operation is one
    /// unit.  This is the scalar the complexity table speaks about.
    pub fn total_work(&self) -> u64 {
        self.tuples_retrieved + self.nodes_inserted + self.rule_firings + self.index_probes
    }

    /// Reset all counts to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Self) {
        self.tuples_retrieved += rhs.tuples_retrieved;
        self.nodes_inserted += rhs.nodes_inserted;
        self.rule_firings += rhs.rule_firings;
        self.iterations += rhs.iterations;
        self.index_probes += rhs.index_probes;
        self.csr_probes += rhs.csr_probes;
        self.trie_probes += rhs.trie_probes;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuples={} nodes={} firings={} iters={} probes={} csr={} trie={} (work={})",
            self.tuples_retrieved,
            self.nodes_inserted,
            self.rule_firings,
            self.iterations,
            self.index_probes,
            self.csr_probes,
            self.trie_probes,
            self.total_work()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_work_excludes_iterations() {
        let c = Counters {
            tuples_retrieved: 10,
            nodes_inserted: 5,
            rule_firings: 3,
            iterations: 100,
            index_probes: 2,
            ..Counters::default()
        };
        assert_eq!(c.total_work(), 20);
    }

    #[test]
    fn total_work_excludes_the_probe_split() {
        // `csr_probes`/`trie_probes` classify `index_probes`; counting
        // them again would double-charge the unit-cost model.
        let c = Counters {
            index_probes: 5,
            csr_probes: 3,
            trie_probes: 2,
            ..Counters::default()
        };
        assert_eq!(c.total_work(), 5);
    }

    #[test]
    fn add_assign_sums_fieldwise() {
        let mut a = Counters {
            tuples_retrieved: 1,
            nodes_inserted: 2,
            rule_firings: 3,
            iterations: 4,
            index_probes: 5,
            csr_probes: 4,
            trie_probes: 1,
        };
        a += a;
        assert_eq!(a.tuples_retrieved, 2);
        assert_eq!(a.iterations, 8);
        assert_eq!(a.csr_probes, 8);
        assert_eq!(a.trie_probes, 2);
    }

    #[test]
    fn display_is_stable() {
        let c = Counters::new();
        assert_eq!(
            c.to_string(),
            "tuples=0 nodes=0 firings=0 iters=0 probes=0 csr=0 trie=0 (work=0)"
        );
    }
}
