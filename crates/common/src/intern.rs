//! String and value interning.
//!
//! Every constant, predicate name, and variable name in a Datalog program is
//! interned to a dense `u32` id once, at parse time.  All evaluation
//! strategies then work purely on integers, which keeps hash probes cheap and
//! tuple storage compact (the perf guide's "smaller integers" advice).

use crate::hash::FxHashMap;
use crate::pshare::{PMap, PVec};
use std::fmt;

/// Declares a `u32` newtype id with the plumbing an interner needs.
macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Build from a raw index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                debug_assert!(i <= u32::MAX as usize);
                Self(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// An interned constant (a domain element of the database).
    Const,
    "c"
);
define_id!(
    /// An interned predicate (relation) name.
    Pred,
    "p"
);
define_id!(
    /// An interned variable name (scoped to a single rule).
    Var,
    "v"
);

/// The value a [`Const`] stands for.
///
/// The paper's flight example (§4) compares departure/arrival times with the
/// built-in `<`, so constants carry either an integer or a string value and
/// integers order numerically.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstValue {
    /// An integer constant such as `1430`.
    Int(i64),
    /// A symbolic constant such as `john`.
    Str(String),
    /// A tuple of other constants.  Produced by the §4 transformation, whose
    /// binary relations range over tuples `t(X^b)` / `t(X^f)` of original
    /// constants.  Never produced by the parser.
    Tuple(Vec<Const>),
}

impl ConstValue {
    /// Orders two values the way the built-in comparison predicates do:
    /// integers numerically, strings lexicographically, tuples
    /// lexicographically by component id.  Mixed kinds order by kind
    /// (Int < Str < Tuple) so that comparisons are total.
    pub fn builtin_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cmp(other)
    }
}

/// Interner for constants, mapping [`ConstValue`]s to dense [`Const`] ids.
///
/// Backed by persistent storage ([`PVec`] / [`PMap`]) so the serving
/// layer's snapshot publication can clone a whole program in O(pointer
/// bumps): an ingest that interns three new constants shares all prior
/// interner structure with the parent epoch.
#[derive(Default, Clone)]
pub struct ConstInterner {
    values: PVec<ConstValue>,
    lookup: PMap<ConstValue, Const>,
}

impl ConstInterner {
    /// New, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a value, returning its id (stable across repeat calls).
    pub fn intern(&mut self, value: ConstValue) -> Const {
        if let Some(&id) = self.lookup.get(&value) {
            return id;
        }
        let id = Const::from_index(self.values.len());
        self.values.push(value.clone());
        self.lookup.insert(value, id);
        id
    }

    /// Intern a symbolic constant.
    pub fn intern_str(&mut self, s: &str) -> Const {
        if let Some(&id) = self.lookup.get(&ConstValue::Str(s.to_owned())) {
            return id;
        }
        self.intern(ConstValue::Str(s.to_owned()))
    }

    /// Intern an integer constant.
    pub fn intern_int(&mut self, i: i64) -> Const {
        self.intern(ConstValue::Int(i))
    }

    /// Intern a tuple constant (used by the §4 transformation).
    pub fn intern_tuple(&mut self, components: Vec<Const>) -> Const {
        self.intern(ConstValue::Tuple(components))
    }

    /// The value behind an id.
    pub fn value(&self, id: Const) -> &ConstValue {
        self.values.get(id.index()).expect("unknown constant id")
    }

    /// Look up an already-interned value without inserting.
    pub fn get(&self, value: &ConstValue) -> Option<Const> {
        self.lookup.get(value).copied()
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Render a constant for display, recursing into tuples.
    pub fn display(&self, id: Const) -> String {
        match self.value(id) {
            ConstValue::Int(i) => i.to_string(),
            ConstValue::Str(s) => s.clone(),
            ConstValue::Tuple(parts) => {
                let inner: Vec<String> = parts.iter().map(|&c| self.display(c)).collect();
                format!("t({})", inner.join(","))
            }
        }
    }
}

/// Interner for plain names (predicates, variables).
#[derive(Default, Clone)]
pub struct NameInterner {
    names: Vec<String>,
    lookup: FxHashMap<String, u32>,
}

impl NameInterner {
    /// New, empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a name, returning its dense index.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.lookup.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_owned());
        self.lookup.insert(name.to_owned(), id);
        id
    }

    /// The name behind an index.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        self.lookup.get(name).copied()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interners_are_shareable_across_threads() {
        // The serving layer shares `Arc<Program>` snapshots (which embed
        // these interners) across query worker threads; keep them free of
        // `Rc`/`Cell` state.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Const>();
        assert_send_sync::<Pred>();
        assert_send_sync::<ConstValue>();
        assert_send_sync::<ConstInterner>();
        assert_send_sync::<NameInterner>();
    }

    #[test]
    fn const_interning_is_stable() {
        let mut i = ConstInterner::new();
        let a = i.intern_str("john");
        let b = i.intern_str("mary");
        let a2 = i.intern_str("john");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.display(a), "john");
    }

    #[test]
    fn int_and_str_do_not_collide() {
        let mut i = ConstInterner::new();
        let n = i.intern_int(42);
        let s = i.intern_str("42");
        assert_ne!(n, s);
        assert_eq!(i.value(n), &ConstValue::Int(42));
    }

    #[test]
    fn tuple_interning() {
        let mut i = ConstInterner::new();
        let a = i.intern_str("a");
        let b = i.intern_str("b");
        let t1 = i.intern_tuple(vec![a, b]);
        let t2 = i.intern_tuple(vec![a, b]);
        let t3 = i.intern_tuple(vec![b, a]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
        assert_eq!(i.display(t1), "t(a,b)");
    }

    #[test]
    fn nested_tuple_display() {
        let mut i = ConstInterner::new();
        let a = i.intern_str("a");
        let inner = i.intern_tuple(vec![a]);
        let outer = i.intern_tuple(vec![inner, a]);
        assert_eq!(i.display(outer), "t(t(a),a)");
    }

    #[test]
    fn builtin_cmp_orders_ints_numerically() {
        use std::cmp::Ordering;
        assert_eq!(
            ConstValue::Int(9).builtin_cmp(&ConstValue::Int(10)),
            Ordering::Less
        );
        // String "9" > "10" lexicographically; ints must not go that path.
        assert_eq!(
            ConstValue::Str("9".into()).builtin_cmp(&ConstValue::Str("10".into())),
            Ordering::Greater
        );
    }

    #[test]
    fn name_interner_roundtrip() {
        let mut n = NameInterner::new();
        let p = n.intern("sg");
        let q = n.intern("up");
        assert_eq!(n.intern("sg"), p);
        assert_eq!(n.name(p), "sg");
        assert_eq!(n.name(q), "up");
        assert_eq!(n.get("down"), None);
    }
}
