//! Workspace-wide thread-count policy.
//!
//! Every layer that spawns workers — the service's batch fan-out and
//! the engine's parallel machine-instance expansion — resolves its
//! requested parallelism through [`thread_cap`], so one environment
//! variable (`RQC_THREADS`) can force the whole stack single-threaded.
//! CI runs the test suite once with `RQC_THREADS=1` to catch
//! parallelism-order nondeterminism: under the cap every code path
//! must produce byte-identical answers to the concurrent run.

use std::sync::OnceLock;

/// The process-wide thread cap from the `RQC_THREADS` environment
/// variable (`usize::MAX` when unset or unparsable; values below 1 are
/// clamped to 1).  Read once and cached: the variable is a process
/// configuration, not a runtime knob.
pub fn thread_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("RQC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
            .unwrap_or(usize::MAX)
    })
}

/// `requested` worker threads clamped to at least 1 and at most the
/// [`thread_cap`].
pub fn capped_threads(requested: usize) -> usize {
    requested.max(1).min(thread_cap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_threads_clamps_low_and_respects_cap() {
        assert!(capped_threads(0) >= 1);
        assert!(capped_threads(8) <= thread_cap());
        assert_eq!(capped_threads(1), 1);
    }
}
