//! A fast, non-cryptographic hasher for interned integer keys.
//!
//! The hot paths of every evaluation strategy in this workspace are hash-map
//! probes keyed by small interned integers (`Const`, `Pred`, state ids).
//! The standard library's SipHash is collision-resistant but an order of
//! magnitude slower than necessary for such keys.  `rustc-hash` is not in the
//! allowed offline dependency set, so we implement the same FxHash algorithm
//! (a multiply-xor mix, originally from Firefox) here.  It is not suitable
//! for hashing attacker-controlled data; every key in this workspace comes
//! from our own interner.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit variant of the Fx multiply-xor hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A streaming hasher implementing the FxHash mix.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume full words, then the tail.  This path is only taken for
        // string keys (interner lookups); integer keys use the fast methods
        // below.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            buf[7] = rem.len() as u8;
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Construct an empty [`FxHashMap`] with at least `cap` capacity.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// Construct an empty [`FxHashSet`] with at least `cap` capacity.
pub fn set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_one(42u32), hash_one(42u32));
        assert_eq!(hash_one("hello"), hash_one("hello"));
    }

    #[test]
    fn distinguishes_nearby_integers() {
        let a = hash_one(1u64);
        let b = hash_one(2u64);
        assert_ne!(a, b);
    }

    #[test]
    fn distinguishes_string_lengths() {
        // The tail encoding folds the length in, so a prefix must not
        // collide with its extension.
        assert_ne!(hash_one("ab"), hash_one("ab\0"));
        assert_ne!(hash_one(""), hash_one("\0"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = map_with_capacity(16);
        for i in 0..1000u32 {
            m.insert(i, i * 2);
        }
        for i in 0..1000u32 {
            assert_eq!(m[&i], i * 2);
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<(u32, u32)> = set_with_capacity(4);
        assert!(s.insert((1, 2)));
        assert!(!s.insert((1, 2)));
        assert!(s.insert((2, 1)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn pair_order_matters() {
        assert_ne!(hash_one((1u32, 2u32)), hash_one((2u32, 1u32)));
    }
}
