//! Shared substrate for the `recursive-queries` workspace.
//!
//! This crate holds the cross-cutting pieces every other crate builds on:
//!
//! * [`hash`] — an FxHash-style fast hasher and map/set aliases;
//! * [`intern`] — interned constants, predicates, and variables;
//! * [`idvec`] — dense tables indexed by interned ids;
//! * [`counters`] — the unit-cost instrumentation counters that the
//!   benchmark harness uses to reproduce the paper's complexity table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod hash;
pub mod idvec;
pub mod intern;

pub use counters::Counters;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use idvec::{IdLike, IdVec};
pub use intern::{Const, ConstInterner, ConstValue, NameInterner, Pred, Var};
