//! Shared substrate for the `recursive-queries` workspace.
//!
//! This crate holds the cross-cutting pieces every other crate builds on:
//!
//! * [`hash`] — an FxHash-style fast hasher and map/set aliases;
//! * [`intern`] — interned constants, predicates, and variables;
//! * [`idvec`] — dense tables indexed by interned ids;
//! * [`json`] — a tiny hand-rolled JSON value type with encoder and
//!   decoder, shared by the `rq-wire` HTTP API and the bench-summary
//!   writer (no registry access, so no serde);
//! * [`memo`] — a bounded concurrent memo shared by the epoch-scoped
//!   evaluation caches;
//! * [`counters`] — the unit-cost instrumentation counters that the
//!   benchmark harness uses to reproduce the paper's complexity table;
//! * [`obs`] — the observability substrate: a sharded metrics
//!   registry (counters, gauges, log-bucket histograms) with a
//!   Prometheus text renderer, plus thread-local structured spans
//!   behind the `"trace": true` query responses and the slow-query
//!   log;
//! * [`pshare`] — persistent (structurally shared) chunked vectors and
//!   hash tries, the storage substrate that makes snapshot epochs cost
//!   O(delta) instead of O(database);
//! * [`threads`] — the `RQC_THREADS` thread-count cap every
//!   parallelism-spawning layer resolves its worker count through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod hash;
pub mod idvec;
pub mod intern;
pub mod json;
pub mod memo;
pub mod obs;
pub mod pshare;
pub mod threads;

pub use counters::Counters;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use idvec::{IdLike, IdVec};
pub use intern::{Const, ConstInterner, ConstValue, NameInterner, Pred, Var};
pub use json::{Json, JsonError};
pub use memo::{BoundedMemo, MemoStats};
pub use obs::{Counter, Gauge, Histogram, Registry};
pub use pshare::{PMap, PVec};
pub use threads::{capped_threads, thread_cap};
