//! Persistent (structurally shared) collections for O(delta) snapshots.
//!
//! The serving layer publishes immutable database epochs by cloning the
//! current version and applying a small delta.  With ordinary `Vec` /
//! `HashMap` storage that clone costs O(whole database); the two
//! structures here make it cost O(pointer bumps) instead, in the mold
//! of the `im` crate (swap these for `im::Vector` / `im::HashMap` when
//! registry access is available — the API surface below is the subset
//! the workspace uses):
//!
//! * [`PVec`] — a chunked persistent vector.  Elements live in fixed-
//!   capacity chunks behind `Arc`s; cloning bumps one refcount per
//!   chunk, and pushing into a shared vector copies **only the tail
//!   chunk** (copy-on-write), leaving every full chunk shared with the
//!   parent.
//! * [`PMap`] — a hash-array-mapped trie (32-way branching on 5-bit
//!   hash slices).  Cloning bumps the root refcount; inserting into a
//!   shared map path-copies the O(log₃₂ n) nodes from the root to the
//!   touched leaf and shares everything else.
//!
//! Both structures detect unique ownership (`Arc::make_mut`), so the
//! common single-owner case — bottom-up evaluation filling a fresh
//! database — mutates in place with no copying at all.

use crate::hash::FxHasher;
use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Default chunk capacity for [`PVec`] (elements per chunk).
pub const DEFAULT_CHUNK: usize = 256;

/// A chunked persistent vector with tail-chunk copy-on-write.
#[derive(Debug)]
pub struct PVec<T> {
    chunk_cap: usize,
    len: usize,
    chunks: Vec<Arc<Vec<T>>>,
}

impl<T> Clone for PVec<T> {
    fn clone(&self) -> Self {
        Self {
            chunk_cap: self.chunk_cap,
            len: self.len,
            chunks: self.chunks.clone(), // Arc bumps only.
        }
    }
}

impl<T> Default for PVec<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PVec<T> {
    /// Empty vector with the default chunk capacity.
    pub fn new() -> Self {
        Self::with_chunk_capacity(DEFAULT_CHUNK)
    }

    /// Empty vector with an explicit chunk capacity.  Callers storing
    /// fixed-stride records (e.g. `arity` constants per tuple) pick a
    /// capacity that is a multiple of the stride so no record ever
    /// straddles a chunk boundary.
    pub fn with_chunk_capacity(chunk_cap: usize) -> Self {
        assert!(chunk_cap > 0, "chunk capacity must be positive");
        Self {
            chunk_cap,
            len: 0,
            chunks: Vec::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The element at `i`.
    pub fn get(&self, i: usize) -> Option<&T> {
        if i >= self.len {
            return None;
        }
        self.chunks[i / self.chunk_cap].get(i % self.chunk_cap)
    }

    /// A contiguous run of `len` elements starting at `start`.  The run
    /// must not straddle a chunk boundary — guaranteed by construction
    /// when the chunk capacity is a multiple of the record stride.
    pub fn get_slice(&self, start: usize, len: usize) -> &[T] {
        debug_assert!(start + len <= self.len);
        let chunk = start / self.chunk_cap;
        let off = start % self.chunk_cap;
        debug_assert!(
            off + len <= self.chunk_cap,
            "record straddles a chunk boundary (stride does not divide chunk capacity)"
        );
        &self.chunks[chunk][off..off + len]
    }

    /// Iterate all elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Number of chunks currently allocated (for sharing diagnostics).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// How many chunks `self` physically shares with `other` (same
    /// position, same `Arc`) — the structural-sharing test hook.
    pub fn shared_chunks_with(&self, other: &Self) -> usize {
        self.chunks
            .iter()
            .zip(other.chunks.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Element slots allocated in the tail chunk beyond its live
    /// prefix.  Two sources produce the excess: a fresh tail chunk is
    /// allocated at the full chunk capacity before it fills, and a
    /// copy-on-write push into a shared tail grows the detached copy
    /// geometrically.  [`Self::compact_tail`] reclaims it.
    pub fn tail_excess_capacity(&self) -> usize {
        self.chunks
            .last()
            .map(|c| c.capacity() - c.len())
            .unwrap_or(0)
    }
}

impl<T: Clone> PVec<T> {
    /// Append one element.  If the tail chunk is shared with another
    /// version, only that chunk is copied (O(chunk), not O(len)).
    pub fn push(&mut self, value: T) {
        self.push_slice_inner(std::slice::from_ref(&value));
    }

    /// Append a contiguous record.  `record.len()` must divide the
    /// chunk capacity so records never straddle chunk boundaries —
    /// enforced unconditionally, because a straddling record would
    /// make [`Self::get_slice`] return elements of the wrong record
    /// with no panic.
    pub fn push_slice(&mut self, record: &[T]) {
        if record.is_empty() {
            return;
        }
        assert_eq!(
            self.chunk_cap % record.len(),
            0,
            "record stride must divide chunk capacity"
        );
        self.push_slice_inner(record);
    }

    /// Trim the tail chunk's allocation to its live prefix, returning
    /// the number of element slots reclaimed.  Only a *uniquely owned*
    /// tail is touched: a tail still shared with another version is
    /// that version's live storage, and re-allocating it here would
    /// break the sharing that makes clones cheap.  The serving layer
    /// runs this on each epoch's dirty shards at publish time — the
    /// first slice of background shard compaction: the capacity a
    /// copy-on-write detach carried over (now fully shadowed by the
    /// detached copy's live data) is dropped instead of riding along
    /// for the epoch's lifetime.
    pub fn compact_tail(&mut self) -> usize {
        let Some(tail) = self.chunks.last_mut() else {
            return 0;
        };
        match Arc::get_mut(tail) {
            Some(chunk) => {
                let excess = chunk.capacity() - chunk.len();
                chunk.shrink_to_fit();
                excess
            }
            None => 0,
        }
    }

    fn push_slice_inner(&mut self, record: &[T]) {
        let used = self.len % self.chunk_cap;
        if used == 0 && self.len == self.chunk_cap * self.chunks.len() {
            // Tail chunk full (or no chunks yet): start a fresh one.
            let mut chunk = Vec::with_capacity(self.chunk_cap);
            chunk.extend_from_slice(record);
            self.chunks.push(Arc::new(chunk));
        } else {
            let tail = self.chunks.last_mut().expect("tail chunk exists");
            // COW: clones the tail chunk only if another version holds it.
            Arc::make_mut(tail).extend_from_slice(record);
        }
        self.len += record.len();
    }
}

impl<T> std::ops::Index<usize> for PVec<T> {
    type Output = T;
    #[inline]
    fn index(&self, i: usize) -> &T {
        self.get(i).expect("PVec index out of bounds")
    }
}

impl<'a, T> IntoIterator for &'a PVec<T> {
    type Item = &'a T;
    type IntoIter = std::iter::FlatMap<
        std::slice::Iter<'a, Arc<Vec<T>>>,
        std::slice::Iter<'a, T>,
        fn(&'a Arc<Vec<T>>) -> std::slice::Iter<'a, T>,
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.chunks.iter().flat_map(|c| c.iter())
    }
}

impl<T: Clone> FromIterator<T> for PVec<T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Clone> Extend<T> for PVec<T> {
    fn extend<It: IntoIterator<Item = T>>(&mut self, iter: It) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T: PartialEq> PartialEq for PVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for PVec<T> {}

const BITS: u32 = 5;
const LEVEL_MASK: u64 = 0x1f;
/// Deepest shift at which branches split; two distinct 64-bit hashes
/// always differ in some 5-bit group at or before this shift.
const MAX_SHIFT: u32 = 60;

#[derive(Clone, Debug)]
enum Node<K, V> {
    /// Interior node: `bitmap` bit `i` set means a child exists for
    /// 5-bit hash slice `i`; children are stored compressed, in
    /// ascending slice order.
    Branch {
        bitmap: u32,
        children: Vec<Arc<Node<K, V>>>,
    },
    /// All entries whose full 64-bit hash is `hash` (true collisions
    /// share one leaf).
    Leaf { hash: u64, entries: Vec<(K, V)> },
}

/// A persistent hash map (hash-array-mapped trie).
#[derive(Debug)]
pub struct PMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
    len: usize,
}

impl<K, V> Clone for PMap<K, V> {
    fn clone(&self) -> Self {
        Self {
            root: self.root.clone(), // one Arc bump.
            len: self.len,
        }
    }
}

impl<K, V> Default for PMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

fn hash_of<Q: Hash + ?Sized>(key: &Q) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

impl<K, V> PMap<K, V> {
    /// Empty map.
    pub fn new() -> Self {
        Self { root: None, len: 0 }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether two maps share their root node (total structural
    /// sharing) — the sharing test hook.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            (None, None) => true,
            _ => false,
        }
    }

    /// Iterate all entries in unspecified order.
    pub fn iter(&self) -> PMapIter<'_, K, V> {
        PMapIter {
            stack: self.root.as_deref().into_iter().collect(),
            leaf: None,
        }
    }
}

impl<K: Hash + Eq, V> PMap<K, V> {
    /// Look up `key`.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let h = hash_of(key);
        let mut node = self.root.as_deref()?;
        let mut shift = 0u32;
        loop {
            match node {
                Node::Leaf { hash, entries } => {
                    return if *hash == h {
                        entries
                            .iter()
                            .find(|(k, _)| k.borrow() == key)
                            .map(|(_, v)| v)
                    } else {
                        None
                    };
                }
                Node::Branch { bitmap, children } => {
                    let bit = 1u32 << ((h >> shift) & LEVEL_MASK);
                    if bitmap & bit == 0 {
                        return None;
                    }
                    node = &children[(bitmap & (bit - 1)).count_ones() as usize];
                    shift += BITS;
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.get(key).is_some()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> PMap<K, V> {
    /// Mutable access to the entry for `key`, inserting
    /// `default()` first if absent.  Path-copies only the nodes between
    /// the root and the touched leaf that are shared with other
    /// versions; uniquely owned nodes are mutated in place.
    pub fn entry_mut(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let h = hash_of(&key);
        let root = self.root.get_or_insert_with(|| {
            Arc::new(Node::Branch {
                bitmap: 0,
                children: Vec::new(),
            })
        });
        let (inserted, slot) = Self::entry_in(root, h, key, default);
        if inserted {
            self.len += 1;
        }
        slot
    }

    fn entry_in(
        mut node_arc: &mut Arc<Node<K, V>>,
        h: u64,
        key: K,
        default: impl FnOnce() -> V,
    ) -> (bool, &mut V) {
        let mut shift = 0u32;
        let mut default = Some(default);
        loop {
            // Normalize: a leaf whose hash differs from `h` becomes a
            // one-child branch so the walk below can descend past it.
            {
                let node = Arc::make_mut(node_arc);
                if let Node::Leaf { hash, .. } = node {
                    if *hash != h {
                        debug_assert!(shift <= MAX_SHIFT);
                        let old_bit = 1u32 << ((*hash >> shift) & LEVEL_MASK);
                        let old = std::mem::replace(
                            node,
                            Node::Branch {
                                bitmap: old_bit,
                                children: Vec::new(),
                            },
                        );
                        if let Node::Branch { children, .. } = node {
                            children.push(Arc::new(old));
                        }
                    }
                }
            }
            let node = Arc::make_mut(node_arc);
            match node {
                Node::Leaf { entries, .. } => {
                    if let Some(i) = entries.iter().position(|(k, _)| *k == key) {
                        return (false, &mut entries[i].1);
                    }
                    let value = default.take().expect("default consumed once")();
                    entries.push((key, value));
                    let last = entries.len() - 1;
                    return (true, &mut entries[last].1);
                }
                Node::Branch { bitmap, children } => {
                    let bit = 1u32 << ((h >> shift) & LEVEL_MASK);
                    let pos = (*bitmap & (bit - 1)).count_ones() as usize;
                    if *bitmap & bit == 0 {
                        *bitmap |= bit;
                        children.insert(
                            pos,
                            Arc::new(Node::Leaf {
                                hash: h,
                                entries: Vec::new(),
                            }),
                        );
                    }
                    node_arc = &mut children[pos];
                    shift += BITS;
                }
            }
        }
    }

    /// Insert, returning the previous value if the key was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut pending = Some(value);
        let slot = self.entry_mut(key, || pending.take().expect("fresh insert"));
        match pending.take() {
            // `default` was not called: the key existed; replace.
            Some(v) => Some(std::mem::replace(slot, v)),
            None => None,
        }
    }
}

/// Iterator over [`PMap`] entries.
pub struct PMapIter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
    leaf: Option<std::slice::Iter<'a, (K, V)>>,
}

impl<'a, K, V> Iterator for PMapIter<'a, K, V> {
    type Item = (&'a K, &'a V);
    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(leaf) = &mut self.leaf {
                if let Some((k, v)) = leaf.next() {
                    return Some((k, v));
                }
                self.leaf = None;
            }
            match self.stack.pop()? {
                Node::Leaf { entries, .. } => self.leaf = Some(entries.iter()),
                Node::Branch { children, .. } => {
                    self.stack.extend(children.iter().map(|c| c.as_ref()));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pvec_push_get_iter() {
        let mut v: PVec<u32> = PVec::with_chunk_capacity(4);
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert_eq!(v[7], 7);
        assert_eq!(v.get(10), None);
        let all: Vec<u32> = v.iter().copied().collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert_eq!(v.chunk_count(), 3);
    }

    #[test]
    fn pvec_clone_shares_chunks_and_cow_touches_only_the_tail() {
        let mut v: PVec<u32> = PVec::with_chunk_capacity(4);
        for i in 0..9 {
            v.push(i);
        }
        let snapshot = v.clone();
        assert_eq!(snapshot.shared_chunks_with(&v), 3);
        v.push(9);
        // Full chunks still shared; only the tail chunk was copied.
        assert_eq!(snapshot.shared_chunks_with(&v), 2);
        // The snapshot is unchanged.
        assert_eq!(snapshot.len(), 9);
        assert_eq!(v.len(), 10);
        assert_eq!(snapshot.get(9), None);
        assert_eq!(v[9], 9);
    }

    #[test]
    fn pvec_records_never_straddle_chunks() {
        let mut v: PVec<u32> = PVec::with_chunk_capacity(6);
        for t in 0..7u32 {
            v.push_slice(&[t, t + 100]);
        }
        for t in 0..7 {
            assert_eq!(v.get_slice(t as usize * 2, 2), &[t, t + 100]);
        }
    }

    #[test]
    fn compact_tail_reclaims_only_uniquely_owned_excess() {
        let mut v: PVec<u32> = PVec::with_chunk_capacity(256);
        for i in 0..10 {
            v.push(i);
        }
        // Fresh tail chunk: allocated at full chunk capacity.
        assert_eq!(v.tail_excess_capacity(), 246);
        let reclaimed = v.compact_tail();
        assert_eq!(reclaimed, 246);
        assert_eq!(v.tail_excess_capacity(), 0);
        // Reads are unchanged by compaction.
        assert_eq!(
            v.iter().copied().collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        // A shared tail must not be touched (it is the other version's
        // live storage).
        let snapshot = v.clone();
        assert_eq!(v.compact_tail(), 0);
        assert_eq!(snapshot.shared_chunks_with(&v), 1);
        // Pushing after compaction still works and still COWs.
        v.push(10);
        assert_eq!(snapshot.len(), 10);
        assert_eq!(v.len(), 11);
        assert_eq!(v[10], 10);
    }

    #[test]
    fn pvec_from_iter_and_index() {
        let v: PVec<char> = "abc".chars().collect();
        assert_eq!(v[1], 'b');
        let doubled: String = (&v).into_iter().collect();
        assert_eq!(doubled, "abc");
    }

    #[test]
    fn pmap_insert_get_len() {
        let mut m: PMap<String, u32> = PMap::new();
        assert!(m.is_empty());
        for i in 0..100u32 {
            assert_eq!(m.insert(format!("k{i}"), i), None);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100u32 {
            assert_eq!(m.get(&format!("k{i}")), Some(&i));
        }
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.insert("k7".into(), 700), Some(7));
        assert_eq!(m.len(), 100);
        assert_eq!(m.get("k7"), Some(&700));
    }

    #[test]
    fn pmap_borrowed_key_lookup() {
        let mut m: PMap<Box<[u32]>, u32> = PMap::new();
        m.insert(vec![1, 2].into_boxed_slice(), 12);
        // Probe with the unsized borrow, as Relation::contains does.
        let probe: &[u32] = &[1, 2];
        assert_eq!(m.get(probe), Some(&12));
        assert!(!m.contains_key::<[u32]>(&[2, 1]));
    }

    #[test]
    fn pmap_clone_is_persistent() {
        let mut m: PMap<u64, u64> = PMap::new();
        for i in 0..500 {
            m.insert(i, i * 2);
        }
        let snapshot = m.clone();
        assert!(snapshot.ptr_eq(&m));
        m.insert(1000, 2000);
        *m.entry_mut(3, || 0) = 99;
        assert!(!snapshot.ptr_eq(&m));
        // The snapshot still sees the old world.
        assert_eq!(snapshot.len(), 500);
        assert_eq!(snapshot.get(&1000), None);
        assert_eq!(snapshot.get(&3), Some(&6));
        assert_eq!(m.get(&3), Some(&99));
        assert_eq!(m.len(), 501);
    }

    #[test]
    fn pmap_entry_mut_inserts_default_once() {
        let mut m: PMap<u32, Vec<u32>> = PMap::new();
        m.entry_mut(5, Vec::new).push(1);
        m.entry_mut(5, || panic!("entry exists")).push(2);
        assert_eq!(m.get(&5), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn pmap_iter_sees_every_entry() {
        let mut m: PMap<u32, u32> = PMap::new();
        for i in 0..321 {
            m.insert(i, i + 1);
        }
        let mut seen: Vec<u32> = m.iter().map(|(&k, _)| k).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..321).collect::<Vec<_>>());
        assert!(m.iter().all(|(&k, &v)| v == k + 1));
    }

    #[test]
    fn pmap_survives_many_inserts_interleaved_with_clones() {
        // Chains of clone+insert exercise path copying at every depth.
        let mut versions: Vec<PMap<u64, u64>> = Vec::new();
        let mut m: PMap<u64, u64> = PMap::new();
        for i in 0..2_000u64 {
            // A multiplicative hash-unfriendly key pattern.
            m.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15), i);
            if i % 250 == 0 {
                versions.push(m.clone());
            }
        }
        assert_eq!(m.len(), 2_000);
        for (vi, v) in versions.iter().enumerate() {
            assert_eq!(v.len(), vi * 250 + 1);
        }
        for i in 0..2_000u64 {
            assert_eq!(m.get(&i.wrapping_mul(0x9e37_79b9_7f4a_7c15)), Some(&i));
        }
    }

    #[test]
    fn structures_are_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PVec<u32>>();
        assert_send_sync::<PMap<u32, u32>>();
    }
}
