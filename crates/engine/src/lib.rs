//! The paper's core contribution: demand-driven graph-traversal
//! evaluation of queries over regularly and linearly recursive
//! binary-chain Datalog programs (§3, Figures 4–5).
//!
//! The pipeline is: Datalog program → equation system (`rq-relalg`,
//! Lemma 1) → automata `M(e_p)` (`rq-automata`) → traversal of the
//! interpretation graph `G(p, a, i)` over a [`TupleSource`].
//!
//! ```
//! use rq_datalog::parse_program;
//! use rq_relalg::{lemma1, Lemma1Options};
//! use rq_engine::{EdbSource, EvalOptions, Evaluator};
//!
//! let program = parse_program(
//!     "tc(X,Y) :- e(X,Y).\n\
//!      tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
//!      e(a,b). e(b,c).",
//! ).unwrap();
//! let db = rq_datalog::Database::from_program(&program);
//! let system = lemma1(&program, &Lemma1Options::default()).unwrap().system;
//! let tc = program.pred_by_name("tc").unwrap();
//! let a = program.consts.get(&rq_common::ConstValue::Str("a".into())).unwrap();
//! let source = EdbSource::new(&db);
//! let evaluator = Evaluator::new(&system, &source);
//! let outcome = evaluator.evaluate(tc, a, &EvalOptions::default());
//! assert_eq!(outcome.answers.len(), 2); // {b, c}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod query;
pub mod source;
pub mod traversal;

pub use query::{
    all_pairs_min_side, all_pairs_per_source, all_pairs_scc, candidate_sources,
    cyclic_iteration_bound, evaluate_with_cyclic_guard, inverse_cyclic_iteration_bound, query_bb,
    query_diagonal, AllPairsOutcome, EvalSide,
};
pub use source::{EdbSource, TupleSource};
pub use traversal::{
    CompiledPlan, EvalContext, EvalContextStats, EvalOptions, EvalOutcome, Evaluator,
    IterationStat, RepairOutcome,
};
