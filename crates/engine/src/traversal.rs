//! The evaluation algorithm of Figures 4 and 5: demand-driven traversal
//! of the interpretation graph `G(p, a, i)` guided by the automaton
//! hierarchy `EM(p, i)`.
//!
//! # Correspondence with the paper
//!
//! * The paper's `EM` is built by physically splicing fresh copies of
//!   `M(e_r)` over derived-predicate transitions.  We simulate the copies
//!   with *instances*: a node is `(instance, state, term)` where
//!   `instance` identifies one spliced copy and `state` a state of that
//!   copy's machine.  The `id` bridges into and out of a copy become the
//!   instance's entry (its machine's start state) and its `exit` link.
//! * `G` is the node set; arcs are never materialized ("the arcs of the
//!   graph need not be stored at all").
//! * `C` holds the continuation nodes: nodes whose state has an outgoing
//!   transition on a not-yet-expanded derived predicate.
//! * `S` holds the start nodes of the next iteration: `(q_s', u)` for the
//!   fresh copies.
//! * The main loop runs until `C` is empty — or until the caller's
//!   iteration bound, which §3's cyclic-data discussion (Figure 8)
//!   motivates, is reached.
//! * The paper's `traverse` is recursive; we use an explicit stack so
//!   deep databases cannot overflow the call stack.  The visit-once
//!   discipline ("if (q', v) is not yet in G") is identical.

use crate::source::TupleSource;
use rq_automata::{invert_nfa, thompson, Label, Nfa};
use rq_common::{Const, Counters, FxHashMap, FxHashSet, Pred};
use rq_relalg::EqSystem;

/// Which machine an instance runs: the automaton of `pred`'s equation,
/// possibly inverted (for transitions taken through an `Inv` label).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct MachineKey {
    pred: Pred,
    inverted: bool,
}

/// One spliced copy of a machine.
#[derive(Clone, Copy, Debug)]
struct Instance {
    /// Index into [`CompiledPlan::machines`].
    machine: u32,
    /// Where the copy's final state continues: `(instance, state)` of the
    /// parent, or `None` for the root instance (whose final state emits
    /// answers).
    exit: Option<(u32, u32)>,
}

/// A node of `G(p, a, i)`.
type Node = (u32, u32, Const);

/// Options controlling an evaluation.
#[derive(Clone, Debug, Default)]
pub struct EvalOptions {
    /// Stop after this many iterations of the main loop even if `C` is
    /// not empty.  With cyclic data the natural termination condition
    /// may never hold (Figure 8); §3 adopts the Marchetti-Spaccamela
    /// bound `m·n`, which [`crate::query::cyclic_iteration_bound`]
    /// computes.  When the bound is at least the data's true requirement
    /// the answer set is complete.
    pub max_iterations: Option<u64>,
    /// Abort (with `converged = false`) once the graph `G` holds this
    /// many nodes.  A safety valve for non-terminating evaluations —
    /// §4 queries over cyclic data can otherwise grow `G` without
    /// bound, since the m·n cyclic guard only covers the §3 linear
    /// shape.  `None` (the default) means no limit.
    pub node_budget: Option<u64>,
    /// Stop the traversal as soon as this constant is emitted as an
    /// answer.  The `p(a, b)` membership form sets this to `b`: once
    /// `b` is known to be in the answer set there is no point
    /// materializing the rest of `p(a, Y)`.  A run stopped this way
    /// reports `converged = true` — the membership question is fully
    /// answered — but its answer set is deliberately partial.
    pub stop_on_answer: Option<Const>,
    /// Record per-iteration statistics.
    pub record_iterations: bool,
    /// Record the nodes and arcs of `G(p, a, i)` for export (Figure 3
    /// style).  Off by default: the algorithm itself never stores arcs.
    pub record_graph: bool,
}

/// Statistics for one iteration of the main loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IterationStat {
    /// Nodes added to `G` this iteration.
    pub new_nodes: u64,
    /// Answers known after this iteration.
    pub answers_so_far: u64,
    /// Continuation nodes pending at the end of this iteration.
    pub continuations: u64,
}

/// How one recorded arc of `G(p, a, i)` was derived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArcKind {
    /// An `id` transition.
    Id,
    /// A base-relation transition, forward.
    Sym(Pred),
    /// A base-relation transition, inverse.
    Inv(Pred),
    /// The implicit `id` from a copy's final state back to its parent.
    Exit,
    /// The implicit `id` from a continuation node into a fresh copy.
    Enter(Pred),
}

/// A node of the recorded graph: `(instance, state, term)`.
pub type DumpNode = (u32, u32, Const);

/// A recorded arc `(from, kind, to)`.
pub type DumpArc = (DumpNode, ArcKind, DumpNode);

/// A recorded interpretation graph (only when
/// [`EvalOptions::record_graph`] is set): nodes are
/// `(instance, state, term)`, arcs carry their provenance.
#[derive(Clone, Debug)]
pub struct GraphDump {
    /// All arcs `(from, kind, to)`.  The node set is implied.
    pub arcs: Vec<DumpArc>,
    /// The root start node.
    pub start: (u32, u32, Const),
    /// Final-state nodes (answers) of the root instance.
    pub answer_nodes: Vec<(u32, u32, Const)>,
}

impl GraphDump {
    /// Render as GraphViz DOT; `show` renders a term.
    pub fn to_dot(
        &self,
        show: &impl Fn(Const) -> String,
        pred_name: &impl Fn(Pred) -> String,
    ) -> String {
        let mut out = String::from("digraph g {\n  rankdir=LR;\n");
        let node_id = |n: &(u32, u32, Const)| format!("\"i{}q{}_{}\"", n.0, n.1, show(n.2));
        out.push_str(&format!("  {} [style=bold];\n", node_id(&self.start)));
        for n in &self.answer_nodes {
            out.push_str(&format!("  {} [shape=doublecircle];\n", node_id(n)));
        }
        for (from, kind, to) in &self.arcs {
            let label = match kind {
                ArcKind::Id => "id".to_string(),
                ArcKind::Sym(r) => pred_name(*r),
                ArcKind::Inv(r) => format!("{}^-1", pred_name(*r)),
                ArcKind::Exit => "id (exit)".to_string(),
                ArcKind::Enter(r) => format!("id (enter {})", pred_name(*r)),
            };
            out.push_str(&format!(
                "  {} -> {} [label=\"{}\"];\n",
                node_id(from),
                node_id(to),
                label
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Number of distinct nodes mentioned.
    pub fn node_count(&self) -> usize {
        let mut set: FxHashSet<(u32, u32, Const)> = FxHashSet::default();
        set.insert(self.start);
        for (a, _, b) in &self.arcs {
            set.insert(*a);
            set.insert(*b);
        }
        set.len()
    }
}

/// Result of an evaluation.
#[derive(Clone, Debug)]
pub struct EvalOutcome {
    /// The answer set: all `v` with `(q_f, v)` in the final graph.
    pub answers: FxHashSet<Const>,
    /// Unit-cost instrumentation.
    pub counters: Counters,
    /// Whether the algorithm stopped because `C` was empty (`true`) or
    /// because the iteration bound was hit (`false`).
    pub converged: bool,
    /// Number of nodes in the final graph `G`.
    pub graph_nodes: u64,
    /// Number of machine copies spliced (≥ 1 for the root).
    pub instances: u64,
    /// Per-iteration statistics, if requested.
    pub iteration_stats: Vec<IterationStat>,
    /// The recorded graph, if requested.
    pub graph: Option<GraphDump>,
}

/// The compiled half of an evaluator: Thompson machines for every
/// derived predicate of an equation system, in both orientations, plus
/// the lookup tables the traversal needs.
///
/// Compiling a plan runs the `thompson` (and optionally `compact`)
/// constructions once; the plan is immutable afterwards and `Sync`, so
/// a serving layer can compile once per program and share the plan
/// across concurrent query threads ([`Evaluator::with_plan`]).
pub struct CompiledPlan {
    machines: Vec<Nfa>,
    machine_index: FxHashMap<MachineKey, u32>,
    derived: FxHashSet<Pred>,
}

impl CompiledPlan {
    /// Compile plain Thompson machines for `system`.
    pub fn compile(system: &EqSystem) -> Self {
        Self::build(system, false)
    }

    /// Compile ε-compacted machines ([`rq_automata::compact`]): same
    /// answers, fewer `id` transitions and so fewer glue nodes in
    /// `G(p, a, i)`.
    pub fn compile_compacted(system: &EqSystem) -> Self {
        Self::build(system, true)
    }

    fn build(system: &EqSystem, compact_machines: bool) -> Self {
        let derived = system.derived();
        let mut machines = Vec::with_capacity(system.lhs.len() * 2);
        let mut machine_index = FxHashMap::default();
        for &p in &system.lhs {
            let mut m = thompson(&system.rhs[&p]);
            if compact_machines {
                m = rq_automata::compact(&m).0;
            }
            machine_index.insert(
                MachineKey {
                    pred: p,
                    inverted: true,
                },
                machines.len() as u32 + 1,
            );
            machine_index.insert(
                MachineKey {
                    pred: p,
                    inverted: false,
                },
                machines.len() as u32,
            );
            machines.push(m.clone());
            machines.push(invert_nfa(&m));
        }
        Self {
            machines,
            machine_index,
            derived,
        }
    }

    /// Number of compiled machines (two per derived predicate).
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Total states across all compiled machines.
    pub fn total_states(&self) -> usize {
        self.machines.iter().map(|m| m.trans.len()).sum()
    }
}

/// How an evaluator holds its plan: built for this evaluator, or
/// borrowed from a cache.
enum PlanRef<'a> {
    Owned(Box<CompiledPlan>),
    Shared(&'a CompiledPlan),
}

impl PlanRef<'_> {
    #[inline]
    fn get(&self) -> &CompiledPlan {
        match self {
            PlanRef::Owned(p) => p,
            PlanRef::Shared(p) => p,
        }
    }
}

/// The evaluator for one equation system over one tuple source.
pub struct Evaluator<'a, S: TupleSource> {
    system: &'a EqSystem,
    source: &'a S,
    plan: PlanRef<'a>,
}

impl<'a, S: TupleSource> Evaluator<'a, S> {
    /// Build an evaluator.  Machines for every derived predicate of the
    /// system are compiled eagerly in both orientations (they are tiny —
    /// proportional to the equation sizes).
    pub fn new(system: &'a EqSystem, source: &'a S) -> Self {
        Self {
            system,
            source,
            plan: PlanRef::Owned(Box::new(CompiledPlan::compile(system))),
        }
    }

    /// Build an evaluator whose machines are ε-compacted
    /// ([`rq_automata::compact`]).  Same answers; fewer `id` transitions
    /// means fewer glue nodes in `G(p, a, i)` (measured by the
    /// `compact` ablation bench).
    pub fn new_compacted(system: &'a EqSystem, source: &'a S) -> Self {
        Self {
            system,
            source,
            plan: PlanRef::Owned(Box::new(CompiledPlan::compile_compacted(system))),
        }
    }

    /// Build an evaluator around an already compiled plan (which must
    /// have been compiled from `system`).  This skips all machine
    /// construction, so a cached plan turns evaluator setup into a few
    /// pointer copies.
    pub fn with_plan(system: &'a EqSystem, plan: &'a CompiledPlan, source: &'a S) -> Self {
        Self {
            system,
            source,
            plan: PlanRef::Shared(plan),
        }
    }

    /// The equation system being evaluated.
    pub fn system(&self) -> &EqSystem {
        self.system
    }

    /// Evaluate the query `p(a, Y)` (or, with `inverted`, the query
    /// `p(X, a)` through the inverse machine).
    pub fn evaluate(&self, p: Pred, a: Const, options: &EvalOptions) -> EvalOutcome {
        self.evaluate_inner(p, a, false, options)
    }

    /// Evaluate `p(X, a)` by traversing the inverse machine from `a`.
    pub fn evaluate_inverse(&self, p: Pred, a: Const, options: &EvalOptions) -> EvalOutcome {
        self.evaluate_inner(p, a, true, options)
    }

    fn machine_id(&self, pred: Pred, inverted: bool) -> u32 {
        self.plan.get().machine_index[&MachineKey { pred, inverted }]
    }

    fn evaluate_inner(
        &self,
        p: Pred,
        a: Const,
        inverted: bool,
        options: &EvalOptions,
    ) -> EvalOutcome {
        assert!(
            self.system.rhs.contains_key(&p),
            "query predicate must be derived"
        );
        let plan = self.plan.get();
        let mut counters = Counters::new();
        let mut iteration_stats = Vec::new();

        let root_machine = self.machine_id(p, inverted);
        let mut instances: Vec<Instance> = vec![Instance {
            machine: root_machine,
            exit: None,
        }];
        // (instance, transition ordinal within the instance) → child.
        let mut expansions: FxHashMap<(u32, u32, u32), u32> = FxHashMap::default();
        // G: the node set.
        let mut graph: FxHashSet<Node> = FxHashSet::default();
        // C: continuation terms per (instance, state).
        let mut continuations: FxHashMap<(u32, u32), FxHashSet<Const>> = FxHashMap::default();
        let mut answers: FxHashSet<Const> = FxHashSet::default();

        // S: starting points of the current iteration.
        let root_start: Node = (0, plan.machines[root_machine as usize].start as u32, a);
        let mut starts: Vec<Node> = vec![root_start];
        let mut arcs: Vec<(Node, ArcKind, Node)> = Vec::new();
        // Arcs from the expansion phase (enter edges), keyed by target
        // start node so they are attributed when the node is seeded.
        let mut enter_arcs: Vec<(Node, ArcKind, Node)> = Vec::new();

        let mut converged = false;
        'main: loop {
            counters.iterations += 1;
            let nodes_before = graph.len() as u64;
            // Depth-first traversal from every start node.
            let mut stack: Vec<Node> = Vec::new();
            for node in starts.drain(..) {
                if graph.insert(node) {
                    counters.nodes_inserted += 1;
                    stack.push(node);
                }
            }
            let mut succ_buf: Vec<Const> = Vec::new();
            while let Some((inst, state, term)) = stack.pop() {
                let instance = instances[inst as usize];
                let machine = &plan.machines[instance.machine as usize];
                // Final state: exit to the parent (an implicit id arc) or
                // emit an answer at the root.
                if state as usize == machine.finish {
                    match instance.exit {
                        None => {
                            answers.insert(term);
                            if options.stop_on_answer == Some(term) {
                                // Membership established: the partial
                                // answer set already decides the query.
                                converged = true;
                                break 'main;
                            }
                        }
                        Some((pi, pq)) => {
                            let node = (pi, pq, term);
                            if options.record_graph {
                                arcs.push(((inst, state, term), ArcKind::Exit, node));
                            }
                            if graph.insert(node) {
                                counters.nodes_inserted += 1;
                                stack.push(node);
                            }
                        }
                    }
                }
                for (t_idx, &(label, to)) in machine.trans[state as usize].iter().enumerate() {
                    counters.rule_firings += 1;
                    match label {
                        Label::Id => {
                            let node = (inst, to as u32, term);
                            if options.record_graph {
                                arcs.push(((inst, state, term), ArcKind::Id, node));
                            }
                            if graph.insert(node) {
                                counters.nodes_inserted += 1;
                                stack.push(node);
                            }
                        }
                        Label::Sym(r) | Label::Inv(r) => {
                            let derived = plan.derived.contains(&r);
                            if derived {
                                // Already expanded? Route straight into
                                // the child copy; otherwise queue in C.
                                if let Some(&child) = expansions.get(&(inst, state, t_idx as u32)) {
                                    let child_start =
                                        plan.machines[instances[child as usize].machine as usize]
                                            .start as u32;
                                    let node = (child, child_start, term);
                                    if options.record_graph {
                                        arcs.push(((inst, state, term), ArcKind::Enter(r), node));
                                    }
                                    if graph.insert(node) {
                                        counters.nodes_inserted += 1;
                                        stack.push(node);
                                    }
                                } else {
                                    continuations.entry((inst, state)).or_default().insert(term);
                                }
                                continue;
                            }
                            succ_buf.clear();
                            match label {
                                Label::Sym(_) => {
                                    self.source
                                        .successors(r, term, &mut succ_buf, &mut counters)
                                }
                                Label::Inv(_) => {
                                    self.source
                                        .predecessors(r, term, &mut succ_buf, &mut counters)
                                }
                                Label::Id => unreachable!(),
                            }
                            for &v in succ_buf.iter() {
                                let node = (inst, to as u32, v);
                                if options.record_graph {
                                    let kind = match label {
                                        Label::Sym(_) => ArcKind::Sym(r),
                                        _ => ArcKind::Inv(r),
                                    };
                                    arcs.push(((inst, state, term), kind, node));
                                }
                                if graph.insert(node) {
                                    counters.nodes_inserted += 1;
                                    stack.push(node);
                                }
                            }
                        }
                    }
                }
            }

            if options.record_iterations {
                iteration_stats.push(IterationStat {
                    new_nodes: graph.len() as u64 - nodes_before,
                    answers_so_far: answers.len() as u64,
                    continuations: continuations.values().map(|s| s.len() as u64).sum(),
                });
            }

            if continuations.is_empty() {
                converged = true;
                break;
            }
            if let Some(limit) = options.max_iterations {
                if counters.iterations >= limit {
                    break;
                }
            }
            if let Some(budget) = options.node_budget {
                if graph.len() as u64 >= budget {
                    break;
                }
            }

            // Expansion phase: for every pending (instance, state) and
            // every derived transition out of that state, splice a fresh
            // copy and seed S with its start nodes.
            let pending: Vec<((u32, u32), FxHashSet<Const>)> = continuations.drain().collect();
            for ((inst, state), terms) in pending {
                let machine_id = instances[inst as usize].machine;
                let trans: Vec<(u32, Label, usize)> = plan.machines[machine_id as usize].trans
                    [state as usize]
                    .iter()
                    .enumerate()
                    .map(|(i, &(l, t))| (i as u32, l, t))
                    .collect();
                for (t_idx, label, to) in trans {
                    let (r, child_inverted) = match label {
                        Label::Sym(r) if plan.derived.contains(&r) => (r, false),
                        Label::Inv(r) if plan.derived.contains(&r) => (r, true),
                        _ => continue,
                    };
                    let child = *expansions.entry((inst, state, t_idx)).or_insert_with(|| {
                        let id = instances.len() as u32;
                        instances.push(Instance {
                            machine: self.machine_id(r, child_inverted),
                            exit: Some((inst, to as u32)),
                        });
                        id
                    });
                    let child_start =
                        plan.machines[instances[child as usize].machine as usize].start as u32;
                    for &u in &terms {
                        let node = (child, child_start, u);
                        if options.record_graph {
                            enter_arcs.push(((inst, state, u), ArcKind::Enter(r), node));
                        }
                        starts.push(node);
                    }
                }
            }
        }

        let dump = options.record_graph.then(|| {
            arcs.extend(enter_arcs);
            let answer_nodes: Vec<Node> = graph
                .iter()
                .copied()
                .filter(|&(i, q, _)| {
                    i == 0 && q as usize == plan.machines[root_machine as usize].finish
                })
                .collect();
            GraphDump {
                arcs,
                start: root_start,
                answer_nodes,
            }
        });
        EvalOutcome {
            answers,
            counters,
            converged,
            graph_nodes: graph.len() as u64,
            instances: instances.len() as u64,
            iteration_stats,
            graph: dump,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::EdbSource;
    use rq_datalog::{parse_program, Database};
    use rq_relalg::{lemma1, Lemma1Options};

    fn run(src: &str, query_pred: &str, from: &str) -> (rq_datalog::Program, EvalOutcome) {
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let p = program.pred_by_name(query_pred).unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str(from.into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(p, a, &EvalOptions::default());
        (program, out)
    }

    fn names(program: &rq_datalog::Program, set: &FxHashSet<Const>) -> Vec<String> {
        let mut v: Vec<String> = set.iter().map(|&c| program.consts.display(c)).collect();
        v.sort();
        v
    }

    #[test]
    fn shared_plan_matches_owned_plan_and_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<CompiledPlan>();
        // An evaluator over a Sync source is itself shareable across
        // scoped threads — the property the batch service relies on.
        assert_sync::<Evaluator<'_, EdbSource<'_>>>();

        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
                   down(b2,b1). down(b1,b).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let plan = CompiledPlan::compile(&sys);
        assert_eq!(plan.machine_count(), 2); // sg forward + inverse
        let owned = Evaluator::new(&sys, &source).evaluate(sg, a, &EvalOptions::default());
        // One plan, several evaluators, concurrent queries.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let shared = Evaluator::with_plan(&sys, &plan, &source);
                    let out = shared.evaluate(sg, a, &EvalOptions::default());
                    assert_eq!(out.answers, owned.answers);
                    assert_eq!(out.graph_nodes, owned.graph_nodes);
                });
            }
        });
    }

    #[test]
    fn compacted_machines_same_answers_fewer_nodes() {
        // A union-heavy program: Thompson glue states cost one graph
        // node per constant funneled through them.
        let mut src = String::from(
            "r(X,Y) :- a(X,Y).\n\
             r(X,Y) :- b(X,Y).\n\
             r(X,Y) :- c(X,Y).\n\
             r(X,Z) :- a(X,Y), r(Y,Z).\n",
        );
        for i in 0..20 {
            src.push_str(&format!("a(v{}, v{}).\n", i, i + 1));
            src.push_str(&format!("b(v{}, w{}).\n", i, i));
            src.push_str(&format!("c(w{}, v{}).\n", i, i));
        }
        let program = parse_program(&src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let r = program.pred_by_name("r").unwrap();
        let v0 = program
            .consts
            .get(&rq_common::ConstValue::Str("v0".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let plain = Evaluator::new(&sys, &source).evaluate(r, v0, &EvalOptions::default());
        let compacted =
            Evaluator::new_compacted(&sys, &source).evaluate(r, v0, &EvalOptions::default());
        assert_eq!(plain.answers, compacted.answers);
        assert!(
            compacted.graph_nodes < plain.graph_nodes,
            "compacted {} !< plain {}",
            compacted.graph_nodes,
            plain.graph_nodes
        );
    }

    #[test]
    fn compacted_machines_agree_on_linear_case() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
                   down(b2,b1). down(b1,b).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let plain = Evaluator::new(&sys, &source).evaluate(sg, a, &EvalOptions::default());
        let compacted =
            Evaluator::new_compacted(&sys, &source).evaluate(sg, a, &EvalOptions::default());
        assert_eq!(plain.answers, compacted.answers);
        assert_eq!(
            plain.counters.iterations, compacted.counters.iterations,
            "compaction must not change the iteration structure"
        );
    }

    #[test]
    fn regular_closure_single_iteration() {
        let (p, out) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,d). e(x,y).",
            "tc",
            "a",
        );
        assert_eq!(names(&p, &out.answers), vec!["b", "c", "d"]);
        assert!(out.converged);
        // Regular case: exactly one iteration (Theorem 3).
        assert_eq!(out.counters.iterations, 1);
        assert_eq!(out.instances, 1);
    }

    #[test]
    fn regular_closure_on_cycle() {
        let (p, out) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b). e(b,c). e(c,a).",
            "tc",
            "a",
        );
        // Reaches everything including a itself.
        assert_eq!(names(&p, &out.answers), vec!["a", "b", "c"]);
        assert!(out.converged);
    }

    #[test]
    fn same_generation_linear_case() {
        let (p, out) = run(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
             up(a,a1). up(a1,a2). flat(a2,b2). flat(a,z).\n\
             down(b2,b1). down(b1,b).",
            "sg",
            "a",
        );
        // flat(a,z) at level 0; up²·flat·down² gives b.
        assert_eq!(names(&p, &out.answers), vec!["b", "z"]);
        assert!(out.converged);
        // Needs 3 iterations: levels 0, 1, 2 of the recursion.
        assert_eq!(out.counters.iterations, 3);
    }

    #[test]
    fn demand_driven_ignores_unreachable_facts() {
        // Facts not reachable from the query constant must never be
        // retrieved (the demand-driven property).
        let (p, out) = run(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
             e(a,b).\n\
             e(u1,u2). e(u2,u3). e(u3,u4). e(u4,u5).",
            "tc",
            "a",
        );
        assert_eq!(names(&p, &out.answers), vec!["b"]);
        // Only a's edge plus b's (empty) probe are touched.
        assert!(out.counters.tuples_retrieved <= 2);
    }

    #[test]
    fn nonconvergent_cycle_respects_bound() {
        // up cycle of length 2, down cycle of length 3, flat at one spot:
        // needs 6 iterations (Figure 8 with m=2, n=3).
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a1,a2). up(a2,a1).\n\
                   flat(a1,b1).\n\
                   down(b1,b2). down(b2,b3). down(b3,b1).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a1 = program
            .consts
            .get(&rq_common::ConstValue::Str("a1".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        // With bound m·n + 1 = 7 the answer is complete:
        // up^k(a1)=a1 for even k; down^k(b1) cycles with period 3 →
        // answers are down^{even k}(b1) = {b1, b3, b2} for k=0,2,4.
        let out = ev.evaluate(
            sg,
            a1,
            &EvalOptions {
                max_iterations: Some(7),
                record_iterations: true,
                ..EvalOptions::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(names(&program, &out.answers), vec!["b1", "b2", "b3"]);
    }

    #[test]
    fn inverse_query() {
        let (p, out) = {
            let src = "tc(X,Y) :- e(X,Y).\n\
                       tc(X,Z) :- e(X,Y), tc(Y,Z).\n\
                       e(a,b). e(b,c). e(z,c).";
            let program = parse_program(src).unwrap();
            let db = Database::from_program(&program);
            let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
            let tc = program.pred_by_name("tc").unwrap();
            let c = program
                .consts
                .get(&rq_common::ConstValue::Str("c".into()))
                .unwrap();
            let source = EdbSource::new(&db);
            let ev = Evaluator::new(&sys, &source);
            let out = ev.evaluate_inverse(tc, c, &EvalOptions::default());
            (program, out)
        };
        // All X with tc(X, c): a, b, z.
        assert_eq!(names(&p, &out.answers), vec!["a", "b", "z"]);
    }

    #[test]
    fn nonregular_mutual_recursion() {
        // Naughton's example [15]: p(X,Y) :- b0(X,Y);
        // p(X,Y) :- b1(X,Z), p(Y,Z) — not a binary-chain program as
        // written, but its §4 transform is; here we test the hand-built
        // equivalent equation system q2 = r2 ∪ a·q2·r1 instead.
        let src = "q1(X,Z) :- a(X,Y), q2(Y,Z).\n\
                   q2(X,Y) :- r2(X,Y).\n\
                   q2(X,Z) :- q1(X,Y), r1(Y,Z).\n\
                   a(s,t). a(t,u).\n\
                   r2(u,v).\n\
                   r1(v,w). r1(w,x0).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let q1 = program.pred_by_name("q1").unwrap();
        let s = program
            .consts
            .get(&rq_common::ConstValue::Str("s".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(q1, s, &EvalOptions::default());
        // q1(s,?): a(s,t), q2(t,?): q1(t,?)·r1 → a(t,u), q2(u,v)=r2,
        // then r1(v,w) → q2(t,w) → q1 path gives q1(s, x0)? Compare with
        // naive evaluation.
        let naive = rq_datalog::naive_eval(&program).unwrap();
        let expected: Vec<String> = {
            let mut v: Vec<String> = naive
                .tuples(q1)
                .into_iter()
                .filter(|t| t[0] == s)
                .map(|t| program.consts.display(t[1]))
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&program, &out.answers), expected);
        assert!(out.converged);
    }

    #[test]
    fn graph_dump_matches_node_count() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). flat(a1,b1). down(b1,b). flat(a,z).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(
            sg,
            a,
            &EvalOptions {
                record_graph: true,
                ..EvalOptions::default()
            },
        );
        let dump = out.graph.expect("recorded");
        // Every node of G appears in the dump (the dump also sees the
        // start node even if isolated).
        assert_eq!(dump.node_count() as u64, out.graph_nodes);
        // Answers appear as final-state nodes of the root instance.
        assert_eq!(dump.answer_nodes.len(), out.answers.len());
        let dot = dump.to_dot(&|c| program.consts.display(c), &|q| {
            program.pred_name(q).to_string()
        });
        assert!(dot.contains("digraph"));
        assert!(dot.contains("up"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn answers_monotone_across_iterations() {
        let src = "sg(X,Y) :- flat(X,Y).\n\
                   sg(X,Y) :- up(X,X1), sg(X1,Y1), down(Y1,Y).\n\
                   up(a,a1). up(a1,a2). up(a2,a3).\n\
                   flat(a,b0). flat(a1,b1). flat(a2,b2). flat(a3,b3).\n\
                   down(b1,c1). down(b2,x1). down(x1,c2). down(b3,y1). down(y1,y2). down(y2,c3).";
        let program = parse_program(src).unwrap();
        let db = Database::from_program(&program);
        let sys = lemma1(&program, &Lemma1Options::default()).unwrap().system;
        let sg = program.pred_by_name("sg").unwrap();
        let a = program
            .consts
            .get(&rq_common::ConstValue::Str("a".into()))
            .unwrap();
        let source = EdbSource::new(&db);
        let ev = Evaluator::new(&sys, &source);
        let out = ev.evaluate(
            sg,
            a,
            &EvalOptions {
                max_iterations: None,
                record_iterations: true,
                ..EvalOptions::default()
            },
        );
        assert!(out.converged);
        // Lemma 2(1): the partial answer set grows monotonically and each
        // level contributes sg_i's new answers.
        let answers: Vec<u64> = out
            .iteration_stats
            .iter()
            .map(|s| s.answers_so_far)
            .collect();
        assert!(answers.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*answers.last().unwrap() as usize, out.answers.len());
        assert_eq!(names(&program, &out.answers), vec!["b0", "c1", "c2", "c3"]);
    }
}
